"""S-VRF inference micro-benchmark: forwards/s at batch sizes 1/32/256.

The pooled :class:`~repro.platform.forecast_service.ForecastService` exists
because a batch-size-1 BiLSTM forward per vessel per kept fix dominated the
single-node hot path. This benchmark pins the shape of that win at the
model level: one ``predict_transitions`` pass over ``(n, INPUT_STEPS, 3)``
windows at n = 1, 32 and 256, reported as *forwards per second* (windows
forecast per wall second, so bigger batches show their amortisation
directly) plus the per-pass latency.

Weights are seeded (identity-ish scalers, no training) — matmul cost does
not depend on the weight values, and CI has no business training a model
to time one. The same-architecture forward is what the platform runs.

Writes BENCH_inference.json (uploaded as a CI artifact). Exits non-zero
only if batching stops paying at all (batch-256 forwards/s not above
batch-1) — a sanity backstop, not a calibrated floor.

Run:  python examples/run_inference_bench.py [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ml import StandardScaler  # noqa: E402
from repro.models.svrf import SVRFConfig, SVRFModel  # noqa: E402

BATCH_SIZES = (1, 32, 256)


def seeded_model() -> SVRFModel:
    model = SVRFModel(SVRFConfig(seed=0))
    model.x_scaler = StandardScaler.from_state(
        {"mean": np.zeros(3), "std": np.ones(3)})
    out = model.config.output_steps * 2
    model.y_scaler = StandardScaler.from_state(
        {"mean": np.zeros(out), "std": np.full(out, 1e-3)})
    model.trained = True
    return model


def bench_batch(model: SVRFModel, batch: int, repeats: int,
                target_s: float = 0.25) -> dict:
    """Best forwards/s over ``repeats`` timed runs of ``passes`` calls."""
    rng = np.random.default_rng(batch)
    x = rng.normal(scale=1e-3,
                   size=(batch, model.config.input_steps, 3))
    model.predict_transitions(x)  # warm (allocations, BLAS thread spin-up)
    start = time.perf_counter()
    model.predict_transitions(x)
    once = time.perf_counter() - start
    passes = max(1, int(target_s / max(once, 1e-9)))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(passes):
            model.predict_transitions(x)
        best = min(best, (time.perf_counter() - start) / passes)
    return {
        "batch": batch,
        "forwards_per_s": batch / best,
        "pass_ms": best * 1e3,
        "timed_passes": passes,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed runs per batch size; the best counts")
    parser.add_argument("--output", default="BENCH_inference.json")
    args = parser.parse_args()

    model = seeded_model()
    config = model.config
    print(f"S-VRF forward: BiLSTM hidden={config.hidden}, "
          f"dense={config.dense}, window={config.input_steps} steps")
    results = [bench_batch(model, batch, args.repeats)
               for batch in BATCH_SIZES]
    for row in results:
        print(f"  batch {row['batch']:4d}: "
              f"{row['forwards_per_s']:10.0f} forwards/s  "
              f"({row['pass_ms']:.2f} ms/pass)")

    by_batch = {row["batch"]: row for row in results}
    amortisation = (by_batch[BATCH_SIZES[-1]]["forwards_per_s"]
                    / by_batch[1]["forwards_per_s"])
    print(f"  batch-{BATCH_SIZES[-1]} amortisation: {amortisation:.1f}x "
          f"the batch-1 rate")

    report = {
        "model": {"hidden": config.hidden, "dense": config.dense,
                  "input_steps": config.input_steps,
                  "output_steps": config.output_steps,
                  "bidirectional": config.bidirectional},
        "batches": results,
        "amortisation_vs_batch1": amortisation,
        "repeats": args.repeats,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if amortisation <= 1.0:
        print("FAIL: batched forward is not faster per window than "
              "batch-1 inference", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
