"""Future-work assets from the paper's outlook (Section 7): port congestion
monitoring/prediction, automated collision-avoidance rerouting, and
weather-enriched H3 cells.

Run:  python examples/port_congestion_and_avoidance.py
"""

import random

from repro.ais.datasets import _converging_pair, proximity_scenario
from repro.ais.ports import PORTS
from repro.ais.simulator import ChannelModel, ScenarioSimulator
from repro.events import PortCongestionMonitor, plan_avoidance
from repro.events.collision import trajectories_intersect
from repro.hexgrid import latlng_to_cell
from repro.models import LinearKinematicModel
from repro.platform import Platform, PlatformConfig
from repro.weather import WeatherField, enrich_cells


def congestion_demo() -> None:
    print("=== Port congestion monitoring (Aegean ports) ===")
    scenario = proximity_scenario(n_event_pairs=10, n_near_miss_pairs=4,
                                  n_background=30, duration_s=3_600.0,
                                  seed=77)
    platform = Platform(forecaster=LinearKinematicModel(),
                        config=PlatformConfig())
    platform.publish_messages(scenario.result.messages)
    platform.process_available()

    aegean_ports = [p for p in PORTS if p.region == "aegean"]
    monitor = PortCongestionMonitor(ports=aegean_ports, radius_m=40_000.0)
    now = 0.0

    # Harbour traffic: moored/anchored vessels the open-sea scenario lacks.
    rng = random.Random(1)
    mmsi = 250_000_000
    for port in aegean_ports:
        for _ in range(rng.randint(1, int(port.weight * 8))):
            monitor.observe(mmsi, t=3_500.0,
                            lat=port.lat + rng.uniform(-0.02, 0.02),
                            lon=port.lon + rng.uniform(-0.02, 0.02),
                            sog=rng.uniform(0.0, 0.5))
            mmsi += 1
    for mmsi in platform.api.active_vessels():
        state = platform.api.vessel_state(mmsi)
        track = platform.api.vessel_forecast(mmsi)
        forecast = None
        if track:
            from repro.geo import Position
            from repro.models.base import RouteForecast
            forecast = RouteForecast(mmsi=mmsi, positions=tuple(
                Position(t=t, lat=lat, lon=lon) for t, lat, lon in track))
        monitor.observe(mmsi, state["t"], state["lat"], state["lon"],
                        state["sog"], forecast=forecast)
        now = max(now, state["t"])

    for port in aegean_ports:
        report = monitor.report(port, now=now)
        if report.projected_occupancy == 0:
            continue
        flag = "  << CONGESTED" if report.congested else ""
        print(f"  {port.name:<14} dwelling={report.occupancy:<3} "
              f"moving={len(report.moving):<3} "
              f"arriving<=30min={len(report.expected_arrivals):<3} "
              f"capacity={report.capacity:<3} "
              f"utilisation={report.utilisation:4.0%}{flag}")


def avoidance_demo() -> None:
    print("\n=== Automated collision-avoidance rerouting ===")
    rng = random.Random(5)
    a, b = _converging_pair(rng, 240000001, 240000002, meet_t=2_400.0,
                            miss_distance_m=100.0)
    sim = ScenarioSimulator([a, b], channel=ChannelModel(coverage=1.0),
                            dt_s=10.0, seed=5)
    result = sim.run(1_500.0)  # 15 minutes before the predicted encounter

    model = LinearKinematicModel()
    fc_a = model.forecast(240000001, result.truth[240000001][::3])
    fc_b = model.forecast(240000002, result.truth[240000002][::3])
    hit = trajectories_intersect(fc_a, fc_b, spatial_threshold_m=1_000.0)
    if hit is None:
        print("  no collision forecast — nothing to avoid")
        return
    print(f"  collision forecast: pair {hit.pair}, min separation "
          f"{hit.min_distance_m:.0f} m, lead {hit.lead_time_s / 60:.1f} min")

    own_state = result.truth[240000001][-1]
    plan = plan_avoidance(fc_a, fc_b, own_sog_kn=own_state.sog,
                          own_cog_deg=own_state.cog, separation_m=1_000.0)
    if plan is None:
        print("  no manoeuvre found within the evaluated options")
    else:
        print(f"  recommendation for {plan.mmsi}: {plan.describe()}")


def weather_demo() -> None:
    print("\n=== Weather-enriched H3 cells (fusion outlook) ===")
    field = WeatherField(seed=2024)
    cells = [latlng_to_cell(lat, lon, 5)
             for lat, lon in [(37.9, 23.6), (38.5, 24.5), (39.2, 25.4)]]
    enriched = enrich_cells(field, cells, t=6 * 3_600.0)
    for cell, cw in enriched.items():
        s = cw.sample
        rough = "  (rough)" if s.is_rough else ""
        print(f"  cell {cell}: wind {s.wind_speed_mps:4.1f} m/s from "
              f"{s.wind_direction_deg:5.1f} deg, current "
              f"{s.current_speed_mps:4.2f} m/s, waves "
              f"{s.wave_height_m:3.1f} m{rough}")


if __name__ == "__main__":
    congestion_demo()
    avoidance_demo()
    weather_demo()
