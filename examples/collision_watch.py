"""Collision forecasting walkthrough — the Figure 5 information exchange.

Builds the two-vessel crossing of the paper's Figure 5, runs the S-VRF (or
kinematic) forecasts, shows how each forecast position is assigned to its
H3 cell *and the neighbouring cells*, which collision actor resolves the
encounter, and the resulting event as the UI's event list would show it.

Run:  python examples/collision_watch.py
"""

import random

from repro.ais.datasets import _converging_pair
from repro.ais.simulator import ChannelModel, ScenarioSimulator
from repro.events.collision import trajectories_intersect
from repro.hexgrid import cell_to_string, grid_disk, latlng_to_cell
from repro.models import LinearKinematicModel
from repro.platform import Platform, PlatformConfig


def main() -> None:
    rng = random.Random(3)
    agent_a, agent_b = _converging_pair(rng, 240000001, 240000002,
                                        meet_t=2_700.0,
                                        miss_distance_m=150.0)
    sim = ScenarioSimulator([agent_a, agent_b],
                            channel=ChannelModel(coverage=1.0,
                                                 duplicate_prob=0.0),
                            dt_s=10.0, seed=3)
    result = sim.run(2_400.0)  # stop 5 minutes before the encounter
    print(f"Two vessels on converging courses: "
          f"{len(result.messages)} AIS messages simulated")

    # --- Direct view: the per-pair trajectory intersection (Figure 5) ----
    model = LinearKinematicModel()
    history_a = result.truth[240000001][::3]
    history_b = result.truth[240000002][::3]
    fc_a = model.forecast(240000001, history_a)
    fc_b = model.forecast(240000002, history_b)

    print("\nForecast trajectories (present + six 5-minute predictions):")
    for label, fc in (("A", fc_a), ("B", fc_b)):
        cells = [latlng_to_cell(p.lat, p.lon, 8) for p in fc.positions]
        print(f"  vessel {label} ({fc.mmsi}):")
        for p, cell in zip(fc.positions, cells):
            fanout = grid_disk(cell, 1)
            print(f"    t+{p.t - fc.anchor.t:5.0f}s ({p.lat:.4f}, "
                  f"{p.lon:.4f}) -> cell {cell_to_string(cell)} "
                  f"(+{len(fanout) - 1} neighbours)")

    shared = ({latlng_to_cell(p.lat, p.lon, 8) for p in fc_a.positions}
              & {latlng_to_cell(p.lat, p.lon, 8) for p in fc_b.positions})
    print(f"\nCells receiving both trajectories: "
          f"{[cell_to_string(c) for c in sorted(shared)][:4]}")

    hit = trajectories_intersect(fc_a, fc_b, temporal_threshold_s=120.0,
                                 spatial_threshold_m=500.0)
    if hit is None:
        print("No collision forecast for this pair.")
    else:
        print(f"Collision forecast: pair {hit.pair}, expected at "
              f"t={hit.t_expected:.0f}s near ({hit.lat:.4f}, {hit.lon:.4f}), "
              f"minimum separation {hit.min_distance_m:.0f} m, "
              f"warning lead {hit.lead_time_s / 60.0:.1f} minutes")

    # --- Platform view: the same encounter end to end --------------------
    print("\nSame encounter through the full actor platform:")
    platform = Platform(forecaster=LinearKinematicModel(),
                        config=PlatformConfig())
    platform.publish_messages(result.messages)
    platform.process_available()
    print(f"  vessel actors: {platform.vessel_count}, "
          f"collision actors: {platform.collision_actor_count}")
    for ev in platform.api.recent_events("collision", limit=5):
        print(f"  event list entry: vessels {ev.pair}, "
              f"ETA t={ev.t_expected:.0f}s, "
              f"min separation {ev.min_distance_m:.0f} m")


if __name__ == "__main__":
    main()
