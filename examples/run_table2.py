"""Regenerate Table 2 (vessel collision forecasting evaluation).

Trains (or loads the cached) S-VRF model, builds the synthetic Aegean
proximity scenario and evaluates both forecasting models across the paper's
eight configurations.

Run:  python examples/run_table2.py [--event-pairs N] [--seed S]
"""

import argparse

from repro.ais.datasets import proximity_scenario
from repro.evaluation import run_table2
from repro.evaluation.reporting import format_table2
from repro.evaluation.table2 import train_table2_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--event-pairs", type=int, default=80,
                        help="converging vessel pairs (default yields "
                             "a dataset sized like the paper's [2])")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    print("Preparing the S-VRF model (cached after the first run)...")
    model = train_table2_model()

    print("Building the evaluation scenario...")
    scenario = proximity_scenario(n_event_pairs=args.event_pairs,
                                  seed=args.seed)
    print(f"  {scenario.n_vessels} vessels, {scenario.n_messages} messages, "
          f"{len(scenario.events)} ground-truth proximity events")

    result = run_table2(scenario, model)
    print()
    print(format_table2(result))
    print()
    print(f"S-VRF recall >= linear everywhere: {result.svrf_recall_wins()}")
    print(f"Linear has more false negatives  : "
          f"{result.linear_more_false_negatives()}")
    print("Paper reference: S-VRF recall 0.90-0.98 vs linear 0.85-0.96; "
          "S-VRF trades a few extra FPs for fewer FNs.")


if __name__ == "__main__":
    main()
