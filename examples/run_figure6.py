"""Regenerate Figure 6 (system scalability) at a chosen scale.

Feeds the global synthetic AIS stream through the full platform with the
S-VRF model mounted and prints the average-processing-time-vs-actor-count
series (100-actor moving window), as the paper's Figure 6 plots.

Run:  python examples/run_figure6.py [--vessels N] [--minutes M]

The paper's run: 170K vessels, 72 hours, 12 cores / 128 GB. Scale to taste;
5,000 vessels / 60 minutes takes ~10 minutes on one core.
"""

import argparse

from repro.evaluation import run_figure6
from repro.evaluation.reporting import format_figure6
from repro.evaluation.table2 import train_table2_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vessels", type=int, default=2_000)
    parser.add_argument("--minutes", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("Preparing the S-VRF model (cached after the first run)...")
    model = train_table2_model()

    print(f"Streaming {args.vessels} vessels for {args.minutes:.0f} "
          f"simulated minutes through the platform...")
    result = run_figure6(model, n_vessels=args.vessels,
                         duration_s=args.minutes * 60.0, seed=args.seed)
    print()
    print(format_figure6(result, n_points=25))
    print()
    print(f"warm-up transient present : {result.has_warmup_transient()}")
    print(f"plateau stable with scale : {result.plateau_is_stable()}")
    print("Paper reference: init transient up to ~5K actors, then a stable "
          "state at millisecond-scale processing for 170K vessels.")


if __name__ == "__main__":
    main()
