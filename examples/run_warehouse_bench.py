"""Warehouse bench CLI: compaction throughput + OLAP query p50/p99.

Synthesizes a seeded ≥7-day traffic journal through a journaled
:class:`~repro.kvstore.KeyValueStore` (the writer pool's op shapes),
compacts it into a fresh warehouse, and times the query surface — the
workload the ``warehouse_gate`` leg of ``run_bench_gate.py`` replays and
gates against the recorded baseline.

Run:  python examples/run_warehouse_bench.py [--days 7] [--vessels 120]
      python examples/run_warehouse_bench.py --record-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation.warehouse import run_warehouse_bench  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vessels", type=int, default=120)
    parser.add_argument("--days", type=int, default=7,
                        help="simulated days of traffic (the acceptance "
                             "floor is 7)")
    parser.add_argument("--fixes-per-day", type=int, default=288,
                        help="kept fixes per vessel per day (288 = one "
                             "per 5 minutes)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--resolution", type=int, default=6)
    parser.add_argument("--query-repeats", type=int, default=30)
    parser.add_argument("--output", default="BENCH_warehouse.json")
    parser.add_argument("--record-baseline", action="store_true",
                        help="stamp the report as the recorded baseline "
                             "the CI gate compares against")
    args = parser.parse_args()

    result = run_warehouse_bench(
        vessels=args.vessels, days=args.days,
        fixes_per_day=args.fixes_per_day, seed=args.seed,
        resolution=args.resolution, query_repeats=args.query_repeats)
    report = result.to_json()
    report["baseline"] = bool(args.record_baseline)

    compaction = report["compaction"]
    print(f"warehouse bench: {args.vessels} vessels x {args.days} days "
          f"x {args.fixes_per_day} fixes/day "
          f"({report['position_rows']} fixes, {report['event_rows']} events)")
    print(f"  compaction: {compaction['rows']} rows in "
          f"{compaction['seconds']:.2f}s = {compaction['rows_per_s']:.0f} "
          f"rows/s across {compaction['segments_written']} segments "
          f"({compaction['commits']} commits)")
    for name, stats in report["queries"].items():
        if "p50_ms" in stats:
            print(f"  {name:18s} p50 {stats['p50_ms']:8.2f} ms   "
                  f"p99 {stats['p99_ms']:8.2f} ms")
    pruning = report["queries"]["pruning"]
    print(f"  pruning: {pruning['partitions_scanned']} partitions scanned, "
          f"{pruning['partitions_pruned']} pruned, "
          f"{pruning['rows_scanned']} rows touched")

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
