"""Quickstart: run the full maritime digital-twin platform on a small
synthetic Aegean scenario.

This walks the complete paper pipeline in ~30 seconds:

1. simulate a fleet of vessels (some on collision courses) and their
   irregular AIS transmissions,
2. publish the stream into the Kafka-like broker as raw AIVDM sentences,
3. let the platform ingest it — one actor per vessel, the shared
   forecasting model at the actor level, H3-cell proximity and collision
   actors, the writer actor persisting into the Redis-like store,
4. query the middleware API the way the UI would.

Run:  python examples/quickstart.py
"""

from repro.ais.datasets import proximity_scenario
from repro.models import LinearKinematicModel
from repro.platform import Platform, PlatformConfig


def main() -> None:
    print("Simulating an Aegean scenario (converging pairs + background)...")
    scenario = proximity_scenario(n_event_pairs=8, n_near_miss_pairs=3,
                                  n_background=4, duration_s=3_600.0, seed=42)
    print(f"  {scenario.n_vessels} vessels, {scenario.n_messages} AIS "
          f"messages, {len(scenario.events)} ground-truth proximity events")

    # The quickstart mounts the linear kinematic model (instant); swap in a
    # trained S-VRF via repro.evaluation.table2.train_table2_model() for the
    # data-driven forecasts the paper deploys.
    platform = Platform(forecaster=LinearKinematicModel(),
                        config=PlatformConfig(record_metrics=True))

    print("Publishing the stream as raw AIVDM sentences...")
    sentences = Platform.to_nmea(scenario.result.messages)
    platform.publish_nmea(sentences)

    print("Processing through the actor pipeline...")
    dispatched = platform.process_available()
    print(f"  {dispatched} messages dispatched to "
          f"{platform.vessel_count} vessel actors; "
          f"{platform.cell_actor_count} proximity-cell actors and "
          f"{platform.collision_actor_count} collision-cell actors spawned")

    print("\n--- Middleware API queries (what the UI calls) ---")
    mmsi = scenario.result.messages[0].mmsi
    state = platform.api.vessel_state(mmsi)
    print(f"vessel {mmsi}: lat={state['lat']:.4f} lon={state['lon']:.4f} "
          f"sog={state['sog']:.1f}kn cog={state['cog']:.0f}")
    forecast = platform.api.vessel_forecast(mmsi)
    print(f"  forecast track ({len(forecast)} positions, 30 min horizon):")
    for t, lat, lon in forecast[:3]:
        print(f"    t+{t - state['t']:4.0f}s -> ({lat:.4f}, {lon:.4f})")
    print("    ...")

    for kind in ("proximity", "collision", "switchoff"):
        print(f"{kind} events logged: {platform.api.event_count(kind)}")

    events = platform.api.recent_events("collision", limit=3)
    for ev in events:
        print(f"  forecast collision {ev.pair} at t={ev.t_expected:.0f}s "
              f"(lead {ev.lead_time_s:.0f}s, min sep {ev.min_distance_m:.0f}m)")

    counts, durations = platform.system.metrics.as_arrays()
    print(f"\nper-message processing: mean "
          f"{durations.mean() * 1e3:.3f} ms over {len(durations)} messages")


if __name__ == "__main__":
    main()
