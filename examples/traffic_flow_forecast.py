"""Vessel Traffic Flow Forecasting (VTFF) — the Figure 4d heat map.

Feeds a busy synthetic scenario through the platform, then renders the
forecast traffic flow per H3 cell and time window as an ASCII heat map
(dark green / light green / red in the UI; ``.``/``+``/``#`` here), and
compares the indirect strategy's forecast against what actually happened.

Run:  python examples/traffic_flow_forecast.py
"""

import numpy as np

from repro.ais.datasets import proximity_scenario
from repro.events.vtff import FlowGrid, TrafficLevel
from repro.hexgrid import cell_to_latlng
from repro.models import LinearKinematicModel
from repro.platform import Platform, PlatformConfig

_GLYPH = {TrafficLevel.LOW: ".", TrafficLevel.MEDIUM: "+",
          TrafficLevel.HIGH: "#"}


def main() -> None:
    scenario = proximity_scenario(n_event_pairs=20, n_near_miss_pairs=8,
                                  n_background=20, duration_s=5_400.0,
                                  seed=9)
    print(f"{scenario.n_vessels} vessels over "
          f"{scenario.duration_s / 3600:.1f} h in the Aegean")

    platform = Platform(forecaster=LinearKinematicModel(),
                        config=PlatformConfig())
    platform.publish_messages(scenario.result.messages)
    platform.process_available()

    vtff = platform.flow_snapshot()
    windows = vtff.grid.windows()
    window = windows[len(windows) // 2]
    flow = vtff.predicted_flow(window)
    print(f"\nForecast traffic flow, window {window} "
          f"({len(flow)} active cells):")

    # Render active cells on a coarse lat/lon character grid.
    coords = {cell: cell_to_latlng(cell) for cell in flow}
    lats = [c[0] for c in coords.values()]
    lons = [c[1] for c in coords.values()]
    rows, cols = 14, 48
    canvas = [[" "] * cols for _ in range(rows)]
    lat_span = max(max(lats) - min(lats), 1e-6)
    lon_span = max(max(lons) - min(lons), 1e-6)
    for cell, count in flow.items():
        lat, lon = coords[cell]
        r = int((max(lats) - lat) / lat_span * (rows - 1))
        c = int((lon - min(lons)) / lon_span * (cols - 1))
        canvas[r][c] = _GLYPH[vtff.grid.classify(count)]
    print("   " + "-" * cols)
    for row in canvas:
        print("  |" + "".join(row) + "|")
    print("   " + "-" * cols)
    print("   legend: . low traffic   + medium   # high")

    # Forecast vs reality for the busiest forecast cells.
    truth_grid = FlowGrid(window_s=vtff.window_s)
    for mmsi, track in scenario.result.truth.items():
        for p in track[::3]:
            truth_grid.add(mmsi, p.t, p.lat, p.lon)

    print(f"\n{'cell center':>22} {'forecast':>9} {'actual':>7}")
    busiest = sorted(flow.items(), key=lambda kv: -kv[1])[:8]
    errs = []
    for cell, predicted in busiest:
        lat, lon = coords[cell]
        actual = truth_grid.count(cell, window)
        errs.append(abs(predicted - actual))
        print(f"  ({lat:7.3f}, {lon:7.3f})  {predicted:>8} {actual:>7}")
    print(f"\nmean absolute error on these cells: {np.mean(errs):.2f} "
          f"vessels per cell-window")


if __name__ == "__main__":
    main()
