"""Serving-tier load harness: 10k+ live WebSocket subscribers.

The coordinator process runs the full pipeline the paper's UI sits on
top of — platform actors -> writer pool -> replication feed -> read
replica -> :class:`~repro.serving.ServingServer` — and replays the
Figure 6 global fleet workload through it while worker *subprocesses*
hold thousands of WebSocket subscriptions each (subprocesses because a
single process would exhaust its file-descriptor budget holding both
sides of every socket).

Each worker opens ``--connections`` sockets, registers one subscription
per socket (a mix of port-centred bounding boxes, hex k-rings, vessel
tracks and event feeds), prints ``READY <n>``, then counts every push it
receives. Push latency is measured end to end: the server stamps each
fanned-out update with ``time.monotonic()`` at dispatch, the worker
subtracts that stamp on receipt — on Linux ``CLOCK_MONOTONIC`` is shared
across processes, so the difference is real queueing + socket time.

The run records subscriber counts, push throughput, client p50/p99 push
latency, feed integrity (replica sequence gaps, bounded-subscription
drops) and event-push parity into ``BENCH_serving.json``; the CI gate
(``run_bench_gate.py --serving``) replays a scaled-down version of this
harness and enforces the latency ceiling and subscriber floor.

Run:  python examples/run_serving_load.py                    # full 10k
      python examples/run_serving_load.py --subscribers 2000 --workers 2
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

MMSI_BASE = 200_000_000  # FleetConfig.base_mmsi
LATENCY_RESERVOIR = 50_000


# ---------------------------------------------------------------------------
# Worker: one process holding N subscriber connections
# ---------------------------------------------------------------------------

def _pick_subscription(rng: random.Random, ports, mmsi_lo: int,
                       mmsi_hi: int) -> dict:
    """One subscription from the harness mix. Boxes and rings centre on
    real ports so they overlap the simulated shipping lanes."""
    roll = rng.random()
    port = ports[rng.randrange(len(ports))]
    if roll < 0.55:
        dlat = rng.uniform(0.5, 3.0)
        dlon = rng.uniform(0.5, 3.0)
        return {"op": "subscribe", "type": "bbox",
                "lat_min": max(port.lat - dlat, -85.0),
                "lat_max": min(port.lat + dlat, 85.0),
                "lon_min": max(port.lon - dlon, -180.0),
                "lon_max": min(port.lon + dlon, 180.0),
                "res": rng.choice((5, 6))}
    if roll < 0.75:
        return {"op": "subscribe", "type": "kring",
                "lat": port.lat, "lon": port.lon,
                "res": 5, "k": rng.randint(1, 3)}
    if roll < 0.90:
        return {"op": "subscribe", "type": "vessel",
                "mmsi": rng.randrange(mmsi_lo, mmsi_hi)}
    return {"op": "subscribe", "type": "events",
            "kind": rng.choice(("*", "collision"))}


async def _worker_read_loop(ws, shared: dict, rng: random.Random) -> None:
    """Count pushes on one connection until the end broadcast."""
    samples = shared["samples"]
    while True:
        try:
            message = await ws.recv_json()
        except Exception:
            shared["errors"] += 1
            return
        if message is None:
            return
        op = message.get("op")
        if op == "push":
            shared["pushes"] += 1
            ts = message.get("ts")
            if ts is not None:
                latency = time.monotonic() - ts
                shared["latency_count"] += 1
                if len(samples) < LATENCY_RESERVOIR:
                    samples.append(latency)
                else:
                    slot = rng.randrange(shared["latency_count"])
                    if slot < LATENCY_RESERVOIR:
                        samples[slot] = latency
        elif op == "overflow":
            # Cumulative per-session counter: keep the final value.
            shared["overflow"][id(ws)] = message.get("dropped", 0)
        elif op == "end":
            return


async def run_worker(args: argparse.Namespace) -> int:
    from repro.ais.ports import PORTS

    rng = random.Random(args.seed)
    connections = []
    for i in range(args.connections):
        try:
            ws = await connect_with_retry(args.host, args.port)
        except OSError:
            break
        connections.append(ws)
        if (i + 1) % args.connect_batch == 0:
            await asyncio.sleep(0.01)

    subscribed = 0
    for ws in connections:
        ws.send_text(json.dumps(_pick_subscription(
            rng, PORTS, args.mmsi_lo, args.mmsi_hi)))
    for ws in connections:
        await ws.drain()
    for ws in connections:
        reply = await ws.recv_json()
        if reply is not None and reply.get("op") == "subscribed":
            subscribed += 1
    print(f"READY {len(connections)} {subscribed}", flush=True)

    shared = {"pushes": 0, "latency_count": 0, "errors": 0,
              "samples": [], "overflow": {}}
    await asyncio.gather(*(_worker_read_loop(ws, shared, rng)
                           for ws in connections))
    for ws in connections:
        try:
            await ws.close()
        except Exception:
            pass
    print(json.dumps({
        "connections": len(connections),
        "subscribed": subscribed,
        "pushes": shared["pushes"],
        "errors": shared["errors"],
        "overflow_dropped": sum(shared["overflow"].values()),
        "latency_count": shared["latency_count"],
        "latency_samples": [round(v, 6) for v in shared["samples"]],
    }), flush=True)
    return 0


async def connect_with_retry(host: str, port: int, attempts: int = 5):
    from repro.serving.protocol import connect_websocket

    for attempt in range(attempts):
        try:
            return await connect_websocket(host, port)
        except OSError:
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(0.05 * (attempt + 1))


# ---------------------------------------------------------------------------
# Coordinator: platform + serving stack + worker fleet
# ---------------------------------------------------------------------------

def _raise_fd_limit() -> None:
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[idx]


async def _spawn_workers(args, port: int):
    per_worker = [args.subscribers // args.workers] * args.workers
    for i in range(args.subscribers % args.workers):
        per_worker[i] += 1
    procs = []
    for i, n in enumerate(per_worker):
        if n == 0:
            continue
        procs.append(await asyncio.create_subprocess_exec(
            sys.executable, __file__, "--worker",
            "--host", "127.0.0.1", "--port", str(port),
            "--connections", str(n),
            "--connect-batch", str(args.connect_batch),
            "--seed", str(args.seed * 1_000 + i),
            "--mmsi-lo", str(MMSI_BASE),
            "--mmsi-hi", str(MMSI_BASE + args.vessels),
            stdout=asyncio.subprocess.PIPE,
            # The final report line carries the latency reservoir
            # (~1 MB); the default 64 KiB readline limit would truncate.
            limit=64 * 1024 * 1024))
    return procs


async def run_coordinator(args: argparse.Namespace) -> int:
    from repro.ais.datasets import scalability_fleet_config
    from repro.ais.fleet import FleetEngine
    from repro.platform import Platform, PlatformConfig
    from repro.serving import (
        ReadReplica,
        ReplicaFeedPump,
        ServingConfig,
        ServingServer,
    )
    from repro.telemetry import MetricsRegistry

    _raise_fd_limit()
    platform = Platform(config=PlatformConfig(
        serving_replica_feed=True, serving_feed_maxlen=args.feed_maxlen))
    replica = ReadReplica()
    registry = MetricsRegistry()
    server = ServingServer(
        replica,
        config=ServingConfig(client_queue_maxlen=args.queue_maxlen),
        registry=registry)
    await server.start()
    print(f"serving on 127.0.0.1:{server.port}", flush=True)

    event_parity_sub = platform.api.subscribe_events("*")
    feed_sub = platform.subscribe_replication()
    pump = ReplicaFeedPump(feed_sub, replica, server).start()

    procs = await _spawn_workers(args, server.port)
    connected = subscribed = 0
    for proc in procs:
        line = (await proc.stdout.readline()).decode().split()
        if line and line[0] == "READY":
            connected += int(line[1])
            subscribed += int(line[2])
    print(f"{connected} connections up, {subscribed} subscriptions live",
          flush=True)

    engine = FleetEngine(scalability_fleet_config(
        n_vessels=args.vessels, duration_s=args.duration, seed=args.seed))
    messages = ticks = 0
    start = time.monotonic()
    for tick in engine.stream():
        if len(tick):
            platform.publish_batch(tick)
            messages += platform.process_available()
        ticks += 1
        if ticks % 10 == 0:
            platform.publish_flow_snapshot()
        # Backpressure pacing: let the pump and the send loops catch up
        # before producing the next tick, so measured push latency is the
        # serving tier's, not the producer outrunning one CPU.
        while feed_sub.pending() > 0:
            await asyncio.sleep(0.005)
        await asyncio.sleep(0)
    platform.publish_flow_snapshot()
    while feed_sub.pending() > 0:
        await asyncio.sleep(0.01)
    await asyncio.sleep(args.settle)
    wall = time.monotonic() - start

    receivers = server.broadcast({"op": "end"})
    worker_reports = []
    for proc in procs:
        try:
            raw = await asyncio.wait_for(proc.stdout.readline(),
                                         timeout=120.0)
            worker_reports.append(json.loads(raw))
        except (asyncio.TimeoutError, json.JSONDecodeError):
            proc.kill()
        await proc.wait()
    pump.stop(drain=True)
    await server.stop()
    platform.shutdown()

    samples = sorted(s for r in worker_reports
                     for s in r["latency_samples"])
    client_pushes = sum(r["pushes"] for r in worker_reports)
    stats = server.stats()
    primary_events = len(event_parity_sub.get_all())
    report = {
        "harness": "run_serving_load",
        "config": {
            "subscribers": args.subscribers, "workers": args.workers,
            "vessels": args.vessels, "duration_s": args.duration,
            "seed": args.seed, "queue_maxlen": args.queue_maxlen,
            "feed_maxlen": args.feed_maxlen,
        },
        "subscribers": {
            "target": args.subscribers,
            "connected": connected,
            "subscribed": subscribed,
            "end_broadcast_receivers": receivers,
        },
        "workload": {
            "messages": messages,
            "ticks": ticks,
            "wall_s": round(wall, 3),
            "msgs_per_s": round(messages / wall, 1) if wall else 0.0,
        },
        "push": {
            "client_pushes": client_pushes,
            "pushes_per_s": round(client_pushes / wall, 1) if wall else 0.0,
            "server_pushes": stats["pushes_total"],
            "latency_ms": {
                "p50": round(_percentile(samples, 50.0) * 1e3, 3),
                "p90": round(_percentile(samples, 90.0) * 1e3, 3),
                "p99": round(_percentile(samples, 99.0) * 1e3, 3),
                "samples": len(samples),
                "observed": sum(r["latency_count"]
                                for r in worker_reports),
            },
        },
        "overflow": {
            "client_reported_dropped": sum(r["overflow_dropped"]
                                           for r in worker_reports),
            "server_dropped": stats["client_dropped"],
        },
        "feed": {
            "batches_applied": replica.batches_applied,
            "states_applied": replica.states_applied,
            "events_applied": replica.events_applied,
            "sequence_gaps": replica.gaps,
            "subscription_drops": pump.feed_drops,
            "messages_pumped": pump.messages_pumped,
        },
        "event_parity": {
            "published": primary_events,
            "replicated": replica.events_applied,
            "ok": (primary_events == replica.events_applied
                   and replica.gaps == 0),
        },
        "worker_errors": sum(r["errors"] for r in worker_reports),
    }
    out = Path(args.json)
    out.write_text(json.dumps(report, indent=2) + "\n")
    push = report["push"]
    print(f"subscribers={subscribed} pushes={client_pushes} "
          f"({push['pushes_per_s']}/s) "
          f"p50={push['latency_ms']['p50']}ms "
          f"p99={push['latency_ms']['p99']}ms "
          f"gaps={replica.gaps} parity_ok={report['event_parity']['ok']}",
          flush=True)
    print(f"wrote {out}", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subscribers", type=int, default=10_000)
    parser.add_argument("--workers", type=int, default=5)
    parser.add_argument("--vessels", type=int, default=1_500)
    parser.add_argument("--duration", type=float, default=1_200.0,
                        help="simulated workload seconds")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--queue-maxlen", type=int, default=256)
    parser.add_argument("--feed-maxlen", type=int, default=50_000)
    parser.add_argument("--settle", type=float, default=1.0,
                        help="post-workload drain seconds")
    parser.add_argument("--connect-batch", type=int, default=200)
    parser.add_argument("--json", default="BENCH_serving.json")
    # Worker (internal) mode.
    parser.add_argument("--worker", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--host", default="127.0.0.1",
                        help=argparse.SUPPRESS)
    parser.add_argument("--port", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--connections", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--mmsi-lo", type=int, default=MMSI_BASE,
                        help=argparse.SUPPRESS)
    parser.add_argument("--mmsi-hi", type=int, default=MMSI_BASE + 1,
                        help=argparse.SUPPRESS)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.worker:
        _raise_fd_limit()
        return asyncio.run(run_worker(args))
    return asyncio.run(run_coordinator(args))


if __name__ == "__main__":
    sys.exit(main())
