"""Regenerate Table 1 (S-VRF vs linear kinematic ADE) at a chosen scale.

Run:  python examples/run_table1.py [--vessels N] [--hours H] [--epochs E]
"""

import argparse

from repro.evaluation import run_table1
from repro.evaluation.reporting import format_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vessels", type=int, default=300,
                        help="fleet size (paper: 14,895)")
    parser.add_argument("--hours", type=float, default=12.0,
                        help="stream duration in hours (paper: 24)")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    result = run_table1(n_vessels=args.vessels,
                        duration_s=args.hours * 3600.0,
                        epochs=args.epochs, cache=not args.no_cache,
                        verbose=True)
    print()
    print(format_table1(result))
    print()
    print(f"S-VRF wins all horizons: {result.svrf_wins_all_horizons()}")
    print(f"Paper reference        : linear 97.7 -> 1216.3 m, "
          f"S-VRF 91.7 -> 1060.2 m, mean difference -11.7%")


if __name__ == "__main__":
    main()
