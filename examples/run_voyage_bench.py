"""Voyage bench CLI: plan-vs-actual fuel across replanning cadences.

Two legs:

* the **sweep** runs :func:`repro.evaluation.run_voyage_bench` — the
  Voyage_Optimization exemplar's experiment B over the synthetic
  forecast-issuing field: every voyage is planned against forecasts
  (degrading toward climatology with lead time) and sailed through
  actuals, at 1h/3h/6h/12h replanning cadences plus the plan-once
  baseline — into ``BENCH_voyage.json``,
* the **platform leg** drives the same optimizer through the deterministic
  single-node :class:`~repro.platform.pipeline.Platform` under its
  virtual clock (no wall-clock reads — the AST audit in
  ``tests/cluster/test_virtual_clock.py`` holds this file to that), so
  the report also proves the three voyage event kinds flow through the
  event routers and writer pool.

Run:  python examples/run_voyage_bench.py [--smoke]
      python examples/run_voyage_bench.py --record-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ais.message import AISMessage  # noqa: E402
from repro.events.voyage import VOYAGE_EVENT_KINDS  # noqa: E402
from repro.evaluation.voyage import (  # noqa: E402
    DEFAULT_ROUTES,
    DEFAULT_SEEDS,
    run_voyage_bench,
)
from repro.platform.config import PlatformConfig  # noqa: E402
from repro.platform.pipeline import Platform  # noqa: E402

#: Smoke mode sweeps one seed; seed 2's storm track gives the sharpest
#: replanning margin, so even the quick CI leg exercises a real divert.
SMOKE_SEEDS = (2,)


def run_platform_leg(weather_seed: int = 2) -> dict:
    """Voyage events end-to-end through the deterministic platform.

    Assigns three voyages — one with comfortable margins sailing away
    from its track (divergence), one with an impossible deadline (eta
    breach), one whose route crosses seed 2's storm track so the
    departure plan dog-legs (storm avoidance) — and drives fixes on the
    virtual clock. Returns per-kind event counts read back from the
    writer pool's KV store.
    """
    config = PlatformConfig(
        voyage_optimization=True, weather_seed=weather_seed,
        weather_max_wind_mps=26.0, voyage_replan_cadence_s=21_600.0,
        voyage_divergence_m=5_000.0)
    platform = Platform(config=config)
    diverge, breach, storm = 200_000_101, 200_000_202, 200_000_303
    platform.assign_voyage(diverge, [(36.0, 14.0)],
                           deadline_t=40 * 86_400.0)
    platform.assign_voyage(breach, [(44.0, 20.0)], deadline_t=36_000.0)
    platform.assign_voyage(storm, [(39.0, 3.0)],
                           deadline_t=9 * 86_400.0)
    # First fixes land the departure plans at the process barrier...
    platform.publish_messages([
        AISMessage(mmsi=diverge, t=0.0, lat=36.0, lon=10.0,
                   sog=12.0, cog=0.0),
        AISMessage(mmsi=breach, t=0.0, lat=36.0, lon=10.0,
                   sog=12.0, cog=45.0),
        AISMessage(mmsi=storm, t=0.0, lat=36.0, lon=8.0,
                   sog=12.0, cog=315.0),
    ])
    platform.process_available()
    # ...then the divergence vessel sails due north, off its eastbound
    # planned track, while the breach vessel keeps replanning a voyage
    # it can never finish in time.
    fixes = []
    for i in range(1, 12):
        t = i * 600.0
        fixes.append(AISMessage(mmsi=diverge, t=t, lat=36.0 + 0.02 * i,
                                lon=10.0, sog=12.0, cog=0.0))
        fixes.append(AISMessage(mmsi=breach, t=t, lat=36.0 + 0.01 * i,
                                lon=10.0 + 0.01 * i, sog=12.0, cog=45.0))
    platform.publish_messages(fixes)
    platform.process_available()
    now = platform.system.now
    counts = {kind: platform.kvstore.llen(f"events:{kind}", now=now)
              for kind in VOYAGE_EVENT_KINDS}
    platform.shutdown()
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single-seed sweep for CI smoke runs")
    parser.add_argument("--seeds", type=int, nargs="*", default=None,
                        help="weather seeds to sweep (default: "
                             f"{list(DEFAULT_SEEDS)})")
    parser.add_argument("--deadline-days", type=float, default=9.0)
    parser.add_argument("--output", default="BENCH_voyage.json")
    parser.add_argument("--record-baseline", action="store_true",
                        help="stamp the report as the recorded baseline "
                             "the CI gate compares against")
    args = parser.parse_args()

    seeds = (SMOKE_SEEDS if args.smoke
             else tuple(args.seeds) if args.seeds else DEFAULT_SEEDS)
    result = run_voyage_bench(seeds=seeds,
                              deadline_days=args.deadline_days)
    report = result.to_json()
    report["baseline"] = bool(args.record_baseline)
    report["platform_events"] = run_platform_leg()

    voyages = report["workload"]["voyages"]
    print(f"voyage bench: {len(seeds)} seeds x {len(DEFAULT_ROUTES)} "
          f"routes = {voyages} voyages per cadence")
    for label, row in report["per_cadence"].items():
        print(f"  {label:5s} actual {row['actual_fuel_kg']:10.1f} kg   "
              f"planned {row['planned_fuel_kg']:10.1f} kg   "
              f"replans {row['replans']:4d}   "
              f"diversions {row['diversions']:3d}")
    for name, pct in report["deltas_pct"].items():
        print(f"  {name}: {pct:+.2f}% fuel")
    print(f"  platform events: {report['platform_events']}")

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
