"""CI bench gate: loopback Figure 6 throughput + telemetry quality checks.

Runs the distributed Figure 6 workload through the deterministic
:class:`~repro.platform.distributed.LoopbackCluster` with the batched
transport — the same leg ``BENCH_cluster.json`` records — twice:

1. **telemetry off** — the throughput leg. Fails if msgs/s regresses more
   than ``--max-regression`` (default 25%) below the recorded
   ``loopback_gate`` baseline in ``BENCH_cluster.json``.
2. **telemetry on** — the quality leg. Fails unless the run produced at
   least one *complete* cross-node trace (ingest -> vessel -> cell /
   collision hops spanning both nodes, timestamps monotone) and non-zero
   transport batch/flush metrics, or if telemetry costs more than
   ``--max-overhead`` (default 5%) extra CPU time over the telemetry-off
   leg.

A third leg gates the sharded writer pool: the same workload with a
single unbatched writer (``writer_pool_size=1``,
``writer_batch_max_ops=1`` — the pre-pool write path) versus the default
sharded, micro-batched pool. The pool must not be slower than the single
writer beyond ``--writer-tolerance`` (default 10%, absorbing CI-box
noise); the pair runs back-to-back so both see the same machine mood.

A fourth leg gates the serving tier: ``run_serving_load.py`` (the
10k-subscriber WebSocket harness, scaled down for CI) must bring at
least ``--serving-min-subscribers`` live subscriptions up, keep client
p99 push latency under ``--serving-max-p99-ms``, deliver at least one
push, and preserve event-push parity (zero replica sequence gaps, every
published event replicated). Its report is kept as
``BENCH_serving.json``.

A fifth leg — ``forecast_gate`` — gates pooled fleet-wide inference: the
single-node Figure 6 workload runs through the deterministic in-process
platform with forecast batching on and off (interleaved repeats, best of
each), and an Aegean proximity scenario runs through both modes for
event parity. Batching must not change a single proximity/collision
event count, and on the recorded baseline workload (200 vessels, 10
simulated minutes) the batched leg must reach at least
``--forecast-min-speedup`` (default 3x) times the 867 msg/s single-node
throughput recorded before pooled inference landed. The leg's numbers
are written into ``BENCH_cluster.json`` under ``forecast_gate``.

A sixth leg — ``scaling_gate`` — gates the sharded platform's scaling
curve behind the live-rebalancing work: the same S-VRF-loaded workload
runs on 1/2/4-node deterministic loopback clusters with per-node
busy-time attribution, and the 4-node critical-path throughput must
reach at least ``--scaling-min-speedup`` (default 1.7x) times the
2-node figure. Its numbers land in ``BENCH_cluster.json`` under
``scaling_gate``.

A seventh leg — ``warehouse_gate`` — gates the historical analytics
warehouse: the recorded ``BENCH_warehouse.json`` workload (a seeded
7-day traffic journal) is compacted into a fresh warehouse and the OLAP
query surface timed. Compaction throughput must stay above
``--warehouse-regression`` (default 50%) of the recorded rows/s, and
every recorded query's p99 must stay under ``--warehouse-p99-factor``
(default 4x) times its baseline (with a
``--warehouse-min-ceiling-ms`` absolute lower bound on the ceiling).

An eighth leg — ``voyage_gate`` — gates the voyage-optimization
subsystem: ``run_voyage_bench.py --smoke`` re-runs the plan-vs-actual
cadence sweep on one seed (deterministic: the planner and twin never
read the wall clock, so the numbers are exact, not noisy). The 6 h
cadence must beat the plan-once baseline by at least the recorded
``BENCH_voyage.json`` margin scaled by ``--voyage-margin-tolerance``
(default 50%), the sweep must cover at least four replanning cadences
plus the 6h-vs-1h headline delta, and all three voyage event kinds
(storm_avoidance, eta_breach, route_divergence) must flow through the
platform's event routers. Its report is kept as
``BENCH_voyage_gate.json``.

Overhead is estimated as the *best adjacent-pair CPU ratio*: every repeat
runs the two legs back-to-back (order alternating), each pair therefore
shares the box's momentary mood, and the gate takes the minimum on/off
CPU-time ratio across pairs. A genuine overhead is present in every pair;
CI-box interference (which swings identical runs by far more than the 5%
threshold) inflates only some of them, so the minimum strips it. CPU time
rather than wall time because telemetry's cost is added work, which
``time.process_time`` measures directly.

Each leg runs ``--repeats`` times, interleaved, and the best-throughput
run of each leg feeds the report and the regression gate. The full report
(both legs + the telemetry snapshot) goes to ``BENCH_gate.json``.

Run:  python examples/run_bench_gate.py [--smoke] [--repeats 2]
      python examples/run_bench_gate.py --record-baseline   # refresh anchor
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import ClusterConfig  # noqa: E402
from repro.evaluation.figure6 import run_figure6_cluster  # noqa: E402
from repro.platform import PlatformConfig  # noqa: E402

BATCHED_CONFIG = ClusterConfig(transport_batching=True)

#: Single-node Figure 6 throughput recorded in BENCH_cluster.json before
#: pooled fleet-wide inference landed (batch-size-1 forward per vessel per
#: kept fix). The forecast gate's speedup floor anchors here so a noisy
#: same-run baseline leg cannot flake CI.
PRE_BATCH_ONE_NODE_MSGS_PER_S = 867.0
#: The workload that number was recorded on; the throughput floor only
#: applies when the gate runs the same workload.
PRE_BATCH_WORKLOAD = (200, 10.0)


def run_forecast_leg(args) -> tuple[dict, list[str]]:
    """The pooled-inference gate: single-node Figure 6 throughput with
    forecast batching on vs off, plus batched-vs-unbatched event parity
    on a proximity scenario. Deterministic in-process platform — same
    seed, same scheduler, so any event-count difference is the batching
    subsystem's fault, not the box's."""
    from repro.ais.datasets import proximity_scenario, scalability_fleet_config
    from repro.ais.fleet import FleetEngine
    from repro.platform import Platform

    def throughput(batching: bool) -> float:
        gc.collect()
        platform = Platform(config=PlatformConfig(
            record_metrics=True, forecast_batching=batching))
        engine = FleetEngine(scalability_fleet_config(
            n_vessels=args.vessels, duration_s=args.minutes * 60.0,
            seed=args.seed))
        total = 0
        start = time.perf_counter()
        for tick in engine.stream():
            if len(tick):
                platform.publish_batch(tick)
                total += platform.process_available()
        return total / (time.perf_counter() - start)

    best = {False: 0.0, True: 0.0}
    for i in range(args.repeats):
        order = (False, True) if i % 2 == 0 else (True, False)
        for batching in order:
            rate = throughput(batching)
            best[batching] = max(best[batching], rate)
            print(f"      forecast {'batched  ' if batching else 'unbatched'} "
                  f"{rate:.0f} msg/s")

    def events(batching: bool) -> dict:
        platform = Platform(config=PlatformConfig(
            forecast_batching=batching))
        scenario = proximity_scenario(n_event_pairs=4, n_near_miss_pairs=2,
                                      n_background=2, duration_s=3_600.0,
                                      seed=args.seed)
        ordered = sorted(scenario.result.messages, key=lambda m: m.t)
        for i in range(0, len(ordered), 500):
            platform.publish_messages(ordered[i:i + 500])
            platform.process_available()
        now = platform.system.now
        return {kind: platform.kvstore.llen(f"events:{kind}", now=now)
                for kind in ("proximity", "collision")}

    parity = {"unbatched": events(False), "batched": events(True)}
    parity["identical"] = parity["unbatched"] == parity["batched"]

    speedup_vs_recorded = best[True] / PRE_BATCH_ONE_NODE_MSGS_PER_S
    leg = {
        "msgs_per_s_batched": best[True],
        "msgs_per_s_unbatched": best[False],
        "speedup_vs_recorded_baseline": speedup_vs_recorded,
        "recorded_baseline_msgs_per_s": PRE_BATCH_ONE_NODE_MSGS_PER_S,
        "event_parity": parity,
        "workload": {"vessels": args.vessels, "sim_minutes": args.minutes,
                     "seed": args.seed},
    }
    print(f"      forecast gate: batched {best[True]:.0f} msg/s = "
          f"{speedup_vs_recorded:.2f}x the recorded "
          f"{PRE_BATCH_ONE_NODE_MSGS_PER_S:.0f} msg/s; parity "
          f"unbatched {parity['unbatched']} vs batched {parity['batched']} "
          f"— {'identical' if parity['identical'] else 'MISMATCH'}")

    failures = []
    if not parity["identical"]:
        failures.append(
            f"forecast batching changed event counts: unbatched "
            f"{parity['unbatched']} vs batched {parity['batched']}")
    on_recorded_workload = (args.vessels, args.minutes) == PRE_BATCH_WORKLOAD
    if on_recorded_workload \
            and speedup_vs_recorded < args.forecast_min_speedup:
        failures.append(
            f"batched single-node throughput {best[True]:.0f} msg/s is only "
            f"{speedup_vs_recorded:.2f}x the recorded "
            f"{PRE_BATCH_ONE_NODE_MSGS_PER_S:.0f} msg/s baseline "
            f"(floor {args.forecast_min_speedup:.1f}x)")
    elif not on_recorded_workload:
        print(f"      (speedup floor not enforced: workload differs from "
              f"the recorded {PRE_BATCH_WORKLOAD[0]} vessels / "
              f"{PRE_BATCH_WORKLOAD[1]:.0f} min baseline)")
    return leg, failures


def run_scaling_leg(args) -> tuple[dict, list[str]]:
    """The live-rebalancing scaling gate: the N-node curve through the
    deterministic loopback cluster with per-node busy-time attribution
    (:func:`repro.evaluation.run_scaling_curve`), so the ratio measures
    the sharding, not the box. Doubling 2 -> 4 nodes must keep paying:
    the 4-node critical-path throughput has to reach at least
    ``--scaling-min-speedup`` (default 1.7x) times the 2-node figure."""
    from repro.evaluation import run_scaling_curve

    gc.collect()
    curve = run_scaling_curve(node_counts=(1, 2, 4),
                              n_vessels=args.scaling_vessels,
                              duration_s=args.scaling_minutes * 60.0,
                              seed=args.seed)
    speedup = curve.speedup(2, 4)
    leg = curve.as_report()
    leg["speedup_4_over_2"] = speedup
    leg["workload"] = {"vessels": args.scaling_vessels,
                       "sim_minutes": args.scaling_minutes,
                       "seed": args.seed}
    for point in curve.points:
        print(f"      scaling {point.num_nodes} node(s): "
              f"{point.throughput_msgs_per_s:.0f} msg/s critical-path "
              f"(busiest node {point.critical_path_s:.2f}s)")
    print(f"      scaling gate: 4-node over 2-node {speedup:.2f}x "
          f"(floor {args.scaling_min_speedup:.2f}x)")

    failures = []
    if speedup < args.scaling_min_speedup:
        failures.append(
            f"4-node critical-path throughput is only {speedup:.2f}x the "
            f"2-node figure (floor {args.scaling_min_speedup:.2f}x)")
    return leg, failures


def run_warehouse_leg(args) -> tuple[dict, list[str]]:
    """The historical-warehouse gate: replay the recorded
    ``BENCH_warehouse.json`` workload (journal -> compaction -> OLAP
    queries) and enforce a compaction-throughput floor plus per-query p99
    ceilings against the baseline. Under ``--smoke`` a reduced workload
    runs with sanity checks only (a scaled-down run cannot be compared
    against the full-size baseline)."""
    from repro.evaluation.warehouse import run_warehouse_bench

    gc.collect()
    failures: list[str] = []
    baseline_path = Path(args.warehouse_baseline)
    baseline = json.loads(baseline_path.read_text()) \
        if baseline_path.exists() else None

    if args.smoke or baseline is None:
        if baseline is None and not args.smoke:
            print(f"WARNING: no warehouse baseline at "
                  f"{args.warehouse_baseline}; sanity checks only "
                  f"(run run_warehouse_bench.py --record-baseline)",
                  file=sys.stderr)
        result = run_warehouse_bench(vessels=30, days=7, fixes_per_day=48,
                                     seed=args.seed, query_repeats=5)
        leg = result.to_json()
        rows_per_s = leg["compaction"]["rows_per_s"]
        print(f"      warehouse gate (smoke): "
              f"{leg['compaction']['rows']} rows at {rows_per_s:.0f} rows/s")
        if leg["compaction"]["rows"] != (leg["position_rows"]
                                         + leg["event_rows"]):
            failures.append(
                f"warehouse compacted {leg['compaction']['rows']} rows, "
                f"journal carried {leg['position_rows']} fixes + "
                f"{leg['event_rows']} events")
        if rows_per_s < 500.0:
            failures.append(f"warehouse compaction {rows_per_s:.0f} rows/s "
                            f"below the 500 rows/s sanity floor")
        return leg, failures

    workload = baseline["workload"]
    result = run_warehouse_bench(
        vessels=workload["vessels"], days=workload["days"],
        fixes_per_day=workload["fixes_per_day"], seed=workload["seed"],
        resolution=workload["resolution"])
    leg = result.to_json()

    rows_per_s = leg["compaction"]["rows_per_s"]
    recorded = baseline["compaction"]["rows_per_s"]
    floor = recorded * (1.0 - args.warehouse_regression)
    print(f"      warehouse gate: compaction {rows_per_s:.0f} rows/s vs "
          f"floor {floor:.0f} (recorded {recorded:.0f} "
          f"- {args.warehouse_regression * 100.0:.0f}%)")
    if rows_per_s < floor:
        failures.append(
            f"warehouse compaction {rows_per_s:.0f} rows/s regressed below "
            f"{floor:.0f} ({args.warehouse_regression * 100.0:.0f}% under "
            f"the recorded {recorded:.0f})")
    if leg["compaction"]["rows"] != (leg["position_rows"]
                                     + leg["event_rows"]):
        failures.append(
            f"warehouse compacted {leg['compaction']['rows']} rows, "
            f"journal carried {leg['position_rows']} fixes + "
            f"{leg['event_rows']} events")

    for name, recorded_stats in baseline["queries"].items():
        if "p99_ms" not in recorded_stats:
            continue
        measured = leg["queries"][name]["p99_ms"]
        # A multiplicative ceiling with an absolute lower bound: tiny
        # recorded baselines must not turn box noise into a gate failure.
        ceiling = max(recorded_stats["p99_ms"] * args.warehouse_p99_factor,
                      args.warehouse_min_ceiling_ms)
        print(f"      warehouse query {name}: p99 {measured:.1f} ms "
              f"(ceiling {ceiling:.0f})")
        if measured > ceiling:
            failures.append(
                f"warehouse query {name} p99 {measured:.1f} ms exceeds "
                f"the ceiling {ceiling:.0f} ms (recorded "
                f"{recorded_stats['p99_ms']:.1f} ms "
                f"x {args.warehouse_p99_factor:.1f})")
    return leg, failures


def run_voyage_leg(args) -> tuple[dict, list[str]]:
    """The voyage-optimization gate: re-run the plan-vs-actual cadence
    sweep smoke-scaled (one seed) as its own process and assert on the
    report it writes. The sweep is deterministic — neither the planner
    nor the twin ever reads the wall clock — so the margins are exact
    reproductions, not box-mood samples."""
    import subprocess

    harness = Path(__file__).resolve().parent / "run_voyage_bench.py"
    command = [sys.executable, str(harness), "--smoke",
               "--output", args.voyage_output]
    proc = subprocess.run(command, timeout=1_800)
    if proc.returncode != 0:
        return {}, [f"voyage bench exited with {proc.returncode}"]
    report = json.loads(Path(args.voyage_output).read_text())

    failures = []
    deltas = report["deltas_pct"]
    margin = deltas.get("6h_vs_none", 0.0)
    cadences = [label for label, row in report["per_cadence"].items()
                if row["cadence_s"] is not None]
    baseline_path = Path(args.voyage_baseline)
    recorded = json.loads(baseline_path.read_text()).get(
        "deltas_pct", {}) if baseline_path.exists() else {}
    floor = recorded.get("6h_vs_none", 0.0) \
        * (1.0 - args.voyage_margin_tolerance)
    events = report.get("platform_events", {})
    print(f"      voyage gate: 6h saves {margin:+.2f}% fuel vs "
          f"no-replanning (floor {floor:.2f}%), 6h vs 1h "
          f"{deltas.get('6h_vs_1h', 0.0):+.2f}%, "
          f"{len(cadences)} cadences, platform events {events}")

    if len(cadences) < 4:
        failures.append(
            f"voyage sweep covered only {len(cadences)} replanning "
            f"cadences (need >= 4)")
    if "6h_vs_1h" not in deltas:
        failures.append("voyage sweep recorded no 6h-vs-1h delta")
    if margin <= 0.0:
        failures.append(
            f"6 h replanning saved no fuel over the plan-once baseline "
            f"({margin:+.2f}%)")
    elif margin < floor:
        failures.append(
            f"6 h replanning margin {margin:.2f}% fell below the floor "
            f"{floor:.2f}% (recorded {recorded.get('6h_vs_none', 0.0):.2f}% "
            f"- {args.voyage_margin_tolerance * 100.0:.0f}%)")
    if not baseline_path.exists():
        print(f"WARNING: no voyage baseline at {args.voyage_baseline}; "
              f"margin floor not enforced "
              f"(run run_voyage_bench.py --record-baseline)",
              file=sys.stderr)
    for kind in ("storm_avoidance", "eta_breach", "route_divergence"):
        if events.get(kind, 0) < 1:
            failures.append(
                f"no {kind} event reached the platform's writer pool")
    leg = {
        "deltas_pct": deltas,
        "cadences": len(cadences),
        "margin_floor_pct": floor,
        "platform_events": events,
        "workload": report["workload"],
    }
    return leg, failures


def run_once(args, telemetry: bool) -> dict:
    """One Figure 6 loopback run (2 nodes, batched transport)."""
    gc.collect()
    config = PlatformConfig(record_metrics=True,
                            record_telemetry=telemetry,
                            trace_sample_every=32)
    cpu_start = time.process_time()
    result = run_figure6_cluster(
        n_vessels=args.vessels, duration_s=args.minutes * 60.0,
        num_nodes=2, seed=args.seed, platform_config=config,
        cluster_config=BATCHED_CONFIG)
    run = {
        "msgs_per_s": result.throughput_msgs_per_s,
        "messages": result.total_messages,
        "wall_s": result.wall_time_s,
        "cpu_s": time.process_time() - cpu_start,
        "vessel_distribution": result.vessel_distribution,
        "latency": result.combined_snapshot(),
    }
    if telemetry:
        run["telemetry"] = result.telemetry
    return run


def run_legs(args) -> tuple[dict, dict, list[float]]:
    """Both legs, interleaved so CI-box noise hits them symmetrically;
    the best run of each leg counts for throughput, and each repeat's
    back-to-back pair yields one on/off CPU-time ratio for the overhead
    estimate (the gate measures the code, not the scheduler's mood)."""
    best = {False: None, True: None}
    pair_ratios = []
    for i in range(args.repeats):
        order = (False, True) if i % 2 == 0 else (True, False)
        pair = {}
        for telemetry in order:
            run = run_once(args, telemetry)
            pair[telemetry] = run["cpu_s"]
            if (best[telemetry] is None
                    or run["msgs_per_s"] > best[telemetry]["msgs_per_s"]):
                best[telemetry] = run
            print(f"      {'on ' if telemetry else 'off'} "
                  f"{run['msgs_per_s']:.0f} msg/s "
                  f"({run['messages']} msgs, {run['wall_s']:.1f}s wall, "
                  f"{run['cpu_s']:.1f}s cpu)")
        pair_ratios.append(pair[True] / pair[False])
    return best[False], best[True], pair_ratios


def run_writer_leg(args) -> dict:
    """Sharded micro-batched writer pool vs a single unbatched writer,
    back-to-back, best throughput of each across the repeats."""
    single_config = PlatformConfig(record_metrics=True, writer_pool_size=1,
                                   writer_batch_max_ops=1)
    sharded_config = PlatformConfig(record_metrics=True)
    best = {"single": 0.0, "sharded": 0.0}
    for i in range(args.repeats):
        order = (("single", single_config), ("sharded", sharded_config))
        if i % 2:
            order = tuple(reversed(order))
        for label, config in order:
            gc.collect()
            result = run_figure6_cluster(
                n_vessels=args.vessels, duration_s=args.minutes * 60.0,
                num_nodes=2, seed=args.seed, platform_config=config,
                cluster_config=BATCHED_CONFIG)
            best[label] = max(best[label], result.throughput_msgs_per_s)
            print(f"      writer {label:7s} "
                  f"{result.throughput_msgs_per_s:.0f} msg/s")
    best["ratio"] = best["sharded"] / best["single"]
    return best


def run_serving_leg(args) -> tuple[dict, list[str]]:
    """The serving-tier gate: run the WebSocket load harness as its own
    process tree (workers need their own FD budgets) and assert on the
    report it writes."""
    import subprocess

    harness = Path(__file__).resolve().parent / "run_serving_load.py"
    command = [
        sys.executable, str(harness),
        "--subscribers", str(args.serving_subscribers),
        "--workers", str(args.serving_workers),
        "--vessels", str(args.serving_vessels),
        "--duration", str(args.serving_minutes * 60.0),
        "--seed", str(args.seed),
        "--json", args.serving_output,
    ]
    proc = subprocess.run(command, timeout=1_800)
    if proc.returncode != 0:
        return {}, [f"serving harness exited with {proc.returncode}"]
    report = json.loads(Path(args.serving_output).read_text())

    failures = []
    subscribed = report["subscribers"]["subscribed"]
    floor = args.serving_min_subscribers
    print(f"      serving gate: {subscribed} subscribers (floor {floor}), "
          f"p99 {report['push']['latency_ms']['p99']:.0f} ms "
          f"(ceiling {args.serving_max_p99_ms:.0f}), "
          f"{report['push']['client_pushes']} pushes, "
          f"gaps {report['feed']['sequence_gaps']}")
    if subscribed < floor:
        failures.append(f"serving subscribers {subscribed} below the "
                        f"floor {floor}")
    p99 = report["push"]["latency_ms"]["p99"]
    if p99 > args.serving_max_p99_ms:
        failures.append(f"serving p99 push latency {p99:.0f} ms exceeds "
                        f"{args.serving_max_p99_ms:.0f} ms")
    if report["push"]["client_pushes"] <= 0:
        failures.append("serving run delivered no pushes at all")
    if not report["event_parity"]["ok"]:
        failures.append(
            f"event-push parity broken: published "
            f"{report['event_parity']['published']}, replicated "
            f"{report['event_parity']['replicated']}, "
            f"{report['feed']['sequence_gaps']} sequence gap(s)")
    return report, failures


def check_telemetry(snapshot: dict) -> list[str]:
    """The quality assertions over the telemetry-on leg's snapshot."""
    problems = []
    complete = snapshot.get("traces_complete", {})
    if not complete:
        problems.append("no complete cross-node trace "
                        "(ingest -> vessel -> cell over >= 2 nodes)")
    batch_frames = flushes = 0
    for node_snap in snapshot.get("nodes", {}).values():
        metrics = node_snap.get("metrics", {})
        for name, summary in metrics.get("histograms", {}).items():
            if name.startswith("transport_batch_frames"):
                batch_frames += summary.get("count", 0)
        for name, value in metrics.get("counters", {}).items():
            if name.startswith("transport_flush_total"):
                flushes += value
    if not batch_frames:
        problems.append("transport_batch_frames histogram recorded nothing")
    if not flushes:
        problems.append("transport_flush_total counters are all zero")
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vessels", type=int, default=200)
    parser.add_argument("--minutes", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per leg; the best throughput counts")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run (80 vessels, 5 minutes, 1 repeat)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated throughput drop below the recorded "
                             "baseline (fraction)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="tolerated telemetry CPU-time cost relative "
                             "to the telemetry-off leg (fraction)")
    parser.add_argument("--writer-tolerance", type=float, default=0.10,
                        help="how far below the single-writer throughput "
                             "the sharded pool may fall (fraction)")
    parser.add_argument("--forecast-min-speedup", type=float, default=3.0,
                        help="batched single-node throughput floor, as a "
                             "multiple of the recorded pre-batching "
                             "867 msg/s baseline")
    parser.add_argument("--scaling-vessels", type=int, default=96)
    parser.add_argument("--scaling-minutes", type=float, default=60.0)
    parser.add_argument("--scaling-min-speedup", type=float, default=1.7,
                        help="4-node critical-path throughput floor, as a "
                             "multiple of the 2-node figure")
    parser.add_argument("--serving-subscribers", type=int, default=2_000)
    parser.add_argument("--serving-workers", type=int, default=2)
    parser.add_argument("--serving-vessels", type=int, default=400)
    parser.add_argument("--serving-minutes", type=float, default=10.0)
    parser.add_argument("--serving-min-subscribers", type=int, default=1_900,
                        help="live-subscription floor for the serving leg")
    parser.add_argument("--serving-max-p99-ms", type=float, default=1_500.0,
                        help="client p99 push-latency ceiling (ms)")
    parser.add_argument("--serving-output", default="BENCH_serving.json")
    parser.add_argument("--warehouse-baseline", default="BENCH_warehouse.json",
                        help="recorded warehouse bench baseline "
                             "(run_warehouse_bench.py --record-baseline)")
    parser.add_argument("--warehouse-regression", type=float, default=0.5,
                        help="tolerated compaction-throughput drop below "
                             "the recorded baseline before failing")
    parser.add_argument("--warehouse-p99-factor", type=float, default=4.0,
                        help="query p99 ceiling as a multiple of the "
                             "recorded baseline p99")
    parser.add_argument("--warehouse-min-ceiling-ms", type=float,
                        default=250.0,
                        help="absolute lower bound on any query p99 "
                             "ceiling (keeps tiny baselines from gating "
                             "on box noise)")
    parser.add_argument("--skip-warehouse", action="store_true",
                        help="skip the warehouse compaction/query leg")
    parser.add_argument("--voyage-baseline", default="BENCH_voyage.json",
                        help="recorded voyage bench baseline "
                             "(run_voyage_bench.py --record-baseline)")
    parser.add_argument("--voyage-margin-tolerance", type=float,
                        default=0.5,
                        help="how far below the recorded 6h-vs-none fuel "
                             "margin the smoke sweep may fall (fraction)")
    parser.add_argument("--voyage-output",
                        default="BENCH_voyage_gate.json")
    parser.add_argument("--skip-voyage", action="store_true",
                        help="skip the voyage-optimization cadence leg")
    parser.add_argument("--skip-serving", action="store_true",
                        help="skip the serving-tier leg")
    parser.add_argument("--baseline", default="BENCH_cluster.json",
                        help="file holding the recorded loopback_gate "
                             "baseline")
    parser.add_argument("--record-baseline", action="store_true",
                        help="write this run's telemetry-off throughput "
                             "into the baseline file instead of gating")
    parser.add_argument("--output", default="BENCH_gate.json")
    args = parser.parse_args()
    if args.smoke:
        args.vessels, args.minutes, args.repeats = 80, 5.0, 1
        args.serving_subscribers, args.serving_workers = 300, 1
        args.serving_vessels, args.serving_minutes = 150, 5.0
        args.serving_min_subscribers = 280

    print(f"bench gate: {args.vessels} vessels, {args.minutes:.0f} simulated "
          f"minutes, 2-node loopback, batched transport, "
          f"{args.repeats} repeat(s) per leg (interleaved, best counts)")
    off, on, pair_ratios = run_legs(args)
    print(f"      best: telemetry off {off['msgs_per_s']:.0f} msg/s, "
          f"telemetry on {on['msgs_per_s']:.0f} msg/s")

    overhead = min(pair_ratios) - 1.0
    telemetry_snapshot = on.pop("telemetry")
    complete = telemetry_snapshot.get("traces_complete", {})
    print(f"      telemetry cpu overhead: {overhead * 100.0:+.1f}% "
          f"(best of pair ratios "
          f"{', '.join(f'{r:.3f}' for r in pair_ratios)})  "
          f"complete cross-node traces: {len(complete)}")

    baseline_path = Path(args.baseline)
    recorded = json.loads(baseline_path.read_text()) \
        if baseline_path.exists() else {}
    baseline = recorded.get("loopback_gate", {}).get("msgs_per_s")

    failures = []
    if args.record_baseline:
        recorded["loopback_gate"] = {
            "msgs_per_s": off["msgs_per_s"],
            "workload": {"vessels": args.vessels,
                         "sim_minutes": args.minutes, "seed": args.seed},
        }
        baseline_path.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"recorded loopback_gate baseline "
              f"{off['msgs_per_s']:.0f} msg/s in {args.baseline}")
    elif baseline is None:
        print(f"WARNING: no loopback_gate baseline in {args.baseline}; "
              f"throughput not gated (run --record-baseline)",
              file=sys.stderr)
    else:
        floor = baseline * (1.0 - args.max_regression)
        print(f"      throughput gate: {off['msgs_per_s']:.0f} msg/s vs "
              f"floor {floor:.0f} (recorded {baseline:.0f} "
              f"- {args.max_regression * 100.0:.0f}%)")
        if off["msgs_per_s"] < floor:
            failures.append(
                f"throughput {off['msgs_per_s']:.0f} msg/s regressed below "
                f"{floor:.0f} ({args.max_regression * 100.0:.0f}% under the "
                f"recorded {baseline:.0f})")
    if overhead > args.max_overhead:
        failures.append(f"telemetry CPU overhead {overhead * 100.0:.1f}% "
                        f"exceeds {args.max_overhead * 100.0:.0f}%")
    failures.extend(check_telemetry(telemetry_snapshot))

    writer = run_writer_leg(args)
    print(f"      writer gate: sharded {writer['sharded']:.0f} msg/s vs "
          f"single {writer['single']:.0f} "
          f"(ratio {writer['ratio']:.2f}, floor "
          f"{1.0 - args.writer_tolerance:.2f})")
    if writer["ratio"] < 1.0 - args.writer_tolerance:
        failures.append(
            f"sharded writer pool throughput {writer['sharded']:.0f} msg/s "
            f"fell {(1.0 - writer['ratio']) * 100.0:.0f}% below the "
            f"single-writer baseline {writer['single']:.0f} "
            f"(tolerance {args.writer_tolerance * 100.0:.0f}%)")

    forecast_leg, forecast_failures = run_forecast_leg(args)
    failures.extend(forecast_failures)

    scaling_leg, scaling_failures = run_scaling_leg(args)
    failures.extend(scaling_failures)

    warehouse_leg = None
    if args.skip_warehouse:
        print("      warehouse gate: skipped (--skip-warehouse)")
    else:
        warehouse_leg, warehouse_failures = run_warehouse_leg(args)
        failures.extend(warehouse_failures)

    voyage_leg = None
    if args.skip_voyage:
        print("      voyage gate: skipped (--skip-voyage)")
    else:
        voyage_leg, voyage_failures = run_voyage_leg(args)
        failures.extend(voyage_failures)
    # The forecast and scaling gates' numbers live next to the recorded
    # baselines they are measured against.
    recorded["forecast_gate"] = forecast_leg
    recorded["scaling_gate"] = scaling_leg
    baseline_path.write_text(json.dumps(recorded, indent=2) + "\n")

    serving_summary = None
    if args.skip_serving:
        print("      serving gate: skipped (--skip-serving)")
    else:
        serving_report, serving_failures = run_serving_leg(args)
        failures.extend(serving_failures)
        if serving_report:
            serving_summary = {
                "subscribed": serving_report["subscribers"]["subscribed"],
                "client_pushes": serving_report["push"]["client_pushes"],
                "latency_ms": serving_report["push"]["latency_ms"],
                "sequence_gaps": serving_report["feed"]["sequence_gaps"],
                "event_parity_ok": serving_report["event_parity"]["ok"],
            }

    report = {
        "workload": {"vessels": args.vessels, "sim_minutes": args.minutes,
                     "seed": args.seed, "repeats": args.repeats},
        "serving_gate": serving_summary,
        "baseline_msgs_per_s": baseline,
        "telemetry_off": off,
        "telemetry_on": on,
        "telemetry_overhead": overhead,
        "pair_cpu_ratios": pair_ratios,
        "writer_gate": writer,
        "forecast_gate": forecast_leg,
        "scaling_gate": scaling_leg,
        "warehouse_gate": warehouse_leg,
        "voyage_gate": voyage_leg,
        "complete_traces": len(complete),
        "telemetry_snapshot": telemetry_snapshot,
        "failures": failures,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print("bench gate passed")


if __name__ == "__main__":
    main()
