"""Distributed Figure 6: the sharded platform across two OS processes.

Spawns a second worker process, forms a TCP cluster (seed-node join,
heartbeats, consistent-hash shard table), then streams the scaled global
AIS workload through the sharded platform three times — on a single node,
over both nodes with the pre-optimisation wire path (synchronous
frame-per-message sends, whole-frame pickle codec), and over both nodes
with the full outbound pipeline (writer threads, micro-batching, struct
fast-path codec) — and writes the machine-readable comparison to
``BENCH_cluster.json``:

    {"one_node": {"msgs_per_s": ..., "p50_ms": ..., "p99_ms": ...},
     "two_node": {..., "vessel_distribution": {...}},
     "two_node_batched": {..., "transport": {...}},
     "scaling": {"points": [...], "speedup_4_over_2": ...}}

A fourth leg records the N-node scaling curve (1/2/4/8 nodes; 1/2/4
under ``--smoke``) through the deterministic loopback cluster with
per-node busy-time attribution — the evidence behind the live-shard-
rebalancing scaling claim. ``--scaling-only`` refreshes just that
section without re-running the TCP legs.

Run:  python examples/run_figure6_cluster.py [--vessels N] [--minutes M]
      python examples/run_figure6_cluster.py --smoke --min-speedup 2.0
      python examples/run_figure6_cluster.py --scaling-only

The paper's deployment shards 170K vessel actors over an Akka cluster;
this driver demonstrates the same topology end to end: remote transport,
membership, location-transparent refs, and collision/proximity events
resolved by cell actors regardless of which node hosts them.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.ais.datasets import (  # noqa: E402
    proximity_scenario,
    scalability_fleet_config,
)
from repro.ais.fleet import FleetEngine  # noqa: E402
from repro.cluster import ClusterConfig, ClusterNode, TcpTransport  # noqa: E402
from repro.evaluation import run_scaling_curve  # noqa: E402
from repro.platform import DistributedPlatform  # noqa: E402

#: Generous timeouts — a loaded CI box must not trip the failure detector.
CLUSTER_CONFIG = ClusterConfig(heartbeat_interval_s=0.5,
                               suspect_after_s=5.0, down_after_s=15.0)
#: Same timeouts with per-peer outbound micro-batching switched on.
BATCHED_CONFIG = dataclasses.replace(CLUSTER_CONFIG, transport_batching=True)
SEED_ID = "node-00"
WORKER_ID = "node-01"

#: The two-node numbers recorded in BENCH_cluster.json before the batched
#: transport landed (the "5x cross-node gap"): the ``--min-speedup`` gate
#: is anchored to these so a noisy same-run baseline leg cannot flake CI.
PRE_OPT_TWO_NODE_MSGS_PER_S = 188.0
PRE_OPT_TWO_NODE_P99_MS = 128.0


def make_node(node_id: str, record_metrics: bool = True,
              batching: bool = False, legacy: bool = False) -> ClusterNode:
    """``legacy=True`` reproduces the pre-optimisation wire path (the
    baseline row): synchronous frame-per-message sends and the whole-frame
    pickle codec, no batching."""
    config = BATCHED_CONFIG if batching else CLUSTER_CONFIG
    transport = TcpTransport(port=0,
                             queue_frames=config.outbound_queue_frames,
                             block_timeout_s=config.send_block_timeout_s,
                             sync_sends=legacy)
    workers = int(os.environ.get("REPRO_CLUSTER_WORKERS", "0")) \
        or max(2, (os.cpu_count() or 2) // 2)
    node = ClusterNode(node_id, transport,
                       config=config, system_mode="threaded",
                       workers=workers,
                       record_metrics=record_metrics)
    node.start()
    return node


def ticker(node: ClusterNode, stop) -> None:
    while not stop.is_set():
        node.tick()
        stop.wait(CLUSTER_CONFIG.heartbeat_interval_s / 2)


# -- worker process ------------------------------------------------------------------


def worker_main(args) -> None:
    import threading

    node = make_node(WORKER_ID, batching=args.batching,
                     legacy=args.legacy)
    platform = DistributedPlatform(node, is_seed=False)
    stop = threading.Event()
    node.register_control("shutdown", lambda params: stop.set() or {"ok": 1})
    node.join(SEED_ID, (args.seed_host, args.seed_port))
    if not node.joined.wait(timeout=30.0):
        print("worker: join timed out", file=sys.stderr)
        sys.exit(2)
    print(f"worker: joined cluster as {WORKER_ID}", flush=True)
    ticker(node, stop)
    # Drain any in-flight work before exiting so late frames don't error.
    node.system.await_idle(timeout=10.0)
    time.sleep(0.5)
    platform.shutdown()


# -- driver --------------------------------------------------------------------------


def spawn_worker(seed_address, batching: bool = False,
                 legacy: bool = False) -> subprocess.Popen:
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    argv = [sys.executable, os.path.abspath(__file__), "--worker",
            "--seed-host", str(seed_address[0]),
            "--seed-port", str(seed_address[1])]
    if batching:
        argv.append("--batching")
    if legacy:
        argv.append("--legacy")
    return subprocess.Popen(argv, env=env)


def wait_until_stable(platforms_stats, lag_fn, timeout_s: float = 120.0,
                      polls: int = 3, interval_s: float = 0.25) -> float:
    """Poll processed-message counters until the cluster goes quiet.

    Returns the monotonic time at which the final counter value was first
    observed, so callers can measure wall time up to when work actually
    finished rather than when the poller noticed (the detection tail is a
    constant ~``polls * interval_s`` that would otherwise dilute
    throughput ratios between fast and slow runs equally).
    """
    deadline = time.monotonic() + timeout_s
    stable = 0
    last = None
    settled_at = time.monotonic()
    while time.monotonic() < deadline:
        current = tuple(s()["messages_processed"] for s in platforms_stats)
        if lag_fn() == 0 and current == last:
            stable += 1
            if stable >= polls:
                return settled_at
        else:
            stable = 0
            settled_at = time.monotonic()
        last = current
        time.sleep(interval_s)
    raise TimeoutError("cluster did not reach quiescence")


def drive_stream(platform: DistributedPlatform, engine: FleetEngine,
                 sync_nodes: list[str]) -> int:
    total = 0
    for tick in engine.stream():
        if len(tick):
            platform.publish_batch(tick)
            total += platform.ingest_available()
    now = platform.system.now
    for node_id in sync_nodes:
        try:
            platform.node.ask_control(node_id, "sync_clock", {"now": now})
        except Exception:
            pass
    return total


def flush_cluster_writers(platform: DistributedPlatform, node: ClusterNode,
                          remote_ids: list[str]) -> None:
    """Flush every node's pending micro-batches so KV event counts include
    everything processed. Two phases, cluster-wide: first the pooled
    forecast batches (their fan-out emits the deferred vessel state
    updates), then the writer pools — in that order, or late updates
    would sit behind an already-consumed flush until a linger fires."""
    platform.flush_forecasts()
    for node_id in remote_ids:
        try:
            node.ask_control(node_id, "flush_forecasts").result(10.0)
        except Exception:
            pass
    platform.system.await_idle(timeout=30.0)
    platform.flush_writers()
    for node_id in remote_ids:
        try:
            node.ask_control(node_id, "flush_writers").result(10.0)
        except Exception:
            pass
    platform.system.await_idle(timeout=30.0)


def run_event_parity(seed: int) -> dict:
    """Prove batching does not change what the platform computes.

    Thread scheduling makes TCP-cluster event counts arrival-order
    sensitive (the proximity detector debounces per vessel pair), so the
    apples-to-apples comparison runs the same scenario through the
    deterministic loopback cluster with and without batching: identical
    sharding, identical codec, identical event counts required.
    """
    from repro.platform.distributed import LoopbackCluster

    scenario = proximity_scenario(n_event_pairs=4, n_near_miss_pairs=2,
                                  n_background=2, duration_s=3_600.0,
                                  seed=seed)
    ordered = sorted(scenario.result.messages, key=lambda m: m.t)
    counts = {}
    for label, config in (("unbatched", CLUSTER_CONFIG),
                          ("batched", BATCHED_CONFIG)):
        cluster = LoopbackCluster(num_nodes=2, cluster_config=config)
        try:
            for i in range(0, len(ordered), 500):
                cluster.seed.publish_messages(ordered[i:i + 500])
                cluster.process_available()
            counts[label] = {
                "proximity": cluster.event_count("proximity"),
                "collision": cluster.event_count("collision"),
                "vessel_distribution": cluster.vessel_distribution(),
            }
        finally:
            cluster.shutdown()
    counts["identical"] = counts["unbatched"] == counts["batched"]
    return counts


def run_scaling_leg(smoke: bool) -> dict:
    """The N-node scaling curve: the same S-VRF-loaded workload at every
    cluster size, on the deterministic loopback cluster with per-node
    busy-time attribution, so the numbers are scheduler-noise free (see
    :func:`repro.evaluation.run_scaling_curve`). Throughput is messages
    over the busiest single node's attributed time — what a
    one-core-per-node deployment would wait for."""
    node_counts = (1, 2, 4) if smoke else (1, 2, 4, 8)
    vessels = 96
    duration_s = 3_600.0
    curve = run_scaling_curve(node_counts=node_counts, n_vessels=vessels,
                              duration_s=duration_s)
    report = curve.as_report()
    report["workload"] = {"vessels": vessels, "sim_seconds": duration_s,
                          "node_counts": list(node_counts)}
    report["speedup_4_over_2"] = curve.speedup(2, 4)
    for point in curve.points:
        print(f"      {point.num_nodes} node(s): "
              f"{point.throughput_msgs_per_s:.0f} msg/s critical-path "
              f"({point.messages} msgs, busiest node "
              f"{point.critical_path_s:.2f}s, "
              f"{point.forecast_batches} forecast batches)")
    print(f"      4-node over 2-node speedup: "
          f"{report['speedup_4_over_2']:.2f}x")
    return report


def run_event_check(platform: DistributedPlatform, node: ClusterNode,
                    stats_fns, before: dict) -> dict:
    """Stream a small Aegean proximity scenario through the running
    cluster and report the events its cell actors resolve — proof that
    proximity/collision detection works across node boundaries."""
    scenario = proximity_scenario(n_event_pairs=4, n_near_miss_pairs=2,
                                  n_background=2, duration_s=3_600.0)
    messages = sorted(scenario.result.messages, key=lambda m: m.t)
    platform.publish_messages(messages)
    while platform.ingest_available() or platform.ingestion.lag:
        pass
    platform.system.await_idle(timeout=60.0)
    flush_cluster_writers(platform, node, [WORKER_ID])
    wait_until_stable(stats_fns, lambda: platform.ingestion.lag)

    proximity = platform.event_count("proximity")
    collision = platform.event_count("collision")
    remote = node.ask_control(WORKER_ID, "platform_stats").result(10.0)
    proximity += remote["events_proximity"]
    collision += remote["events_collision"]
    return {"scenario_vessels": scenario.n_vessels,
            "scenario_messages": len(messages),
            "ground_truth_events": len(scenario.events),
            "proximity": proximity - before["proximity"],
            "collision": collision - before["collision"]}


def run_benchmark(num_nodes: int, vessels: int, minutes: float,
                  seed: int, batching: bool = False,
                  legacy: bool = False) -> dict:
    import threading

    from repro.cluster import codec

    codec.reset_counters()
    codec.set_fast_path(not legacy)
    node = make_node(SEED_ID, batching=batching, legacy=legacy)
    platform = DistributedPlatform(node, is_seed=True)
    stop = threading.Event()
    tick_thread = threading.Thread(target=ticker, args=(node, stop),
                                   daemon=True)
    tick_thread.start()
    worker = None
    try:
        if num_nodes == 2:
            worker = spawn_worker(node.transport.address, batching=batching,
                                  legacy=legacy)
            deadline = time.monotonic() + 60.0
            while WORKER_ID not in node.membership.alive_ids():
                if time.monotonic() > deadline:
                    raise TimeoutError("worker never joined")
                time.sleep(0.1)
            print(f"  cluster formed: {node.membership.alive_ids()}, "
                  f"shard table epoch {node.table.epoch}")

        engine = FleetEngine(scalability_fleet_config(
            n_vessels=vessels, duration_s=minutes * 60.0, seed=seed))
        stats_fns = [lambda: platform.stats()]
        if num_nodes == 2:
            stats_fns.append(
                lambda: node.ask_control(WORKER_ID,
                                         "platform_stats").result(10.0))

        start = time.monotonic()
        total = drive_stream(platform, engine,
                             [WORKER_ID] if num_nodes == 2 else [])
        platform.system.await_idle(timeout=120.0)
        flush_cluster_writers(platform, node,
                              [WORKER_ID] if num_nodes == 2 else [])
        settled_at = wait_until_stable(stats_fns,
                                       lambda: platform.ingestion.lag)
        wall = settled_at - start

        snapshots = {SEED_ID: platform.metrics_snapshot()}
        distribution = {SEED_ID: platform.vessel_count}
        events = {"proximity": platform.event_count("proximity"),
                  "collision": platform.event_count("collision")}
        if num_nodes == 2:
            snapshots[WORKER_ID] = node.ask_control(
                WORKER_ID, "metrics_snapshot").result(10.0)
            remote = node.ask_control(WORKER_ID,
                                      "platform_stats").result(10.0)
            distribution[WORKER_ID] = remote["vessels_local"]
            events["proximity"] += remote["events_proximity"]
            events["collision"] += remote["events_collision"]
            event_check = run_event_check(platform, node, stats_fns, events)

        samples = sum(s.get("samples", 0) for s in snapshots.values()) or 1
        merged = {
            "msgs_per_s": total / wall if wall else 0.0,
            "p50_ms": sum(s.get("p50_ms", 0.0) * s.get("samples", 0)
                          for s in snapshots.values()) / samples,
            "p99_ms": sum(s.get("p99_ms", 0.0) * s.get("samples", 0)
                          for s in snapshots.values()) / samples,
            "messages": total,
            "wall_s": wall,
            "vessel_distribution": distribution,
            "events": events,
            "per_node": snapshots,
            "transport": node.transport.stats(),
            "codec": codec.counters(),
        }
        if num_nodes == 2:
            merged["event_check"] = event_check
        return merged
    finally:
        if worker is not None:
            try:
                node.ask_control(WORKER_ID, "shutdown").result(5.0)
            except Exception:
                pass
            try:
                worker.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                worker.kill()
        stop.set()
        platform.shutdown()
        codec.set_fast_path(True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vessels", type=int, default=1_000)
    parser.add_argument("--minutes", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (200 vessels, 10 minutes)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless batched two-node throughput is at "
                             "least this multiple of the unbatched baseline "
                             "(same-run legacy leg or the recorded 188 "
                             "msg/s, whichever is more favourable), and "
                             "batched p99 is under half the recorded "
                             "128 ms")
    parser.add_argument("--output", default="BENCH_cluster.json")
    parser.add_argument("--scaling-only", action="store_true",
                        help="run just the N-node scaling curve and merge "
                             "it into the existing report file")
    parser.add_argument("--worker", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--batching", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--legacy", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--seed-host", default="127.0.0.1",
                        help=argparse.SUPPRESS)
    parser.add_argument("--seed-port", type=int, default=0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.worker:
        worker_main(args)
        return
    if args.smoke:
        args.vessels, args.minutes = 200, 10.0

    if args.scaling_only:
        print("N-node scaling curve (loopback, busy-time attribution)...")
        scaling = run_scaling_leg(args.smoke)
        path = Path(args.output)
        recorded = json.loads(path.read_text()) if path.exists() else {}
        recorded["scaling"] = scaling
        path.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"wrote {args.output} (scaling section)")
        return

    print(f"Figure 6 (distributed): {args.vessels} vessels, "
          f"{args.minutes:.0f} simulated minutes, TCP transport")
    print("[1/4] single-node baseline...")
    one = run_benchmark(1, args.vessels, args.minutes, args.seed)
    print(f"      {one['messages']} msgs in {one['wall_s']:.1f}s "
          f"({one['msgs_per_s']:.0f} msg/s, p50 {one['p50_ms']:.2f} ms, "
          f"p99 {one['p99_ms']:.2f} ms)")
    print("[2/4] two-node sharded cluster, pre-optimisation wire path "
          "(frame-per-message sends, pickle codec)...")
    two = run_benchmark(2, args.vessels, args.minutes, args.seed,
                        legacy=True)
    print(f"      {two['messages']} msgs in {two['wall_s']:.1f}s "
          f"({two['msgs_per_s']:.0f} msg/s, p50 {two['p50_ms']:.2f} ms, "
          f"p99 {two['p99_ms']:.2f} ms)")
    print(f"      vessels sharded: {two['vessel_distribution']}, "
          f"events: {two['events']}")
    check = two["event_check"]
    print(f"      event check (Aegean scenario through the cluster): "
          f"{check['proximity']} proximity / {check['collision']} collision "
          f"events resolved ({check['ground_truth_events']} in ground truth)")
    print("[3/4] two-node sharded cluster, batched transport + fast codec...")
    batched = run_benchmark(2, args.vessels, args.minutes, args.seed,
                            batching=True)
    print(f"      {batched['messages']} msgs in {batched['wall_s']:.1f}s "
          f"({batched['msgs_per_s']:.0f} msg/s, "
          f"p50 {batched['p50_ms']:.2f} ms, "
          f"p99 {batched['p99_ms']:.2f} ms)")
    tstats = batched["transport"]
    print(f"      transport: {tstats.get('batches_sent', 0)} batches / "
          f"{tstats.get('frames_batched', 0)} frames batched, "
          f"{tstats.get('bytes_sent', 0)} bytes on the wire")
    speedup = (batched["msgs_per_s"] / two["msgs_per_s"]
               if two["msgs_per_s"] else 0.0)
    speedup_vs_recorded = (batched["msgs_per_s"]
                           / PRE_OPT_TWO_NODE_MSGS_PER_S)
    print(f"      speedup over the pre-optimisation wire path: "
          f"{speedup:.2f}x same-run, {speedup_vs_recorded:.2f}x over the "
          f"recorded {PRE_OPT_TWO_NODE_MSGS_PER_S:.0f} msg/s baseline")
    parity = run_event_parity(args.seed)
    print(f"      event parity (deterministic loopback): "
          f"unbatched {parity['unbatched']['proximity']} proximity / "
          f"{parity['unbatched']['collision']} collision, "
          f"batched {parity['batched']['proximity']} / "
          f"{parity['batched']['collision']} — "
          f"{'identical' if parity['identical'] else 'MISMATCH'}")
    print("[4/4] N-node scaling curve (loopback, busy-time attribution)...")
    scaling = run_scaling_leg(args.smoke)

    report = {
        "workload": {"vessels": args.vessels,
                     "sim_minutes": args.minutes, "seed": args.seed},
        "one_node": one,
        "two_node": two,
        "two_node_batched": batched,
        "batched_speedup": speedup,
        "batched_speedup_vs_recorded_baseline": speedup_vs_recorded,
        "event_parity": parity,
        "scaling": scaling,
    }
    # Merge rather than overwrite: the bench gate records its own
    # sections (loopback_gate, forecast_gate, scaling_gate anchors) in
    # the same file and they must survive a Figure 6 refresh.
    path = Path(args.output)
    recorded = json.loads(path.read_text()) if path.exists() else {}
    recorded.update(report)
    path.write_text(json.dumps(recorded, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    for name, run in [("two_node", two), ("two_node_batched", batched)]:
        if not run["vessel_distribution"].get(WORKER_ID):
            print(f"WARNING: no vessels landed on the worker node "
                  f"({name})", file=sys.stderr)
            failed = True
    for name, run in [("two_node", two), ("two_node_batched", batched)]:
        if not run["event_check"]["proximity"]:
            print(f"WARNING: no proximity events resolved by the cluster "
                  f"({name})", file=sys.stderr)
            failed = True
    # Batching must not change what the platform computes: the same
    # scenario through the deterministic loopback cluster has to resolve
    # the same events either way.
    if not parity["identical"]:
        print(f"WARNING: batched/unbatched event parity broken: "
              f"{parity['batched']} vs {parity['unbatched']}",
              file=sys.stderr)
        failed = True
    # The gate takes the more favourable of the same-run ratio and the
    # ratio over the recorded pre-optimisation baseline: the same-run
    # legacy leg swings with scheduler noise on small CI boxes, while the
    # recorded anchor keeps the assertion meaningful ("generous to avoid
    # flakes", per the issue).
    if args.min_speedup and max(speedup, speedup_vs_recorded) \
            < args.min_speedup:
        print(f"WARNING: batched speedup {speedup:.2f}x same-run / "
              f"{speedup_vs_recorded:.2f}x vs recorded baseline is below "
              f"the required {args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    if args.min_speedup and batched["p99_ms"] > PRE_OPT_TWO_NODE_P99_MS / 2:
        print(f"WARNING: batched p99 {batched['p99_ms']:.2f} ms is not "
              f"under half the recorded {PRE_OPT_TWO_NODE_P99_MS:.0f} ms "
              f"baseline", file=sys.stderr)
        failed = True
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
