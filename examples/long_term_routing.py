"""Long-term route forecasting (L-VRF / EnvClus*) — Figures 4a and 4b.

Builds a small historical trip corpus between Aegean ports by simulation,
fits the EnvClus*-style model (pathway clustering, weighted transition
graph, junction classifiers) and produces a route forecast with ETAs plus
the Patterns-of-Life statistics of the traversed area.

Run:  python examples/long_term_routing.py
"""

import random

from repro.ais import ScenarioSimulator, VesselAgent, make_route, random_statics
from repro.ais.ports import PORTS
from repro.geo import Position, haversine_m
from repro.geo.bbox import AEGEAN_BBOX
from repro.models.envclus import LVRFModel, Trip

_BY_NAME = {p.name: p for p in PORTS}


def simulate_historical_trips(origin: str, destination: str, n: int = 8,
                              seed: int = 1) -> list[Trip]:
    """Voyage history for one port pair (the corpus EnvClus* learns from)."""
    rng = random.Random(seed)
    trips = []
    for k in range(n):
        statics = random_statics(rng, 500_000_000 + k)
        route = make_route(_BY_NAME[origin], _BY_NAME[destination], rng)
        agent = VesselAgent(statics=statics, route=route)
        sim = ScenarioSimulator([agent], dt_s=60.0, seed=seed * 100 + k)
        result = sim.run(48 * 3600.0)
        track = result.truth[statics.mmsi][::5]
        if len(track) >= 2:
            trips.append(Trip(mmsi=statics.mmsi, origin=origin,
                              destination=destination, track=track,
                              statics=statics))
    return trips


def main() -> None:
    origin, destination = "Piraeus", "Heraklion"
    print(f"Simulating historical voyages {origin} -> {destination}...")
    trips = simulate_historical_trips(origin, destination)
    print(f"  {len(trips)} voyages, "
          f"{sum(len(t.track) for t in trips)} positions")

    model = LVRFModel().fit(trips)
    graph = model.graph_for(origin, destination)
    print(f"Transition graph: {graph.n_nodes} pathway cells, "
          f"{graph.n_edges} transitions, "
          f"{len(graph.junctions())} junctions")

    query = Position(t=0.0, lat=_BY_NAME[origin].lat,
                     lon=_BY_NAME[origin].lon, sog=13.0)
    forecast = model.forecast(query, origin, destination,
                              statics=trips[0].statics)

    print(f"\nRoute forecast ({len(forecast.waypoints)} pathway nodes, "
          f"{forecast.distance_m / 1852:.0f} NM, "
          f"ETA {forecast.eta_total_s / 3600:.1f} h):")
    step = max(1, len(forecast.waypoints) // 8)
    for i in range(0, len(forecast.waypoints), step):
        lat, lon = forecast.waypoints[i]
        print(f"  node {i:>3}: ({lat:7.3f}, {lon:7.3f})  "
              f"ETA +{forecast.etas_s[i] / 3600:5.2f} h")
    end = forecast.waypoints[-1]
    dest_port = _BY_NAME[destination]
    print(f"  terminal node is "
          f"{haversine_m(end[0], end[1], dest_port.lat, dest_port.lon) / 1000:.1f}"
          f" km from {destination} harbour")

    # Patterns of Life for the crossed area (Figure 4b).
    print("\nPatterns of Life — busiest cells on this corridor:")
    for stats in model.patterns.in_bbox(AEGEAN_BBOX)[:6]:
        print(f"  cell {stats.cell}: {stats.visits:>4} positions, "
              f"{stats.distinct_vessels} vessels, "
              f"mean speed {stats.mean_speed_kn:4.1f} kn, "
              f"dominant heading {stats.dominant_heading_deg:5.1f} deg")


if __name__ == "__main__":
    main()
