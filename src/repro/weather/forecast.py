"""Forecast-issuing weather fields with update cycles and staleness.

The static :class:`~repro.weather.field.WeatherField` answers "what is the
weather" — a perfect-prog oracle. Real voyage optimisation plans against
*numerical weather prediction products*, which are issued on a fixed update
cycle (wind every 6 h in the exemplar repo) and degrade with lead time.
:class:`ForecastingWeatherField` models exactly that split, keyed on the
exemplar's two time dimensions:

* ``sample_t`` — when the forecast was requested; it is quantised down to
  the product's *issue time* (``issue_time(sample_t)``), so every request
  inside one update cycle sees the same frozen product,
* ``target_t`` — the future instant the forecast is *for*.

The forecast for horizon ``h = target_t - issue`` blends the truth field
toward a fixed climatology field, component by component::

    forecast_c = (1 - w(h)) * actual_c(target_t) + w(h) * climatology_c
    w(h)       = 1 - exp(-h / degradation_tau_s)

so the per-component forecast error is exactly
``w(h) * |climatology_c - actual_c|`` — zero at horizon 0 (actuals equal
zero-horizon forecasts, bit for bit) and monotonically non-decreasing in
the horizon for a fixed target, which the Hypothesis property suite pins.
Each of the five components (wind u/v, current u/v, wave height) is
blended independently, like separate NWP products each with its own error
growth; the blended wave height is therefore *not* re-derived from the
blended wind.

Everything is a pure function of ``(seed, sample_t, target_t, lat, lon)``
— no RNG at query time, no wall clock — so the optimiser-vs-twin split
("plan against forecasts, sail through actuals") replays deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.weather.field import WeatherField, WeatherSample

#: Seed perturbation separating the climatology field from the truth field
#: (same seed must not make the forecast error identically zero).
_CLIMATOLOGY_SEED_SALT = 0x5EA_FA11


@dataclass(frozen=True)
class ForecastSample(WeatherSample):
    """One forecast product value, carrying its two time dimensions."""

    issued_t: float = 0.0    #: issue time of the product (cycle-quantised)
    target_t: float = 0.0    #: the instant this forecast is for
    horizon_s: float = 0.0   #: ``target_t - issued_t`` (the staleness)


class ForecastingWeatherField:
    """Actual-vs-forecast weather on a configurable update cycle."""

    def __init__(self, seed: int = 0, update_cycle_s: float = 6 * 3600.0,
                 degradation_tau_s: float = 36 * 3600.0,
                 **field_kwargs) -> None:
        if update_cycle_s <= 0:
            raise ValueError("update_cycle_s must be positive")
        if degradation_tau_s <= 0:
            raise ValueError("degradation_tau_s must be positive")
        self.seed = seed
        self.update_cycle_s = update_cycle_s
        self.degradation_tau_s = degradation_tau_s
        #: The truth: what the twin actually sails through.
        self.truth = WeatherField(seed=seed, **field_kwargs)
        #: The long-run prior forecasts decay toward. A second seeded field
        #: *frozen at t=0*: spatially plausible, time-invariant — the
        #: "climatology" a real product relaxes to at long lead times.
        self._climatology = WeatherField(
            seed=seed ^ _CLIMATOLOGY_SEED_SALT, **field_kwargs)

    # -- the two time dimensions -----------------------------------------------------

    def issue_time(self, sample_t: float) -> float:
        """The newest product issue at or before ``sample_t``."""
        return math.floor(sample_t / self.update_cycle_s) \
            * self.update_cycle_s

    def staleness_weight(self, horizon_s: float) -> float:
        """``w(h) = 1 - exp(-h / tau)``: 0 at horizon 0, -> 1 as the
        forecast ages toward pure climatology."""
        return 1.0 - math.exp(-max(horizon_s, 0.0)
                              / self.degradation_tau_s)

    # -- sampling --------------------------------------------------------------------

    def actual(self, lat: float, lon: float, t: float) -> WeatherSample:
        """The weather that actually happens at ``(lat, lon, t)``."""
        return self.truth.sample(lat, lon, t)

    def climatology(self, lat: float, lon: float) -> WeatherSample:
        """The time-invariant prior at ``(lat, lon)``."""
        return self._climatology.sample(lat, lon, 0.0)

    def forecast_at(self, lat: float, lon: float, sample_t: float,
                    target_t: float) -> ForecastSample:
        """The forecast for ``target_t`` from the product issued at
        ``issue_time(sample_t)``.

        Deterministic: the same ``(seed, sample_t, target_t, lat, lon)``
        always yields the identical sample.
        """
        issued = self.issue_time(sample_t)
        horizon = max(target_t - issued, 0.0)
        w = self.staleness_weight(horizon)
        actual = self.truth.sample(lat, lon, target_t)
        prior = self.climatology(lat, lon)
        blend = (lambda a, c: (1.0 - w) * a + w * c)
        return ForecastSample(
            wind_u_mps=blend(actual.wind_u_mps, prior.wind_u_mps),
            wind_v_mps=blend(actual.wind_v_mps, prior.wind_v_mps),
            current_u_mps=blend(actual.current_u_mps, prior.current_u_mps),
            current_v_mps=blend(actual.current_v_mps, prior.current_v_mps),
            wave_height_m=blend(actual.wave_height_m, prior.wave_height_m),
            issued_t=issued, target_t=target_t, horizon_s=horizon)

    def forecast_error(self, lat: float, lon: float, sample_t: float,
                       target_t: float) -> float:
        """Mean absolute per-component error of the forecast vs the
        actual weather at ``target_t`` (the staleness observable the
        property suite asserts is monotone in the horizon)."""
        forecast = self.forecast_at(lat, lon, sample_t, target_t)
        actual = self.truth.sample(lat, lon, target_t)
        components = (
            (forecast.wind_u_mps, actual.wind_u_mps),
            (forecast.wind_v_mps, actual.wind_v_mps),
            (forecast.current_u_mps, actual.current_u_mps),
            (forecast.current_v_mps, actual.current_v_mps),
            (forecast.wave_height_m, actual.wave_height_m),
        )
        return sum(abs(f - a) for f, a in components) / len(components)
