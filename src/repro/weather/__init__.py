"""Synthetic weather fields (the paper's future-work data source).

Section 7: "leverage new data sources to improve model prediction
performance (e.g. weather data) ... the enrichment and fusion of the H3
spatially indexed AIS mobility data with weather related features and
forecasts". This package provides the closest self-contained equivalent: a
smooth, deterministic synthetic weather field (wind and surface current)
queryable at any (lat, lon, t), plus the H3-cell enrichment described in
the paper's outlook.
"""

from repro.weather.field import WeatherField, WeatherSample
from repro.weather.enrichment import CellWeather, enrich_cells, enrich_cells_forecast
from repro.weather.forecast import ForecastSample, ForecastingWeatherField

__all__ = [
    "CellWeather",
    "ForecastSample",
    "ForecastingWeatherField",
    "WeatherField",
    "WeatherSample",
    "enrich_cells",
    "enrich_cells_forecast",
]
