"""A smooth synthetic weather field.

Real numerical-weather products (GRIB grids) are unavailable offline, so the
field is a deterministic sum of travelling sinusoidal modes — smooth in
space and time, seeded, and cheap to evaluate anywhere. Magnitudes are
calibrated to marine reality: winds up to ~20 m/s, surface currents up to
~1 m/s, significant wave heights up to ~5 m.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class WeatherSample:
    """Weather at one point in space-time."""

    wind_u_mps: float      #: eastward wind component
    wind_v_mps: float      #: northward wind component
    current_u_mps: float   #: eastward surface-current component
    current_v_mps: float   #: northward surface-current component
    wave_height_m: float   #: significant wave height

    @property
    def wind_speed_mps(self) -> float:
        return math.hypot(self.wind_u_mps, self.wind_v_mps)

    @property
    def wind_direction_deg(self) -> float:
        """Meteorological convention: direction the wind blows *from*."""
        to_deg = math.degrees(math.atan2(self.wind_u_mps, self.wind_v_mps))
        return (to_deg + 180.0) % 360.0

    @property
    def current_speed_mps(self) -> float:
        return math.hypot(self.current_u_mps, self.current_v_mps)

    @property
    def is_rough(self) -> bool:
        """Conditions that would matter to routing (gale-ish)."""
        return self.wind_speed_mps > 13.8 or self.wave_height_m > 3.0


class _ModeSum:
    """A scalar field built from travelling sinusoidal modes."""

    def __init__(self, rng: random.Random, n_modes: int, amplitude: float,
                 wavelength_deg: float, period_s: float) -> None:
        self._modes = []
        for _ in range(n_modes):
            self._modes.append((
                rng.uniform(0.4, 1.0) * amplitude / n_modes,
                rng.uniform(0.5, 1.5) * 2.0 * math.pi / wavelength_deg,
                rng.uniform(0.5, 1.5) * 2.0 * math.pi / wavelength_deg,
                rng.uniform(0.5, 1.5) * 2.0 * math.pi / period_s,
                rng.uniform(0.0, 2.0 * math.pi),
            ))

    def __call__(self, lat: float, lon: float, t: float) -> float:
        total = 0.0
        for amp, k_lat, k_lon, omega, phase in self._modes:
            total += amp * math.sin(k_lat * lat + k_lon * lon
                                    - omega * t + phase)
        return total


class WeatherField:
    """Deterministic synthetic weather, queryable anywhere.

    The same seed always produces the same weather, so experiments that
    fuse weather features stay reproducible.
    """

    def __init__(self, seed: int = 0, max_wind_mps: float = 18.0,
                 max_current_mps: float = 0.9,
                 synoptic_wavelength_deg: float = 18.0,
                 synoptic_period_s: float = 36.0 * 3600.0) -> None:
        rng = random.Random(seed)
        self._wind_u = _ModeSum(rng, 4, max_wind_mps,
                                synoptic_wavelength_deg, synoptic_period_s)
        self._wind_v = _ModeSum(rng, 4, max_wind_mps,
                                synoptic_wavelength_deg, synoptic_period_s)
        self._cur_u = _ModeSum(rng, 3, max_current_mps,
                               synoptic_wavelength_deg * 0.6,
                               synoptic_period_s * 2.0)
        self._cur_v = _ModeSum(rng, 3, max_current_mps,
                               synoptic_wavelength_deg * 0.6,
                               synoptic_period_s * 2.0)
        self.max_wind_mps = max_wind_mps

    def sample(self, lat: float, lon: float, t: float) -> WeatherSample:
        """Weather at ``(lat, lon)`` and stream time ``t`` (seconds)."""
        if not -90.0 <= lat <= 90.0:
            raise ValueError(f"latitude out of range: {lat}")
        wind_u = self._wind_u(lat, lon, t)
        wind_v = self._wind_v(lat, lon, t)
        wind_speed = math.hypot(wind_u, wind_v)
        # Waves follow the wind (fully developed sea approximation).
        wave = min(0.025 * wind_speed ** 2 + 0.3, 9.0)
        return WeatherSample(
            wind_u_mps=wind_u, wind_v_mps=wind_v,
            current_u_mps=self._cur_u(lat, lon, t),
            current_v_mps=self._cur_v(lat, lon, t),
            wave_height_m=wave)

    def forecast(self, lat: float, lon: float, t: float,
                 horizons_s: list[float]) -> list[WeatherSample]:
        """Weather forecast at the given lead times (the field is the
        truth, so this is a perfect-prog forecast — adequate for fusing
        *features*, which is what the paper's outlook needs)."""
        return [self.sample(lat, lon, t + h) for h in horizons_s]
