"""H3-cell weather enrichment.

"The enrichment and fusion of the H3 spatially indexed AIS mobility data
with weather related features and forecasts" (Section 7): annotate a set of
hex cells with the weather at their centres, ready to be joined against
Patterns-of-Life statistics or traffic-flow rasters on the shared cell id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hexgrid import cell_to_latlng
from repro.weather.field import WeatherField, WeatherSample


@dataclass(frozen=True)
class CellWeather:
    """Weather features attached to one hex cell."""

    cell: int
    t: float
    sample: WeatherSample

    def feature_vector(self) -> list[float]:
        """Numeric features for fusing into downstream models."""
        s = self.sample
        return [s.wind_u_mps, s.wind_v_mps, s.current_u_mps,
                s.current_v_mps, s.wave_height_m]


def enrich_cells(field: WeatherField, cells: list[int], t: float
                 ) -> dict[int, CellWeather]:
    """Weather at the centre of each cell at stream time ``t``.

    Keys are the same cell ids used by the traffic-flow raster and the
    Patterns-of-Life aggregates, so callers join on cell id directly.
    """
    out = {}
    for cell in cells:
        lat, lon = cell_to_latlng(cell)
        out[cell] = CellWeather(cell=cell, t=t,
                                sample=field.sample(lat, lon, t))
    return out


def enrich_cells_forecast(field, cells: list[int], sample_t: float,
                          target_t: float) -> dict[int, CellWeather]:
    """Forecast-based enrichment: the *predicted* weather at each cell
    centre for ``target_t``, as issued by the product current at
    ``sample_t`` (a :class:`~repro.weather.forecast.ForecastingWeatherField`).

    Same join keys as :func:`enrich_cells`; the samples carry their
    issue/target times so consumers can reason about staleness.
    """
    out = {}
    for cell in cells:
        lat, lon = cell_to_latlng(cell)
        out[cell] = CellWeather(
            cell=cell, t=target_t,
            sample=field.forecast_at(lat, lon, sample_t, target_t))
    return out
