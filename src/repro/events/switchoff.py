"""Intentional AIS switch-off detection.

The platform logs "the switch-off of the AIS transmitter on a vessel [9]"
as a composite event (Section 5). The detector follows the reference's
logic: a vessel under way has an expected reporting cadence; when the gap
since its last message exceeds that cadence by a large factor — and the
vessel was moving, so it has not simply anchored — a switch-off event is
raised at the time the transmissions ceased.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ais.simulator import solas_reporting_interval_s


@dataclass(frozen=True)
class SwitchOffEvent:
    """A vessel's transmissions ceased while it was under way."""

    mmsi: int
    t_last_message: float
    t_detected: float
    last_lat: float
    last_lon: float
    last_sog: float

    @property
    def silence_s(self) -> float:
        return self.t_detected - self.t_last_message


class SwitchOffDetector:
    """Per-fleet gap watchdog over the AIS stream.

    ``observe`` ingests messages; ``check`` (called periodically with the
    stream clock, e.g. by the platform's scheduler) raises events for
    vessels silent longer than ``gap_factor`` times their expected interval,
    with an absolute floor of ``min_gap_s`` to tolerate ordinary reception
    dropouts.
    """

    def __init__(self, gap_factor: float = 20.0,
                 min_gap_s: float = 900.0,
                 moving_threshold_kn: float = 1.0) -> None:
        self.gap_factor = gap_factor
        self.min_gap_s = min_gap_s
        self.moving_threshold_kn = moving_threshold_kn
        #: mmsi -> (t, lat, lon, sog) of the latest message.
        self._last: dict[int, tuple[float, float, float, float]] = {}
        #: vessels already flagged (cleared when they transmit again).
        self._flagged: set[int] = set()
        self.events: list[SwitchOffEvent] = []

    def observe(self, mmsi: int, t: float, lat: float, lon: float,
                sog: float) -> None:
        previous = self._last.get(mmsi)
        if previous is not None and t < previous[0]:
            return  # late/out-of-order duplicate
        self._last[mmsi] = (t, lat, lon, sog)
        self._flagged.discard(mmsi)

    def expected_gap_s(self, sog: float) -> float:
        """The silence duration that triggers detection for a vessel
        reporting at the SOLAS cadence for ``sog``."""
        nominal = solas_reporting_interval_s(sog)
        return max(nominal * self.gap_factor, self.min_gap_s)

    def check(self, now: float) -> list[SwitchOffEvent]:
        """Detect vessels whose silence exceeds their expected gap."""
        new_events = []
        for mmsi, (t, lat, lon, sog) in self._last.items():
            if mmsi in self._flagged:
                continue
            if sog < self.moving_threshold_kn:
                continue  # anchored vessels legitimately report slowly
            if now - t >= self.expected_gap_s(sog):
                event = SwitchOffEvent(mmsi=mmsi, t_last_message=t,
                                       t_detected=now, last_lat=lat,
                                       last_lon=lon, last_sog=sog)
                self._flagged.add(mmsi)
                self.events.append(event)
                new_events.append(event)
        return new_events

    @property
    def tracked_vessels(self) -> int:
        return len(self._last)
