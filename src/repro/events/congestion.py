"""Port and berth congestion monitoring and prediction.

One of the paper's named future assets: "the monitoring and prediction of
berth and port congestion" (Section 7). The monitor watches vessel states
around catalogue ports:

* **monitoring** — vessels currently inside a port's approach radius,
  split into moving traffic and dwelling (slow/anchored) vessels,
* **prediction** — expected arrivals within a horizon, from each vessel's
  route forecast (any position of the forecast track entering the radius),
* a congestion flag when occupancy plus imminent arrivals exceed the
  port's nominal capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ais.ports import Port
from repro.geo.geodesy import equirectangular_distance_m
from repro.models.base import RouteForecast

#: Below this speed a vessel inside the radius counts as dwelling (moored,
#: anchored or manoeuvring to berth) rather than passing traffic.
DWELL_SPEED_KN = 2.0


@dataclass(frozen=True)
class CongestionReport:
    """Snapshot of one port's congestion state."""

    port: Port
    t: float
    dwelling: tuple[int, ...]        #: MMSIs moored/anchored inside
    moving: tuple[int, ...]          #: MMSIs under way inside
    expected_arrivals: tuple[int, ...]  #: MMSIs forecast to enter soon
    capacity: int

    @property
    def occupancy(self) -> int:
        return len(self.dwelling)

    @property
    def projected_occupancy(self) -> int:
        return self.occupancy + len(self.expected_arrivals)

    @property
    def congested(self) -> bool:
        return self.projected_occupancy > self.capacity

    @property
    def utilisation(self) -> float:
        return self.projected_occupancy / self.capacity if self.capacity else 0.0


@dataclass
class PortCongestionMonitor:
    """Tracks vessel states and forecasts around a set of ports.

    Feed it every vessel state update (and route forecast, when one
    exists); query :meth:`report` for any port. State is one record per
    vessel, so memory is bounded by fleet size.
    """

    ports: list[Port]
    radius_m: float = 15_000.0
    #: Nominal berth/anchorage capacity per port; defaults scale with the
    #: port's traffic weight.
    capacities: dict[str, int] = field(default_factory=dict)

    _states: dict[int, tuple[float, float, float, float]] = field(
        default_factory=dict)   #: mmsi -> (t, lat, lon, sog)
    _forecasts: dict[int, RouteForecast] = field(default_factory=dict)

    def capacity_of(self, port: Port) -> int:
        return self.capacities.get(port.name, max(3, int(port.weight * 6)))

    def observe(self, mmsi: int, t: float, lat: float, lon: float,
                sog: float, forecast: RouteForecast | None = None) -> None:
        previous = self._states.get(mmsi)
        if previous is not None and t < previous[0]:
            return
        self._states[mmsi] = (t, lat, lon, sog)
        if forecast is not None:
            self._forecasts[mmsi] = forecast

    def _inside(self, port: Port, lat: float, lon: float) -> bool:
        return equirectangular_distance_m(port.lat, port.lon,
                                          lat, lon) <= self.radius_m

    def report(self, port: Port, now: float,
               arrival_horizon_s: float = 1_800.0,
               stale_after_s: float = 1_800.0) -> CongestionReport:
        """Congestion snapshot for ``port`` at stream time ``now``."""
        dwelling, moving, arrivals = [], [], []
        for mmsi, (t, lat, lon, sog) in self._states.items():
            if now - t > stale_after_s:
                continue
            if self._inside(port, lat, lon):
                (dwelling if sog < DWELL_SPEED_KN else moving).append(mmsi)
                continue
            forecast = self._forecasts.get(mmsi)
            if forecast is None:
                continue
            for pos in forecast.predicted:
                if pos.t - now > arrival_horizon_s:
                    break
                if self._inside(port, pos.lat, pos.lon):
                    arrivals.append(mmsi)
                    break
        return CongestionReport(
            port=port, t=now, dwelling=tuple(sorted(dwelling)),
            moving=tuple(sorted(moving)),
            expected_arrivals=tuple(sorted(arrivals)),
            capacity=self.capacity_of(port))

    def congested_ports(self, now: float) -> list[CongestionReport]:
        """Reports for every monitored port that is (projected) congested,
        busiest first."""
        reports = [self.report(p, now) for p in self.ports]
        return sorted((r for r in reports if r.congested),
                      key=lambda r: -r.utilisation)

    @property
    def tracked_vessels(self) -> int:
        return len(self._states)
