"""Vessel collision forecasting (Section 5.2).

The algorithm the paper integrates at the actor level:

1. each AIS message produces a 7-position forecast trajectory (present
   position + six S-VRF predictions),
2. every forecast position is assigned to its H3 cell *and the neighbouring
   cells* so near-boundary encounters are not missed,
3. vessels sharing a cell are checked pairwise: first **temporal
   intersection** (two forecast positions within a system-defined time
   interval threshold inside the 30-minute window), then **spatial
   intersection** (those positions within a distance threshold),
4. if both hold, a potential collision is detected and logged with the
   estimated time, location and the MMSIs involved (Figure 4f).

:func:`trajectories_intersect` is the pairwise core (used verbatim by the
platform's collision actors); :class:`CollisionForecaster` adds the
cell-indexed candidate generation and per-pair debouncing for standalone
use by the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.hexgrid import grid_disk, latlng_to_cell
from repro.models.base import RouteForecast

#: Default hex resolution for collision cells (~461 m edges, matching the
#: spatial threshold scale).
COLLISION_RESOLUTION = 8


@dataclass(frozen=True)
class CollisionForecast:
    """A forecast close encounter between two vessels."""

    mmsi_a: int
    mmsi_b: int
    #: Estimated encounter time (midpoint of the two forecast positions).
    t_expected: float
    lat: float
    lon: float
    min_distance_m: float
    #: Stream time at which the forecast was made.
    forecast_at: float

    @property
    def pair(self) -> tuple[int, int]:
        return tuple(sorted((self.mmsi_a, self.mmsi_b)))

    @property
    def lead_time_s(self) -> float:
        """Warning lead time: how far ahead the encounter is forecast."""
        return self.t_expected - self.forecast_at


def _densify(fc: RouteForecast, step_s: float
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resample a forecast polyline at ``step_s`` (linear interpolation).

    The forecast marks are 5 minutes apart; a 12-knot vessel covers ~1.8 km
    between marks, so pointwise mark comparison would miss most genuine
    path crossings. Densifying both trajectories turns the spatial-
    intersection test into a closest-point-of-approach check along the
    paths, which is what "the spatial intersection of the forecasted
    trajectories is assessed" requires.
    """
    ts = np.array([p.t for p in fc.positions])
    lats = np.array([p.lat for p in fc.positions])
    lons = np.array([p.lon for p in fc.positions])
    dense_t = np.arange(ts[0], ts[-1] + step_s / 2.0, step_s)
    return dense_t, np.interp(dense_t, ts, lats), np.interp(dense_t, ts, lons)


def trajectories_intersect(fc_a: RouteForecast, fc_b: RouteForecast,
                           temporal_threshold_s: float = 120.0,
                           spatial_threshold_m: float = 500.0,
                           step_s: float = 30.0) -> CollisionForecast | None:
    """Check two forecast trajectories for a predicted close encounter.

    Implements the paper's two-stage test (Section 5.2): **temporal
    intersection** first — trajectory samples within the system-defined
    time-interval threshold of each other (the threshold "accounts for
    close proximity vessel passes") — then **spatial intersection** of the
    temporally matched samples. Trajectories are densified to ``step_s``
    so path crossings between the 5-minute marks are not missed. Returns
    the encounter at minimum predicted separation, or ``None``.

    Only encounters at or after the freshest of the two anchors are
    considered (one forecast is usually staler than the other): a crossing
    whose estimated time lies behind the newest known position is not an
    actionable warning, and admitting it would make the reported encounter
    order-sensitive for near-parallel tracks whose minimum separation is
    effectively constant along the horizon. Guarantees
    ``lead_time_s >= 0`` on every returned hit.
    """
    ta, lat_a, lon_a = _densify(fc_a, step_s)
    tb, lat_b, lon_b = _densify(fc_b, step_s)
    forecast_at = max(fc_a.anchor.t, fc_b.anchor.t)

    # Temporal intersection: |ta_i - tb_j| <= threshold, vectorised —
    # restricted to sample pairs whose midpoint (the estimated encounter
    # time) is not in the past.
    dt = np.abs(ta[:, None] - tb[None, :])
    mask = (dt <= temporal_threshold_s) \
        & ((ta[:, None] + tb[None, :]) * 0.5 >= forecast_at)
    if not mask.any():
        return None
    ia, ib = np.nonzero(mask)

    # Spatial intersection on the matched samples (flat-Earth metres).
    mean_lat = np.radians((lat_a.mean() + lat_b.mean()) / 2.0)
    kx = 111_194.9266 * np.cos(mean_lat)
    ky = 111_194.9266
    dx = (lon_a[ia] - lon_b[ib]) * kx
    dy = (lat_a[ia] - lat_b[ib]) * ky
    d = np.hypot(dx, dy)
    k = int(np.argmin(d))
    if d[k] > spatial_threshold_m:
        return None
    i, j = int(ia[k]), int(ib[k])
    return CollisionForecast(
        mmsi_a=fc_a.mmsi, mmsi_b=fc_b.mmsi,
        t_expected=float((ta[i] + tb[j]) / 2.0),
        lat=float((lat_a[i] + lat_b[j]) / 2.0),
        lon=float((lon_a[i] + lon_b[j]) / 2.0),
        min_distance_m=float(d[k]),
        forecast_at=forecast_at)


class CollisionForecaster:
    """Cell-indexed collision forecasting over a stream of route forecasts.

    ``submit`` registers a vessel's newest forecast, finds candidate vessels
    through shared (dilated) cells, and returns any new collision forecasts.
    One event per vessel pair per ``debounce_s`` is emitted.
    """

    def __init__(self, resolution: int = COLLISION_RESOLUTION,
                 temporal_threshold_s: float = 120.0,
                 spatial_threshold_m: float = 500.0,
                 neighbor_rings: int = 1,
                 debounce_s: float = 900.0) -> None:
        self.resolution = resolution
        self.temporal_threshold_s = temporal_threshold_s
        self.spatial_threshold_m = spatial_threshold_m
        self.neighbor_rings = neighbor_rings
        self.debounce_s = debounce_s
        self._forecasts: dict[int, RouteForecast] = {}
        #: cell -> set of MMSIs whose dilated forecast touches the cell.
        self._cells: dict[int, set[int]] = {}
        #: mmsi -> cells it currently occupies (for cleanup on update).
        self._vessel_cells: dict[int, set[int]] = {}
        self._last_event: dict[tuple[int, int], float] = {}
        self.events: list[CollisionForecast] = []

    def _dilated_cells(self, forecast: RouteForecast) -> set[int]:
        cells: set[int] = set()
        for pos in forecast.positions:
            base = latlng_to_cell(pos.lat, pos.lon, self.resolution)
            cells.update(grid_disk(base, self.neighbor_rings))
        return cells

    def _unregister(self, mmsi: int) -> None:
        for cell in self._vessel_cells.pop(mmsi, ()):
            members = self._cells.get(cell)
            if members is not None:
                members.discard(mmsi)
                if not members:
                    del self._cells[cell]

    def submit(self, forecast: RouteForecast) -> list[CollisionForecast]:
        """Register a new forecast; returns newly predicted collisions."""
        mmsi = forecast.mmsi
        self._unregister(mmsi)
        cells = self._dilated_cells(forecast)
        self._forecasts[mmsi] = forecast
        self._vessel_cells[mmsi] = cells

        candidates: set[int] = set()
        for cell in cells:
            members = self._cells.setdefault(cell, set())
            candidates.update(members)
            members.add(mmsi)
        candidates.discard(mmsi)

        new_events = []
        for other in candidates:
            other_fc = self._forecasts.get(other)
            if other_fc is None:
                continue
            hit = trajectories_intersect(
                forecast, other_fc,
                temporal_threshold_s=self.temporal_threshold_s,
                spatial_threshold_m=self.spatial_threshold_m)
            if hit is None:
                continue
            last = self._last_event.get(hit.pair)
            if last is not None and forecast.anchor.t - last < self.debounce_s:
                continue
            self._last_event[hit.pair] = forecast.anchor.t
            self.events.append(hit)
            new_events.append(hit)
        return new_events

    def prune(self, now: float, max_age_s: float = 900.0) -> int:
        """Forget forecasts older than ``max_age_s``; returns how many."""
        stale = [m for m, fc in self._forecasts.items()
                 if now - fc.anchor.t > max_age_s]
        for mmsi in stale:
            self._unregister(mmsi)
            del self._forecasts[mmsi]
        return len(stale)

    @property
    def tracked_vessels(self) -> int:
        return len(self._forecasts)

    @property
    def active_cells(self) -> int:
        return len(self._cells)
