"""Close-proximity event detection.

"AIS positional data are sent to the cell actors for proximity event
detection" (Section 3): each H3 cell actor receives the positions falling in
its cell (and, because positions are fanned out to neighbouring cells too,
positions just across its borders) and flags vessel pairs closer than a
threshold within a short time window. :class:`ProximityDetector` is that
per-cell state machine; the platform instantiates one inside every cell
actor, and the evaluation drives it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.geodesy import equirectangular_distance_m


@dataclass(frozen=True)
class ProximityPairEvent:
    """Two vessels observed within ``distance_m`` of each other."""

    mmsi_a: int
    mmsi_b: int
    t: float
    distance_m: float
    lat: float       #: midpoint latitude
    lon: float       #: midpoint longitude

    @property
    def pair(self) -> tuple[int, int]:
        return tuple(sorted((self.mmsi_a, self.mmsi_b)))


class ProximityDetector:
    """Detects vessel pairs within a distance threshold.

    ``observe`` ingests timestamped positions; any other vessel seen within
    ``time_window_s`` whose position lies inside ``distance_threshold_m``
    produces an event. Repeated detections of the same pair within
    ``debounce_s`` are suppressed so one encounter logs one event.
    """

    def __init__(self, distance_threshold_m: float = 500.0,
                 time_window_s: float = 120.0,
                 debounce_s: float = 600.0) -> None:
        if distance_threshold_m <= 0:
            raise ValueError("distance threshold must be positive")
        self.distance_threshold_m = distance_threshold_m
        self.time_window_s = time_window_s
        self.debounce_s = debounce_s
        #: mmsi -> (t, lat, lon) most recent observation.
        self._last_seen: dict[int, tuple[float, float, float]] = {}
        #: pair -> time of last emitted event.
        self._last_event: dict[tuple[int, int], float] = {}
        self.events: list[ProximityPairEvent] = []

    def export_state(self) -> dict:
        """The detector's working state for checkpointing (the emitted
        ``events`` log stays behind — it is an evaluation artifact, not
        detection state)."""
        return {"last_seen": dict(self._last_seen),
                "last_event": dict(self._last_event)}

    def restore_state(self, state: dict) -> None:
        self._last_seen = dict(state["last_seen"])
        self._last_event = dict(state["last_event"])

    def observe(self, mmsi: int, t: float, lat: float, lon: float
                ) -> list[ProximityPairEvent]:
        """Ingest one position; returns newly detected events."""
        new_events = []
        for other, (ot, olat, olon) in self._last_seen.items():
            if other == mmsi or t - ot > self.time_window_s:
                continue
            d = equirectangular_distance_m(lat, lon, olat, olon)
            if d >= self.distance_threshold_m:
                continue
            pair = tuple(sorted((mmsi, other)))
            last = self._last_event.get(pair)
            if last is not None and t - last < self.debounce_s:
                continue
            event = ProximityPairEvent(
                mmsi_a=pair[0], mmsi_b=pair[1], t=t, distance_m=float(d),
                lat=(lat + olat) / 2.0, lon=(lon + olon) / 2.0)
            self._last_event[pair] = t
            self.events.append(event)
            new_events.append(event)
        self._last_seen[mmsi] = (t, lat, lon)
        return new_events

    def prune(self, now: float) -> int:
        """Drop observations older than the time window; returns how many.

        Cell actors call this periodically so memory stays bounded even in
        the busiest cells.
        """
        stale = [m for m, (t, _, _) in self._last_seen.items()
                 if now - t > self.time_window_s]
        for m in stale:
            del self._last_seen[m]
        return len(stale)

    @property
    def tracked_vessels(self) -> int:
        return len(self._last_seen)
