"""Maritime event detection and forecasting functions (Section 5).

* :mod:`repro.events.proximity` — close-proximity detection between vessels,
  the state computed by the platform's H3-cell actors (Figure 4e),
* :mod:`repro.events.switchoff` — intentional AIS switch-off detection [9],
* :mod:`repro.events.collision` — collision forecasting from S-VRF forecast
  trajectories via temporal + spatial intersection on hex cells (Section
  5.2, Figures 4f and 5),
* :mod:`repro.events.vtff` — Vessel Traffic Flow Forecasting, both the
  *indirect* strategy (rasterising S-VRF forecasts onto the hex grid,
  Section 5.1, Figure 4d) and the *direct* flow-sequence baseline from
  [17] used in the ablation study.
"""

from repro.events.proximity import ProximityDetector, ProximityPairEvent
from repro.events.switchoff import SwitchOffDetector, SwitchOffEvent
from repro.events.collision import (
    CollisionForecast,
    CollisionForecaster,
    trajectories_intersect,
)
from repro.events.vtff import (
    DirectVTFF,
    FlowGrid,
    IndirectVTFF,
    TrafficLevel,
)
from repro.events.congestion import (
    CongestionReport,
    PortCongestionMonitor,
)
from repro.events.avoidance import AvoidanceManeuver, plan_avoidance
from repro.events.voyage import (
    VOYAGE_EVENT_KINDS,
    EtaBreachEvent,
    RouteDivergenceEvent,
    StormAvoidanceEvent,
)

__all__ = [
    "AvoidanceManeuver",
    "EtaBreachEvent",
    "RouteDivergenceEvent",
    "StormAvoidanceEvent",
    "VOYAGE_EVENT_KINDS",
    "CollisionForecast",
    "CollisionForecaster",
    "CongestionReport",
    "DirectVTFF",
    "FlowGrid",
    "IndirectVTFF",
    "PortCongestionMonitor",
    "ProximityDetector",
    "ProximityPairEvent",
    "SwitchOffDetector",
    "SwitchOffEvent",
    "TrafficLevel",
    "plan_avoidance",
    "trajectories_intersect",
]
