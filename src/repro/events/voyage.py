"""Voyage-optimization event payloads.

Three event kinds the route optimizer emits through the same router →
writer-pool → serving/warehouse path that proximity and collision events
travel (ISSUE: the paper's Section 7 weather outlook, made operational):

* ``storm_avoidance`` — a plan (initial or re-) dog-legged around rough
  forecast weather instead of sailing the direct track,
* ``eta_breach`` — the freshest plan's ETA eats into the deadline margin
  (slack below the configured threshold, possibly negative),
* ``route_divergence`` — the vessel's *actual* reported position has
  drifted further from the planned track than the divergence threshold —
  the plan and the ship disagree, and somebody should look.

Payloads are keyed by ``mmsi`` (the writer pool routes on it) and carry
``t``; all fields are plain floats/ints so the replication feed and the
warehouse partitions serialise them untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The event kinds the voyage subsystem emits, in router/topic order.
VOYAGE_EVENT_KINDS = ("storm_avoidance", "eta_breach", "route_divergence")


@dataclass(frozen=True)
class StormAvoidanceEvent:
    """A plan chose a weather dog-leg over the direct track."""

    mmsi: int
    t: float                 #: stream time of the plan that diverted
    issued_t: float          #: forecast product issue the plan used
    legs_diverted: int       #: how many legs dog-legged
    planned_fuel_kg: float   #: forecast fuel of the diverting plan


@dataclass(frozen=True)
class EtaBreachEvent:
    """The freshest plan's deadline margin fell below the threshold."""

    mmsi: int
    t: float
    eta_t: float
    deadline_t: float
    slack_s: float           #: ``deadline_t - eta_t`` (negative = late)


@dataclass(frozen=True)
class RouteDivergenceEvent:
    """A reported fix sits further off the planned track than allowed."""

    mmsi: int
    t: float
    cross_track_m: float     #: distance from fix to nearest planned leg
    threshold_m: float
