"""Automated rerouting for collision avoidance.

Another of the paper's named future assets: "the automated rerouting for
vessel collision avoidance" (Section 7). Given a forecast collision and the
own-ship state, the planner evaluates COLREGs-flavoured course alterations
(starboard first, in increasing steps) and speed reductions, dead-reckons
each candidate against the intruder's forecast trajectory, and returns the
smallest manoeuvre that clears the separation threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.constants import KNOTS_TO_MPS
from repro.geo.geodesy import destination_point
from repro.models.base import RouteForecast

#: Course alterations evaluated, degrees; positive = starboard. COLREGs
#: rule 8 prefers early, substantial starboard action, so starboard
#: options come first at each magnitude.
_COURSE_OPTIONS_DEG = (15.0, -15.0, 30.0, -30.0, 45.0, -45.0, 60.0, -60.0)
#: Speed factors evaluated after course changes fail.
_SPEED_OPTIONS = (0.7, 0.5)


@dataclass(frozen=True)
class AvoidanceManeuver:
    """A recommended manoeuvre and its predicted outcome."""

    mmsi: int
    course_change_deg: float    #: 0 for pure speed reductions
    speed_factor: float         #: 1.0 for pure course changes
    predicted_min_separation_m: float

    @property
    def is_starboard(self) -> bool:
        return self.course_change_deg > 0

    def describe(self) -> str:
        parts = []
        if self.course_change_deg:
            side = "starboard" if self.is_starboard else "port"
            parts.append(f"alter course {abs(self.course_change_deg):.0f} "
                         f"deg to {side}")
        if self.speed_factor != 1.0:
            parts.append(f"reduce speed to {self.speed_factor:.0%}")
        action = " and ".join(parts) if parts else "stand on"
        return (f"{action} (predicted minimum separation "
                f"{self.predicted_min_separation_m:.0f} m)")


def _dead_reckon(lat: float, lon: float, course: float, speed_mps: float,
                 times: np.ndarray, t0: float
                 ) -> tuple[np.ndarray, np.ndarray]:
    lats, lons = [], []
    for t in times:
        la, lo = destination_point(lat, lon, course, speed_mps * (t - t0))
        lats.append(la)
        lons.append(lo)
    return np.asarray(lats), np.asarray(lons)


def _min_separation_m(own_lat, own_lon, other_lat, other_lon) -> float:
    mean_lat = np.radians((own_lat.mean() + other_lat.mean()) / 2.0)
    kx = 111_194.9266 * float(np.cos(mean_lat))
    ky = 111_194.9266
    d = np.hypot((own_lon - other_lon) * kx, (own_lat - other_lat) * ky)
    return float(d.min())


def plan_avoidance(own: RouteForecast, intruder: RouteForecast,
                   own_sog_kn: float, own_cog_deg: float,
                   separation_m: float = 1_000.0,
                   step_s: float = 30.0) -> AvoidanceManeuver | None:
    """The smallest manoeuvre for ``own`` that keeps it at least
    ``separation_m`` from the intruder's forecast trajectory.

    Returns ``None`` when no evaluated manoeuvre achieves the separation
    (the conning officer's problem, not the algorithm's). If the current
    course already clears the threshold a zero-change "stand on"
    recommendation is returned.
    """
    if own_sog_kn < 0:
        raise ValueError("speed must be non-negative")
    anchor = own.anchor
    horizon = intruder.positions[-1].t
    times = np.arange(anchor.t, horizon + step_s / 2.0, step_s)
    it = np.array([p.t for p in intruder.positions])
    ila = np.interp(times, it, [p.lat for p in intruder.positions])
    ilo = np.interp(times, it, [p.lon for p in intruder.positions])
    speed_mps = own_sog_kn * KNOTS_TO_MPS

    def evaluate(course_change: float, speed_factor: float) -> float:
        la, lo = _dead_reckon(anchor.lat, anchor.lon,
                              (own_cog_deg + course_change) % 360.0,
                              speed_mps * speed_factor, times, anchor.t)
        return _min_separation_m(la, lo, ila, ilo)

    current = evaluate(0.0, 1.0)
    if current >= separation_m:
        return AvoidanceManeuver(mmsi=own.mmsi, course_change_deg=0.0,
                                 speed_factor=1.0,
                                 predicted_min_separation_m=current)
    for change in _COURSE_OPTIONS_DEG:
        sep = evaluate(change, 1.0)
        if sep >= separation_m:
            return AvoidanceManeuver(mmsi=own.mmsi,
                                     course_change_deg=change,
                                     speed_factor=1.0,
                                     predicted_min_separation_m=sep)
    for factor in _SPEED_OPTIONS:
        for change in (0.0,) + _COURSE_OPTIONS_DEG:
            sep = evaluate(change, factor)
            if sep >= separation_m:
                return AvoidanceManeuver(mmsi=own.mmsi,
                                         course_change_deg=change,
                                         speed_factor=factor,
                                         predicted_min_separation_m=sep)
    return None
