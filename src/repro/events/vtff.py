"""Vessel Traffic Flow Forecasting (VTFF, Section 5.1).

The objective is to predict the number of vessels per spatial cell and time
window. Two strategies from the paper's reference [17] are implemented:

* **Indirect** (:class:`IndirectVTFF`) — the strategy the platform deploys:
  S-VRF forecast trajectories are rasterised onto the spatiotemporal H3
  grid; the vessel count per (cell, window) is the forecast flow. "The
  predicted locations by the S-VRF model are allocated into a spatiotemporal
  grid ... The resulting vessel counts represent the vessel traffic flow."
* **Direct** (:class:`DirectVTFF`) — the comparison baseline: per-cell flow
  history is extrapolated as a sequence-forecasting problem (ridge-regular-
  ised autoregression with a naive fallback). [17] found the indirect
  strategy ~1.5x more accurate; the ablation benchmark reproduces that
  comparison.

:class:`FlowGrid` is the shared raster: distinct-vessel counts per
``(cell, window)`` with the LOW/MEDIUM/HIGH heat classification of
Figure 4d.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.hexgrid import latlng_to_cell
from repro.models.base import RouteForecast

#: Default hex resolution for flow cells (~3.2 km edges).
FLOW_RESOLUTION = 6
#: Default time-window length: the S-VRF sampling interval.
FLOW_WINDOW_S = 300.0


class TrafficLevel(enum.Enum):
    """Heat classes of the Figure 4d visualisation."""

    LOW = "low"        # dark green
    MEDIUM = "medium"  # light green
    HIGH = "high"      # red


@dataclass
class FlowGrid:
    """Distinct-vessel counts on the (cell, time-window) raster."""

    resolution: int = FLOW_RESOLUTION
    window_s: float = FLOW_WINDOW_S
    #: (cell, window index) -> set of MMSIs seen there.
    _vessels: dict[tuple[int, int], set[int]] = field(default_factory=dict)

    def window_of(self, t: float) -> int:
        return int(t // self.window_s)

    def add(self, mmsi: int, t: float, lat: float, lon: float) -> None:
        cell = latlng_to_cell(lat, lon, self.resolution)
        key = (cell, self.window_of(t))
        self._vessels.setdefault(key, set()).add(mmsi)

    def count(self, cell: int, window: int) -> int:
        return len(self._vessels.get((cell, window), ()))

    def window_counts(self, window: int) -> dict[int, int]:
        """``cell -> vessel count`` for one time window (active cells only,
        matching the UI's 'only active cells are visible')."""
        return {cell: len(v) for (cell, w), v in self._vessels.items()
                if w == window}

    def active_cells(self) -> set[int]:
        return {cell for cell, _ in self._vessels}

    def windows(self) -> list[int]:
        return sorted({w for _, w in self._vessels})

    def series(self, cell: int, windows: list[int]) -> np.ndarray:
        """Flow history of one cell over a window range."""
        return np.array([self.count(cell, w) for w in windows], dtype=float)

    def classify(self, count: int, low_max: int = 2, medium_max: int = 5
                 ) -> TrafficLevel:
        """Heat class of a vessel count (thresholds per deployment)."""
        if count <= low_max:
            return TrafficLevel.LOW
        if count <= medium_max:
            return TrafficLevel.MEDIUM
        return TrafficLevel.HIGH


class IndirectVTFF:
    """Forecast traffic flow by rasterising route forecasts.

    Feed every vessel's latest :class:`RouteForecast`; each of the six
    predicted positions lands in its forecast (cell, window) bucket. Since
    only the latest forecast per vessel should count, re-submitting a vessel
    replaces its previous contribution.
    """

    def __init__(self, resolution: int = FLOW_RESOLUTION,
                 window_s: float = FLOW_WINDOW_S) -> None:
        self.resolution = resolution
        self.window_s = window_s
        self._grid = FlowGrid(resolution=resolution, window_s=window_s)
        #: mmsi -> keys contributed by its current forecast.
        self._contrib: dict[int, list[tuple[int, int]]] = {}

    def submit(self, forecast: RouteForecast) -> None:
        mmsi = forecast.mmsi
        for key in self._contrib.pop(mmsi, []):
            vessels = self._grid._vessels.get(key)
            if vessels is not None:
                vessels.discard(mmsi)
                if not vessels:
                    del self._grid._vessels[key]
        keys = []
        for pos in forecast.predicted:
            cell = latlng_to_cell(pos.lat, pos.lon, self.resolution)
            key = (cell, self._grid.window_of(pos.t))
            self._grid._vessels.setdefault(key, set()).add(mmsi)
            keys.append(key)
        self._contrib[mmsi] = keys

    def predicted_flow(self, window: int) -> dict[int, int]:
        """Forecast ``cell -> vessel count`` for a future window."""
        return self._grid.window_counts(window)

    def predicted_level(self, cell: int, window: int) -> TrafficLevel:
        return self._grid.classify(self._grid.count(cell, window))

    @property
    def grid(self) -> FlowGrid:
        return self._grid


class DirectVTFF:
    """Per-cell autoregressive flow forecasting (the direct baseline).

    Fits one ridge-regularised AR(``order``) model per cell on its flow
    history; cells with insufficient history fall back to persistence
    (repeat the last observed count).
    """

    def __init__(self, order: int = 6, ridge: float = 1.0) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.ridge = ridge
        self._coef: dict[int, np.ndarray] = {}
        self._history: dict[int, np.ndarray] = {}

    def fit(self, histories: dict[int, np.ndarray]) -> "DirectVTFF":
        """``histories`` maps cell -> chronological flow counts."""
        for cell, series in histories.items():
            series = np.asarray(series, dtype=float)
            self._history[cell] = series
            n = series.size - self.order
            if n < max(2 * self.order, 4):
                continue  # persistence fallback
            x = np.stack([series[i:i + self.order] for i in range(n)])
            y = series[self.order:]
            xb = np.hstack([x, np.ones((n, 1))])
            a = xb.T @ xb + self.ridge * np.eye(self.order + 1)
            self._coef[cell] = np.linalg.solve(a, xb.T @ y)
        return self

    def predict(self, cell: int, steps: int = 1) -> np.ndarray:
        """Forecast the next ``steps`` windows for one cell."""
        history = self._history.get(cell)
        if history is None or history.size == 0:
            return np.zeros(steps)
        coef = self._coef.get(cell)
        if coef is None:
            return np.full(steps, history[-1])
        window = list(history[-self.order:])
        while len(window) < self.order:
            window.insert(0, 0.0)
        out = []
        for _ in range(steps):
            nxt = float(np.dot(coef[:-1], window) + coef[-1])
            nxt = max(nxt, 0.0)
            out.append(nxt)
            window = window[1:] + [nxt]
        return np.asarray(out)

    def known_cells(self) -> set[int]:
        return set(self._history)
