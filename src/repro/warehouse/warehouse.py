"""The H3+day partitioned warehouse directory and its manifest.

A :class:`Warehouse` owns one directory of columnar segment files (see
``segments.py``) plus a ``manifest.json`` naming, for every partition
``(cell at the warehouse resolution, UTC day)``, the segment file that
currently holds its rows. The manifest also carries the **cursor**: the
last kvstore journal sequence (and per-shard ``repl:flush`` sequence)
whose rows the referenced segments cover.

Idempotence contract (the compaction crash window):

1. every touched partition's rows are rewritten to a *new generation*
   file (``pos-<cell>-<day>.g<N>.seg``, atomic tmp + ``os.replace``);
2. the manifest — new file names + advanced cursor — is replaced
   atomically **after** all segment writes;
3. superseded generation files are unlinked only after the manifest is
   durable (a crash in between leaves orphans for :meth:`vacuum`).

A crash anywhere inside a commit therefore leaves the manifest pointing
at the *previous* generation with the *previous* cursor, and re-running
compaction replays exactly the uncovered journal suffix into exactly the
same logical state: warehouse contents are a pure function of the source
journal, whatever crash schedule interrupted compaction — the property
:meth:`fingerprint` lets the sim campaign assert byte-for-byte.

Within a partition rows are kept stably sorted by ``t`` (ties keep
journal order). Appending a journal-ordered batch and re-running a
stable sort preserves (t, journal-position) order under *any* batch
split, which is why the fingerprint is schedule-independent.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Iterator

import numpy as np

from repro.hexgrid import latlng_to_cell
from repro.warehouse.segments import (
    EVENT_COLUMNS,
    POSITION_COLUMNS,
    concat_tables,
    empty_table,
    read_segment,
    sort_by_time,
    table_rows,
    write_segment,
)

MANIFEST_FILE = "manifest.json"
MANIFEST_VERSION = 1

#: Seconds per warehouse day partition.
DAY_S = 86_400.0

#: Table names and their file prefixes / column schemas.
TABLES: dict[str, tuple[str, tuple[tuple[str, str], ...]]] = {
    "positions": ("pos", POSITION_COLUMNS),
    "events": ("evt", EVENT_COLUMNS),
}


def day_of(t: float) -> int:
    """UTC day index of a timestamp (floor, so negative t stays sane)."""
    return int(np.floor(t / DAY_S))


def partition_of(lat: float, lon: float, t: float, resolution: int
                 ) -> tuple[int, int]:
    """The ``(cell, day)`` partition a row belongs to."""
    return latlng_to_cell(lat, lon, resolution), day_of(t)


def partition_key(cell: int, day: int) -> str:
    """Canonical manifest key of a partition."""
    return f"{cell:016x}:{day}"


def parse_partition_key(key: str) -> tuple[int, int]:
    cell_hex, _, day = key.partition(":")
    return int(cell_hex, 16), int(day)


class Warehouse:
    """One warehouse directory: partitioned segments + manifest + cursor."""

    def __init__(self, directory: str, resolution: int = 6,
                 registry=None) -> None:
        if not 0 <= resolution <= 15:
            raise ValueError(f"resolution must be in [0, 15], got {resolution}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_FILE)
        #: Test/simulation hook: called as ``failpoint(stage, detail)`` at
        #: ``("segment", key)``, ``("manifest", None)`` and
        #: ``("committed", None)``; raising simulates a crash there.
        self.failpoint: Callable[[str, Any], None] | None = None
        self._manifest = self._load_manifest(resolution)
        if self._manifest["resolution"] != resolution:
            raise ValueError(
                f"warehouse at {directory} uses resolution "
                f"{self._manifest['resolution']}, not {resolution}")
        self.resolution = self._manifest["resolution"]
        self._instruments = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> None:
        """Attach telemetry instruments (idempotent)."""
        self._instruments = (
            registry.counter("warehouse_commits_total"),
            registry.counter("warehouse_segments_written_total"),
            {name: registry.counter("warehouse_rows_compacted_total",
                                    {"table": name}) for name in TABLES},
            registry.histogram("warehouse_commit_rows"),
            registry.histogram("warehouse_segment_bytes"),
        )

    # -- manifest ---------------------------------------------------------------

    def _load_manifest(self, resolution: int) -> dict:
        if os.path.exists(self.manifest_path):
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            if manifest.get("version") != MANIFEST_VERSION:
                raise ValueError(
                    f"manifest version {manifest.get('version')!r} != "
                    f"{MANIFEST_VERSION}")
            return manifest
        return {
            "version": MANIFEST_VERSION,
            "resolution": resolution,
            "cursor": {"journal_seq": 0, "snapshot_seq": 0, "repl": {}},
            "kinds": [],
            "positions": {},
            "events": {},
        }

    def _write_manifest(self) -> None:
        payload = json.dumps(self._manifest, sort_keys=True,
                             separators=(",", ":")).encode()
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, self.manifest_path)

    @property
    def journal_seq(self) -> int:
        """Last kvstore journal sequence the segments cover."""
        return self._manifest["cursor"]["journal_seq"]

    @property
    def snapshot_seq(self) -> int:
        return self._manifest["cursor"]["snapshot_seq"]

    def repl_seq(self, shard: int) -> int:
        """Last applied ``repl:flush`` sequence of a writer shard."""
        return self._manifest["cursor"]["repl"].get(str(shard), 0)

    @property
    def kinds(self) -> list[str]:
        """The event-kind intern table (``kind_id`` indexes into this)."""
        return list(self._manifest["kinds"])

    def kind_id(self, kind: str) -> int:
        """Intern an event kind; the id is durable from the next commit."""
        kinds = self._manifest["kinds"]
        try:
            return kinds.index(kind)
        except ValueError:
            kinds.append(kind)
            return len(kinds) - 1

    # -- reads ------------------------------------------------------------------

    def partitions(self, table: str = "positions"
                   ) -> Iterator[tuple[int, int, dict]]:
        """Yield ``(cell, day, meta)`` for every partition of ``table``."""
        for key, meta in self._manifest[table].items():
            cell, day = parse_partition_key(key)
            yield cell, day, meta

    def partition_count(self, table: str = "positions") -> int:
        return len(self._manifest[table])

    def total_rows(self, table: str = "positions") -> int:
        return sum(meta["rows"] for meta in self._manifest[table].values())

    def read_partition(self, table: str, cell: int, day: int
                       ) -> dict[str, np.ndarray]:
        """Load one partition's rows (empty table if absent)."""
        meta = self._manifest[table].get(partition_key(cell, day))
        if meta is None:
            return empty_table(TABLES[table][1])
        return read_segment(os.path.join(self.directory, meta["file"]))

    def stats(self) -> dict:
        return {
            "resolution": self.resolution,
            "journal_seq": self.journal_seq,
            "positions_rows": self.total_rows("positions"),
            "events_rows": self.total_rows("events"),
            "positions_partitions": self.partition_count("positions"),
            "events_partitions": self.partition_count("events"),
            "kinds": self.kinds,
        }

    # -- commit -----------------------------------------------------------------

    def _fail(self, stage: str, detail) -> None:
        if self.failpoint is not None:
            self.failpoint(stage, detail)

    def commit(self, positions: dict[tuple[int, int], dict[str, np.ndarray]],
               events: dict[tuple[int, int], dict[str, np.ndarray]],
               cursor: dict | None = None) -> dict:
        """Fold per-partition row batches in and advance the cursor.

        ``positions``/``events`` map ``(cell, day)`` to column tables whose
        rows are in source (journal/feed) order. Returns commit stats.
        """
        new_rows = 0
        segments_written = 0
        bytes_written = 0
        doomed: list[str] = []
        for table, batches in (("positions", positions), ("events", events)):
            prefix, columns = TABLES[table]
            entries = self._manifest[table]
            for (cell, day), batch in sorted(batches.items()):
                rows = table_rows(batch)
                if rows == 0:
                    continue
                key = partition_key(cell, day)
                meta = entries.get(key)
                if meta is None:
                    current = empty_table(columns)
                    gen = 0
                else:
                    current = read_segment(
                        os.path.join(self.directory, meta["file"]))
                    gen = meta["gen"]
                    doomed.append(meta["file"])
                merged = sort_by_time(concat_tables([current, batch]))
                filename = f"{prefix}-{cell:016x}-{day}.g{gen + 1}.seg"
                bytes_written += write_segment(
                    os.path.join(self.directory, filename), merged)
                segments_written += 1
                new_rows += rows
                entries[key] = {
                    "file": filename,
                    "rows": table_rows(merged),
                    "gen": gen + 1,
                    "t_min": float(merged["t"][0]),
                    "t_max": float(merged["t"][-1]),
                }
                if table == "positions":
                    entries[key]["mmsi_min"] = int(merged["mmsi"].min())
                    entries[key]["mmsi_max"] = int(merged["mmsi"].max())
                self._record_rows(table, rows)
                self._fail("segment", key)
        if cursor:
            cur = self._manifest["cursor"]
            if "journal_seq" in cursor:
                cur["journal_seq"] = max(cur["journal_seq"],
                                         cursor["journal_seq"])
            if "snapshot_seq" in cursor:
                cur["snapshot_seq"] = max(cur["snapshot_seq"],
                                          cursor["snapshot_seq"])
            for shard, seq in cursor.get("repl", {}).items():
                repl = cur["repl"]
                shard = str(shard)
                repl[shard] = max(repl.get(shard, 0), seq)
        self._fail("manifest", None)
        self._write_manifest()
        # Only now are the previous generations garbage.
        for filename in doomed:
            try:
                os.unlink(os.path.join(self.directory, filename))
            except FileNotFoundError:
                pass
        self._fail("committed", None)
        if self._instruments is not None:
            commits, segs, rows_c, rows_h, bytes_h = self._instruments
            commits.inc()
            segs.inc(segments_written)
            rows_h.observe(new_rows)
            if bytes_written:
                bytes_h.observe(bytes_written)
        return {"rows": new_rows, "segments_written": segments_written,
                "bytes_written": bytes_written}

    def _record_rows(self, table: str, rows: int) -> None:
        if self._instruments is not None:
            self._instruments[2][table].inc(rows)

    # -- maintenance ------------------------------------------------------------

    def vacuum(self) -> int:
        """Delete files the manifest does not reference (crash leftovers:
        orphaned generations and ``*.tmp``). Returns the number removed."""
        referenced = {MANIFEST_FILE}
        for table in TABLES:
            for meta in self._manifest[table].values():
                referenced.add(meta["file"])
        removed = 0
        for filename in os.listdir(self.directory):
            if filename in referenced:
                continue
            if filename.endswith(".seg") or filename.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.directory, filename))
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

    def fingerprint(self) -> str:
        """Digest of the warehouse's *logical* content: every partition's
        key and column bytes, in sorted key order, plus the kind table.
        Generation numbers and file names are excluded — two warehouses
        built from the same journal through different crash schedules
        fingerprint identically (the sim campaign's byte-equality check).
        """
        digest = hashlib.sha256()
        digest.update(json.dumps(self._manifest["kinds"]).encode())
        for table in sorted(TABLES):
            digest.update(table.encode())
            for key in sorted(self._manifest[table]):
                meta = self._manifest[table][key]
                segment = read_segment(
                    os.path.join(self.directory, meta["file"]))
                digest.update(key.encode())
                for name in sorted(segment):
                    digest.update(name.encode())
                    digest.update(segment[name].tobytes())
        return digest.hexdigest()
