"""Historical analytics warehouse over the kvstore journal (ROADMAP 5).

``repro.warehouse`` compacts the durable journal / checkpoints and the
live ``repl:flush`` feed into H3+day partitioned columnar segments, then
answers OLAP queries (heatmaps, event-rate time series, congestion
trends, vessel histories) with partition pruning. See WAREHOUSE.md.
"""

from repro.warehouse.compactor import (
    WarehouseCompactor,
    event_row,
    pump_feed,
)
from repro.warehouse.query import WarehouseQueries, cell_may_intersect
from repro.warehouse.segments import (
    CorruptSegmentError,
    EVENT_COLUMNS,
    POSITION_COLUMNS,
    empty_table,
    read_segment,
    sort_by_time,
    table_rows,
    write_segment,
)
from repro.warehouse.warehouse import (
    DAY_S,
    Warehouse,
    day_of,
    partition_key,
    partition_of,
    parse_partition_key,
)

__all__ = [
    "CorruptSegmentError",
    "DAY_S",
    "EVENT_COLUMNS",
    "POSITION_COLUMNS",
    "Warehouse",
    "WarehouseCompactor",
    "WarehouseQueries",
    "cell_may_intersect",
    "day_of",
    "empty_table",
    "event_row",
    "partition_key",
    "partition_of",
    "parse_partition_key",
    "pump_feed",
    "read_segment",
    "sort_by_time",
    "table_rows",
    "write_segment",
]
