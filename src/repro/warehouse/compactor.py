"""The compactor: journal / feed rows -> partitioned warehouse segments.

Three sources feed the same :class:`~repro.warehouse.warehouse.Warehouse`:

* **The kvstore op journal** (:meth:`WarehouseCompactor.compact_persistence`)
  — the durable backfill path. The writer pool journals every flushed
  ``hmset vessel:{mmsi}`` and ``rpush events:{kind}`` (PERSISTENCE.md);
  the compactor tails entries past the warehouse's ``journal_seq`` cursor
  and turns them back into position/event rows. Re-running after any
  crash is idempotent: covered sequences are skipped by construction.
* **The replication feed** (:meth:`ingest_flush`) — the live streaming
  path. Writer shards publish flushed micro-batches on ``repl:flush``
  (SERVING.md); the compactor buffers their rows and
  :meth:`flush_feed` commits them with per-shard sequence cursors, so a
  duplicated delivery is dropped rather than double-counted.
* **A store snapshot** (:meth:`bootstrap_snapshot`) — the bootstrap path
  for a journal that was already truncated by a store compaction: the
  snapshot's latest ``vessel:*`` states land as one row each and the
  journal cursor jumps to the snapshot's sequence.

One warehouse should stick to one of journal-tailing or feed-tailing:
the sources carry the same rows, so mixing them double-counts (the
journal is byte-complete; the feed is the low-latency mirror).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from repro.warehouse.warehouse import Warehouse, partition_of

VESSEL_PREFIX = "vessel:"
EVENTS_PREFIX = "events:"


def _field(payload: Any, *names: str) -> Any:
    """First present field of a dataclass instance or plain dict."""
    if isinstance(payload, dict):
        for name in names:
            if name in payload:
                return payload[name]
        return None
    for name in names:
        value = getattr(payload, name, None)
        if value is not None:
            return value
    return None


def event_row(kind: str, payload: Any, fallback_t: float
              ) -> tuple[float, int, int, float, float] | None:
    """``(t, mmsi_a, mmsi_b, lat, lon)`` of one event payload, or None
    when the payload carries no usable position (unlocatable events are
    counted and skipped — the warehouse is a spatial store)."""
    del kind  # the kind is interned by the caller
    lat = _field(payload, "lat", "last_lat")
    lon = _field(payload, "lon", "last_lon")
    if lat is None or lon is None:
        return None
    t = _field(payload, "t", "t_expected", "t_detected")
    if t is None:
        t = fallback_t
    mmsi_a = _field(payload, "mmsi_a", "mmsi")
    mmsi_b = _field(payload, "mmsi_b")
    return (float(t), int(mmsi_a) if mmsi_a is not None else -1,
            int(mmsi_b) if mmsi_b is not None else -1,
            float(lat), float(lon))


class _RowBuffer:
    """Per-partition accumulation of python-scalar rows, converted to
    numpy column tables only at commit time."""

    def __init__(self, resolution: int) -> None:
        self.resolution = resolution
        self.positions: dict[tuple[int, int], list[tuple]] = {}
        self.events: dict[tuple[int, int], list[tuple]] = {}
        self.rows = 0

    def add_position(self, mmsi: int, t: float, lat: float, lon: float,
                     sog: float, cog: float) -> None:
        pk = partition_of(lat, lon, t, self.resolution)
        self.positions.setdefault(pk, []).append(
            (mmsi, t, lat, lon, sog, cog))
        self.rows += 1

    def add_event(self, kind_id: int, t: float, mmsi_a: int, mmsi_b: int,
                  lat: float, lon: float) -> None:
        pk = partition_of(lat, lon, t, self.resolution)
        self.events.setdefault(pk, []).append(
            (t, kind_id, mmsi_a, mmsi_b, lat, lon))
        self.rows += 1

    def tables(self) -> tuple[dict, dict]:
        positions = {}
        for pk, rows in self.positions.items():
            array = np.array(rows, dtype=np.float64)
            positions[pk] = {
                "mmsi": array[:, 0].astype(np.int64),
                "t": array[:, 1], "lat": array[:, 2], "lon": array[:, 3],
                "sog": array[:, 4], "cog": array[:, 5],
            }
        events = {}
        for pk, rows in self.events.items():
            array = np.array(rows, dtype=np.float64)
            events[pk] = {
                "t": array[:, 0],
                "kind_id": array[:, 1].astype(np.int64),
                "mmsi_a": array[:, 2].astype(np.int64),
                "mmsi_b": array[:, 3].astype(np.int64),
                "lat": array[:, 4], "lon": array[:, 5],
            }
        return positions, events


class WarehouseCompactor:
    """Streams journal/feed entries into warehouse commits."""

    def __init__(self, warehouse: Warehouse, batch_rows: int = 65_536,
                 registry=None) -> None:
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        self.warehouse = warehouse
        self.batch_rows = batch_rows
        self.ops_scanned = 0
        self.rows_skipped = 0
        self.feed_batches = 0
        self.feed_duplicates = 0
        self._instruments = None
        #: Feed-side pending state (see :meth:`ingest_flush`).
        self._feed_buffer = _RowBuffer(warehouse.resolution)
        self._feed_cursor: dict[str, int] = {}
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> None:
        self.warehouse.bind_registry(registry)
        self._instruments = (
            registry.counter("warehouse_journal_ops_scanned_total"),
            registry.counter("warehouse_rows_skipped_total"),
            registry.counter("warehouse_feed_batches_total"),
            registry.counter("warehouse_feed_duplicates_total"),
        )

    def _count(self, index: int, amount: int = 1) -> None:
        if self._instruments is not None and amount:
            self._instruments[index].inc(amount)

    # -- journal tailing --------------------------------------------------------

    def compact_persistence(self, persistence) -> dict:
        """Tail a :class:`~repro.kvstore.persistence.StorePersistence`'s
        journal past the warehouse cursor into committed segments."""
        return self.compact_journal(
            persistence.iter_ops(after_seq=self.warehouse.journal_seq))

    def compact_journal(self, entries: Iterable[tuple[int, str, tuple, dict]]
                        ) -> dict:
        """Fold journal entries ``(seq, op, args, kwargs)`` in, committing
        every ``batch_rows`` buffered rows with the cursor advanced to the
        last folded sequence. Entries at or below the cursor are skipped
        (re-compaction after a crash re-reads them harmlessly)."""
        covered = self.warehouse.journal_seq
        buffer = _RowBuffer(self.warehouse.resolution)
        totals = {"rows": 0, "segments_written": 0, "commits": 0,
                  "ops_scanned": 0}
        last_seq = covered
        for seq, op, args, kwargs in entries:
            totals["ops_scanned"] += 1
            if seq <= covered:
                continue
            last_seq = seq
            self._decode_op(op, args, kwargs, buffer)
            if buffer.rows >= self.batch_rows:
                self._commit(buffer, {"journal_seq": seq}, totals)
                buffer = _RowBuffer(self.warehouse.resolution)
        if buffer.rows or last_seq > self.warehouse.journal_seq:
            self._commit(buffer, {"journal_seq": last_seq}, totals)
        self.ops_scanned += totals["ops_scanned"]
        self._count(0, totals["ops_scanned"])
        return totals

    def _decode_op(self, op: str, args: tuple, kwargs: dict,
                   buffer: _RowBuffer) -> None:
        if op == "hmset" and args[0].startswith(VESSEL_PREFIX):
            key, mapping = args[0], args[1]
            try:
                mmsi = int(key[len(VESSEL_PREFIX):])
                buffer.add_position(
                    mmsi, float(mapping["t"]), float(mapping["lat"]),
                    float(mapping["lon"]), float(mapping["sog"]),
                    float(mapping["cog"]))
            except (KeyError, TypeError, ValueError):
                self.rows_skipped += 1
                self._count(1)
        elif op == "rpush" and args[0].startswith(EVENTS_PREFIX):
            kind = args[0][len(EVENTS_PREFIX):]
            now = kwargs.get("now", 0.0)
            kind_id = self.warehouse.kind_id(kind)
            for payload in args[1:]:
                row = event_row(kind, payload, now)
                if row is None:
                    self.rows_skipped += 1
                    self._count(1)
                    continue
                t, mmsi_a, mmsi_b, lat, lon = row
                buffer.add_event(kind_id, t, mmsi_a, mmsi_b, lat, lon)

    def _commit(self, buffer: _RowBuffer, cursor: dict, totals: dict) -> None:
        positions, events = buffer.tables()
        stats = self.warehouse.commit(positions, events, cursor)
        totals["rows"] += stats["rows"]
        totals["segments_written"] += stats["segments_written"]
        totals["commits"] += 1

    # -- replication feed -------------------------------------------------------

    def ingest_flush(self, payload: dict) -> int:
        """Buffer one ``repl:flush`` batch; returns rows buffered (0 for a
        duplicate already covered by the warehouse or pending cursor)."""
        shard = str(payload["shard"])
        seq = payload["seq"]
        covered = max(self.warehouse.repl_seq(int(shard)),
                      self._feed_cursor.get(shard, 0))
        if seq <= covered:
            self.feed_duplicates += 1
            self._count(3)
            return 0
        before = self._feed_buffer.rows
        for state in payload.get("states", ()):
            try:
                self._feed_buffer.add_position(
                    int(state["mmsi"]), float(state["t"]),
                    float(state["lat"]), float(state["lon"]),
                    float(state["sog"]), float(state["cog"]))
            except (KeyError, TypeError, ValueError):
                self.rows_skipped += 1
                self._count(1)
        for event in payload.get("events", ()):
            kind = event.get("kind", "unknown")
            row = event_row(kind, event.get("payload", {}),
                            event.get("t", 0.0))
            if row is None:
                self.rows_skipped += 1
                self._count(1)
                continue
            t, mmsi_a, mmsi_b, lat, lon = row
            self._feed_buffer.add_event(
                self.warehouse.kind_id(kind), t, mmsi_a, mmsi_b, lat, lon)
        self._feed_cursor[shard] = seq
        self.feed_batches += 1
        self._count(2)
        return self._feed_buffer.rows - before

    @property
    def feed_pending_rows(self) -> int:
        return self._feed_buffer.rows

    def flush_feed(self) -> dict:
        """Commit everything :meth:`ingest_flush` buffered (one commit,
        per-shard cursors advanced; a no-op when nothing is pending)."""
        if not self._feed_buffer.rows and not self._feed_cursor:
            return {"rows": 0, "segments_written": 0, "commits": 0}
        positions, events = self._feed_buffer.tables()
        stats = self.warehouse.commit(
            positions, events, {"repl": dict(self._feed_cursor)})
        self._feed_buffer = _RowBuffer(self.warehouse.resolution)
        self._feed_cursor = {}
        stats["commits"] = 1
        return stats

    # -- snapshot bootstrap -----------------------------------------------------

    def bootstrap_snapshot(self, snapshot: dict) -> dict:
        """Fold a kvstore snapshot's latest vessel states in (one row per
        vessel) and jump the journal cursor to the snapshot's ``seq`` —
        the recovery path when the journal was truncated by a store
        compaction before the warehouse could tail it."""
        buffer = _RowBuffer(self.warehouse.resolution)
        for key, value in snapshot.get("data", {}).items():
            if not (key.startswith(VESSEL_PREFIX) and isinstance(value, dict)):
                continue
            try:
                buffer.add_position(
                    int(key[len(VESSEL_PREFIX):]), float(value["t"]),
                    float(value["lat"]), float(value["lon"]),
                    float(value["sog"]), float(value["cog"]))
            except (KeyError, TypeError, ValueError):
                self.rows_skipped += 1
                self._count(1)
        seq = snapshot.get("seq", 0)
        positions, events = buffer.tables()
        return self.warehouse.commit(
            positions, events, {"journal_seq": seq, "snapshot_seq": seq})


def pump_feed(compactor: WarehouseCompactor, subscription,
              max_batches: int | None = None) -> Iterator[int]:
    """Drain a pub/sub replication subscription into the compactor,
    yielding rows buffered per batch (a convenience for feed-tailing
    loops; callers decide when to :meth:`~WarehouseCompactor.flush_feed`).
    """
    drained = 0
    while max_batches is None or drained < max_batches:
        message = subscription.get()
        if message is None:
            return
        channel, payload = message
        if channel.endswith(":flush"):
            yield compactor.ingest_flush(payload)
        drained += 1
