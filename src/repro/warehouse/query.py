"""OLAP queries over the warehouse, with partition-level predicate pushdown.

Every query prunes on the manifest **before** touching a segment: the
day range of the time predicate, each partition's recorded ``t_min`` /
``t_max``, cell membership (k-ring / explicit cell sets), a
circumradius-padded bounding-box test against the partition cell's
centre, and — for vessel scans — the partition's recorded MMSI range.
Only surviving partitions are loaded, and row-level filters then make the
results exact (pruning may only ever *over*-select, never drop a
matching row — the property suite checks this against a brute-force
scan oracle).

Latency is measured through the injectable ``clock`` (default
``time.perf_counter``; the AST wall-clock audit covers this module) into
a per-query-kind histogram, alongside counters for partitions scanned
vs pruned and rows scanned.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.hexgrid import cell_to_latlng, grid_disk, latlng_to_cell
from repro.hexgrid.index import EDGE_LENGTHS_M
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.warehouse.warehouse import Warehouse, day_of


def _cycle_distance_deg(a: float, b: float) -> float:
    d = abs(a - b) % 360.0
    return min(d, 360.0 - d)


def _lon_near(lon: float, lon_min: float, lon_max: float, pad: float) -> bool:
    """True if ``lon`` lies in the (possibly antimeridian-crossing)
    interval or within ``pad`` degrees of either edge."""
    if lon_min <= lon_max:
        if lon_min <= lon <= lon_max:
            return True
    elif lon >= lon_min or lon <= lon_max:
        return True
    return (_cycle_distance_deg(lon, lon_min) <= pad
            or _cycle_distance_deg(lon, lon_max) <= pad)


def cell_may_intersect(cell: int, bbox: BoundingBox) -> bool:
    """Conservative partition-level bbox test: does the cell's hexagon
    possibly overlap the box? (Centre containment padded by the hexagon
    circumradius — never a false negative, occasionally a false positive
    that row-level filtering removes.)"""
    res = cell >> 60
    pad = EDGE_LENGTHS_M[res] / METERS_PER_DEG_LAT
    lat, lon = cell_to_latlng(cell)
    if not bbox.lat_min - pad <= lat <= bbox.lat_max + pad:
        return False
    return _lon_near(lon, bbox.lon_min, bbox.lon_max, pad)


def _row_bbox_mask(table: dict, bbox: BoundingBox) -> np.ndarray:
    lat, lon = table["lat"], table["lon"]
    mask = (lat >= bbox.lat_min) & (lat <= bbox.lat_max)
    if bbox.crosses_antimeridian:
        return mask & ((lon >= bbox.lon_min) | (lon <= bbox.lon_max))
    return mask & (lon >= bbox.lon_min) & (lon <= bbox.lon_max)


class WarehouseQueries:
    """The query surface the serving tier and benchmarks share."""

    def __init__(self, warehouse: Warehouse, registry=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.warehouse = warehouse
        self._clock = clock
        self.partitions_scanned = 0
        self.partitions_pruned = 0
        self.rows_scanned = 0
        self._registry = registry
        self._latency: dict[str, object] = {}
        self._counters = None
        if registry is not None:
            self._counters = (
                registry.counter("warehouse_query_partitions_scanned_total"),
                registry.counter("warehouse_query_partitions_pruned_total"),
                registry.counter("warehouse_query_rows_scanned_total"),
            )

    # -- instrumentation --------------------------------------------------------

    def _observe(self, query: str, seconds: float) -> None:
        if self._registry is None:
            return
        hist = self._latency.get(query)
        if hist is None:
            hist = self._latency[query] = self._registry.histogram(
                "warehouse_query_seconds", {"query": query})
        hist.observe(seconds)

    def _account(self, scanned: int, pruned: int, rows: int) -> None:
        self.partitions_scanned += scanned
        self.partitions_pruned += pruned
        self.rows_scanned += rows
        if self._counters is not None:
            s, p, r = self._counters
            s.inc(scanned)
            p.inc(pruned)
            r.inc(rows)

    # -- partition selection (the pushdown) -------------------------------------

    def _select(self, table: str, t0: float, t1: float,
                cells: set[int] | None = None,
                bbox: BoundingBox | None = None,
                mmsi: int | None = None) -> Iterator[tuple[int, int, dict]]:
        """Yield ``(cell, day, rows_table)`` for partitions surviving every
        partition-level predicate; accounting happens here."""
        day_lo = day_of(t0) if math.isfinite(t0) else None
        day_hi = day_of(t1) if math.isfinite(t1) else None
        scanned = pruned = rows = 0
        for cell, day, meta in self.warehouse.partitions(table):
            if (day_lo is not None and day < day_lo) \
                    or (day_hi is not None and day > day_hi) \
                    or meta["t_max"] < t0 or meta["t_min"] > t1:
                pruned += 1
                continue
            if cells is not None and cell not in cells:
                pruned += 1
                continue
            if bbox is not None and not cell_may_intersect(cell, bbox):
                pruned += 1
                continue
            if mmsi is not None and not (
                    meta.get("mmsi_min", mmsi) <= mmsi
                    <= meta.get("mmsi_max", mmsi)):
                pruned += 1
                continue
            scanned += 1
            loaded = self.warehouse.read_partition(table, cell, day)
            rows += len(loaded["t"])
            yield cell, day, loaded
        self._account(scanned, pruned, rows)

    @staticmethod
    def _time_mask(table: dict, t0: float, t1: float) -> np.ndarray:
        return (table["t"] >= t0) & (table["t"] <= t1)

    # -- queries ----------------------------------------------------------------

    def heatmap(self, bbox: BoundingBox | None = None,
                cells: Iterable[int] | None = None,
                t0: float = -math.inf, t1: float = math.inf,
                by: str = "rows") -> dict[int, int]:
        """Traffic heat per warehouse cell: kept-fix rows (``by="rows"``)
        or distinct vessels (``by="vessels"``) inside the predicates."""
        if by not in ("rows", "vessels"):
            raise ValueError(f"by must be 'rows' or 'vessels', got {by!r}")
        start = self._clock()
        cell_set = set(cells) if cells is not None else None
        counts: dict[int, int] = {}
        vessels: dict[int, set] = {}
        for cell, _day, table in self._select(
                "positions", t0, t1, cells=cell_set, bbox=bbox):
            mask = self._time_mask(table, t0, t1)
            if bbox is not None:
                mask &= _row_bbox_mask(table, bbox)
            if by == "rows":
                hit = int(np.count_nonzero(mask))
                if hit:
                    counts[cell] = counts.get(cell, 0) + hit
            else:
                seen = np.unique(table["mmsi"][mask])
                if len(seen):
                    vessels.setdefault(cell, set()).update(seen.tolist())
        if by == "vessels":
            counts = {cell: len(seen) for cell, seen in vessels.items()}
        self._observe("heatmap", self._clock() - start)
        return counts

    def kring_heatmap(self, lat: float, lon: float, k: int,
                      t0: float = -math.inf, t1: float = math.inf,
                      by: str = "rows") -> dict[int, int]:
        """Heatmap over the k-ring disk around a point, at the warehouse
        resolution (CheetahGIS-style streaming spatial scan shape)."""
        center = latlng_to_cell(lat, lon, self.warehouse.resolution)
        return self.heatmap(cells=grid_disk(center, k), t0=t0, t1=t1, by=by)

    def cell_event_rate(self, cells: Iterable[int], t0: float, t1: float,
                        bucket_s: float,
                        kinds: Sequence[str] | None = None) -> dict:
        """Per-cell event-count time series over ``[t0, t1)`` buckets."""
        if not (math.isfinite(t0) and math.isfinite(t1) and t1 > t0):
            raise ValueError("cell_event_rate needs a finite t0 < t1")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        start = self._clock()
        cell_set = set(cells)
        n_buckets = int(math.ceil((t1 - t0) / bucket_s))
        edges = t0 + bucket_s * np.arange(n_buckets + 1)
        kind_ids = None
        if kinds is not None:
            table_kinds = self.warehouse.kinds
            kind_ids = {table_kinds.index(k) for k in kinds
                        if k in table_kinds}
        per_cell: dict[int, np.ndarray] = {}
        for cell, _day, table in self._select(
                "events", t0, t1, cells=cell_set):
            mask = (table["t"] >= t0) & (table["t"] < t1)
            if kind_ids is not None:
                mask &= np.isin(table["kind_id"],
                                np.array(sorted(kind_ids), dtype=np.int64))
            times = table["t"][mask]
            if not len(times):
                continue
            hist, _ = np.histogram(times, bins=edges)
            if cell in per_cell:
                per_cell[cell] = per_cell[cell] + hist
            else:
                per_cell[cell] = hist
        total = np.zeros(n_buckets, dtype=np.int64)
        for hist in per_cell.values():
            total += hist
        result = {
            "t0": t0, "bucket_s": bucket_s, "n_buckets": n_buckets,
            "cells": {cell: hist.tolist() for cell, hist in per_cell.items()},
            "total": total.tolist(),
        }
        self._observe("cell_event_rate", self._clock() - start)
        return result

    def congestion_trend(self, t0: float, t1: float, bucket_s: float,
                         bbox: BoundingBox | None = None,
                         cells: Iterable[int] | None = None) -> dict:
        """Port-congestion trend: distinct vessels present in the area per
        time bucket (occupancy), plus kept-fix row counts."""
        if not (math.isfinite(t0) and math.isfinite(t1) and t1 > t0):
            raise ValueError("congestion_trend needs a finite t0 < t1")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        start = self._clock()
        cell_set = set(cells) if cells is not None else None
        n_buckets = int(math.ceil((t1 - t0) / bucket_s))
        pairs: list[np.ndarray] = []
        rows = np.zeros(n_buckets, dtype=np.int64)
        for _cell, _day, table in self._select(
                "positions", t0, t1, cells=cell_set, bbox=bbox):
            mask = (table["t"] >= t0) & (table["t"] < t1)
            if bbox is not None:
                mask &= _row_bbox_mask(table, bbox)
            if not np.any(mask):
                continue
            bucket = ((table["t"][mask] - t0) // bucket_s).astype(np.int64)
            np.add.at(rows, bucket, 1)
            pairs.append(np.stack([bucket, table["mmsi"][mask]], axis=1))
        occupancy = np.zeros(n_buckets, dtype=np.int64)
        if pairs:
            unique = np.unique(np.concatenate(pairs), axis=0)
            np.add.at(occupancy, unique[:, 0], 1)
        result = {
            "t0": t0, "bucket_s": bucket_s, "n_buckets": n_buckets,
            "vessels": occupancy.tolist(), "rows": rows.tolist(),
        }
        self._observe("congestion_trend", self._clock() - start)
        return result

    def vessel_history(self, mmsi: int, t0: float = -math.inf,
                       t1: float = math.inf) -> dict[str, list]:
        """Every kept fix of one vessel in the window, ordered by time
        (day-range + per-partition MMSI-range pruning, then a column
        scan of the survivors)."""
        start = self._clock()
        chunks: list[dict[str, np.ndarray]] = []
        for _cell, _day, table in self._select(
                "positions", t0, t1, mmsi=mmsi):
            mask = (table["mmsi"] == mmsi) & self._time_mask(table, t0, t1)
            if np.any(mask):
                chunks.append({name: column[mask]
                               for name, column in table.items()})
        if not chunks:
            result = {name: [] for name in
                      ("t", "lat", "lon", "sog", "cog")}
        else:
            merged = {name: np.concatenate([c[name] for c in chunks])
                      for name in chunks[0]}
            order = np.argsort(merged["t"], kind="stable")
            result = {name: merged[name][order].tolist()
                      for name in ("t", "lat", "lon", "sog", "cog")}
        self._observe("vessel_history", self._clock() - start)
        return result
