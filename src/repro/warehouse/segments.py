"""Columnar segment files for the historical analytics warehouse.

A segment holds one partition's rows (one H3 cell at the warehouse
resolution x one UTC day) as contiguous numpy columns — the on-disk twin
of :class:`repro.streams.columnar.PositionBlock`'s struct-of-arrays
layout, following DIPAAL's cell/date partitioning (PAPERS.md).

The format is deliberately byte-deterministic: the same logical rows
always serialize to the same bytes, whatever compaction schedule produced
them. That is what lets the crash-interrupted compaction campaign assert
*byte* equality against a fault-free oracle (``np.savez`` would embed zip
member timestamps and break this).

Layout::

    RWHS (4 bytes magic)
    header length (8 bytes, little-endian unsigned)
    header JSON: {"version", "columns": [[name, dtype], ...], "rows": N}
    column payloads, concatenated in header order, C-contiguous

Writes are crash-safe the same way the kvstore snapshot is: the payload
lands in ``<path>.tmp`` first and is atomically ``os.replace``d into
place, so a reader never observes a half-written segment.
"""

from __future__ import annotations

import json
import os

import numpy as np

MAGIC = b"RWHS"
SEGMENT_VERSION = 1

#: Column schema of a position segment (mirrors ``PositionBlock``).
POSITION_COLUMNS: tuple[tuple[str, str], ...] = (
    ("mmsi", "<i8"), ("t", "<f8"), ("lat", "<f8"), ("lon", "<f8"),
    ("sog", "<f8"), ("cog", "<f8"),
)

#: Column schema of an event segment. ``kind_id`` indexes the manifest's
#: kind table; ``mmsi_b`` is -1 for single-vessel events.
EVENT_COLUMNS: tuple[tuple[str, str], ...] = (
    ("t", "<f8"), ("kind_id", "<i8"), ("mmsi_a", "<i8"), ("mmsi_b", "<i8"),
    ("lat", "<f8"), ("lon", "<f8"),
)


class CorruptSegmentError(RuntimeError):
    """A segment file could not be decoded."""


def empty_table(columns: tuple[tuple[str, str], ...]) -> dict[str, np.ndarray]:
    """A zero-row table with ``columns``' schema."""
    return {name: np.empty(0, dtype=np.dtype(dtype))
            for name, dtype in columns}


def table_rows(table: dict[str, np.ndarray]) -> int:
    """Row count of a column table (0 for an empty dict)."""
    for column in table.values():
        return len(column)
    return 0


def concat_tables(tables: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Concatenate column tables sharing one schema, preserving order."""
    if not tables:
        return {}
    return {name: np.concatenate([t[name] for t in tables])
            for name in tables[0]}


def take_rows(table: dict[str, np.ndarray], index: np.ndarray
              ) -> dict[str, np.ndarray]:
    """A new table holding ``table``'s rows at ``index``, in order."""
    return {name: column[index] for name, column in table.items()}


def sort_by_time(table: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Rows stably ordered by ``t`` (ties keep their append order, which
    is journal order — the segment invariant queries rely on)."""
    if table_rows(table) == 0:
        return table
    return take_rows(table, np.argsort(table["t"], kind="stable"))


def write_segment(path: str, table: dict[str, np.ndarray]) -> int:
    """Serialize ``table`` to ``path`` atomically; returns bytes written."""
    columns = [[name, column.dtype.newbyteorder("<").str]
               for name, column in table.items()]
    header = json.dumps({
        "version": SEGMENT_VERSION,
        "columns": columns,
        "rows": table_rows(table),
    }, sort_keys=True, separators=(",", ":")).encode()
    parts = [MAGIC, len(header).to_bytes(8, "little"), header]
    for name, column in table.items():
        parts.append(np.ascontiguousarray(
            column.astype(column.dtype.newbyteorder("<"), copy=False)
        ).tobytes())
    payload = b"".join(parts)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)
    return len(payload)


def read_segment(path: str) -> dict[str, np.ndarray]:
    """Load a segment back into a column table (copies, never mmaps)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if blob[:4] != MAGIC:
        raise CorruptSegmentError(f"{path}: bad magic {blob[:4]!r}")
    header_len = int.from_bytes(blob[4:12], "little")
    try:
        header = json.loads(blob[12:12 + header_len])
    except (ValueError, UnicodeDecodeError) as exc:
        raise CorruptSegmentError(f"{path}: undecodable header") from exc
    if header.get("version") != SEGMENT_VERSION:
        raise CorruptSegmentError(
            f"{path}: segment version {header.get('version')!r} != "
            f"{SEGMENT_VERSION}")
    rows = header["rows"]
    table: dict[str, np.ndarray] = {}
    offset = 12 + header_len
    for name, dtype_str in header["columns"]:
        dtype = np.dtype(dtype_str)
        nbytes = rows * dtype.itemsize
        chunk = blob[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise CorruptSegmentError(
                f"{path}: column {name!r} truncated "
                f"({len(chunk)} of {nbytes} bytes)")
        table[name] = np.frombuffer(chunk, dtype=dtype).copy()
        offset += nbytes
    if offset != len(blob):
        raise CorruptSegmentError(
            f"{path}: {len(blob) - offset} trailing bytes")
    return table
