"""WGS84 geodesy primitives used across the platform.

All angles are degrees unless a function name says otherwise; all distances
are metres; all speeds are knots where AIS semantics apply and m/s internally.
"""

from repro.geo.constants import (
    EARTH_RADIUS_M,
    KNOTS_TO_MPS,
    MPS_TO_KNOTS,
    NAUTICAL_MILE_M,
)
from repro.geo.geodesy import (
    bearing_deg,
    cross_track_distance_m,
    destination_point,
    equirectangular_distance_m,
    haversine_m,
    initial_bearing_deg,
    normalize_lon,
    wrap_bearing_deg,
)
from repro.geo.bbox import BoundingBox
from repro.geo.track import (
    Position,
    cumulative_distances_m,
    downsample_track,
    interpolate_track,
    resample_track,
    track_length_m,
)

__all__ = [
    "EARTH_RADIUS_M",
    "KNOTS_TO_MPS",
    "MPS_TO_KNOTS",
    "NAUTICAL_MILE_M",
    "BoundingBox",
    "Position",
    "bearing_deg",
    "cross_track_distance_m",
    "cumulative_distances_m",
    "destination_point",
    "downsample_track",
    "equirectangular_distance_m",
    "haversine_m",
    "initial_bearing_deg",
    "interpolate_track",
    "normalize_lon",
    "resample_track",
    "track_length_m",
    "wrap_bearing_deg",
]
