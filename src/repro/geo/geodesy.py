"""Great-circle geodesy on the spherical Earth.

These functions back every distance, bearing and dead-reckoning computation
in the simulator, the forecasting models and the event-detection functions.
They accept scalars or numpy arrays (broadcasting applies) and always work
in degrees for angles and metres for distances.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.constants import EARTH_RADIUS_M


def normalize_lon(lon):
    """Wrap a longitude (or array of longitudes) into ``[-180, 180)``."""
    return (np.asarray(lon) + 180.0) % 360.0 - 180.0


def wrap_bearing_deg(bearing):
    """Wrap a bearing (or array of bearings) into ``[0, 360)`` degrees."""
    return np.asarray(bearing) % 360.0


def haversine_m(lat1, lon1, lat2, lon2):
    """Great-circle distance in metres between two points.

    Accepts scalars or broadcastable numpy arrays. Returns a float for scalar
    input, an ``np.ndarray`` otherwise.
    """
    lat1r, lon1r, lat2r, lon2r = (np.radians(np.asarray(v, dtype=float))
                                  for v in (lat1, lon1, lat2, lon2))
    dlat = lat2r - lat1r
    dlon = lon2r - lon1r
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1r) * np.cos(lat2r) * np.sin(dlon / 2.0) ** 2
    d = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if np.ndim(d) == 0:
        return float(d)
    return d


def equirectangular_distance_m(lat1, lon1, lat2, lon2):
    """Fast flat-Earth distance approximation, accurate for short legs.

    Used in hot paths (collision checks between nearby forecast points) where
    separations are a few kilometres at most and the haversine's trigonometry
    would dominate the cost.
    """
    lat1r, lon1r, lat2r, lon2r = (np.radians(np.asarray(v, dtype=float))
                                  for v in (lat1, lon1, lat2, lon2))
    x = (lon2r - lon1r) * np.cos((lat1r + lat2r) / 2.0)
    y = lat2r - lat1r
    d = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
    if np.ndim(d) == 0:
        return float(d)
    return d


def initial_bearing_deg(lat1, lon1, lat2, lon2):
    """Initial great-circle bearing from point 1 to point 2, in ``[0, 360)``."""
    lat1r, lon1r, lat2r, lon2r = (np.radians(np.asarray(v, dtype=float))
                                  for v in (lat1, lon1, lat2, lon2))
    dlon = lon2r - lon1r
    y = np.sin(dlon) * np.cos(lat2r)
    x = np.cos(lat1r) * np.sin(lat2r) - np.sin(lat1r) * np.cos(lat2r) * np.cos(dlon)
    brg = np.degrees(np.arctan2(y, x)) % 360.0
    if np.ndim(brg) == 0:
        return float(brg)
    return brg


#: Alias matching common maritime terminology ("bearing to waypoint").
bearing_deg = initial_bearing_deg


def destination_point(lat, lon, bearing, distance_m):
    """Dead-reckon: the point reached from ``(lat, lon)`` on ``bearing``
    after travelling ``distance_m`` metres along the great circle.

    Returns ``(lat2, lon2)`` as floats for scalar input or arrays otherwise.
    This is the linear-kinematic projection primitive used both by the
    simulator and by the paper's baseline forecasting model.
    """
    latr = np.radians(np.asarray(lat, dtype=float))
    lonr = np.radians(np.asarray(lon, dtype=float))
    brgr = np.radians(np.asarray(bearing, dtype=float))
    delta = np.asarray(distance_m, dtype=float) / EARTH_RADIUS_M

    lat2 = np.arcsin(np.sin(latr) * np.cos(delta) +
                     np.cos(latr) * np.sin(delta) * np.cos(brgr))
    lon2 = lonr + np.arctan2(np.sin(brgr) * np.sin(delta) * np.cos(latr),
                             np.cos(delta) - np.sin(latr) * np.sin(lat2))
    lat2d = np.degrees(lat2)
    lon2d = normalize_lon(np.degrees(lon2))
    if np.ndim(lat2d) == 0:
        return float(lat2d), float(lon2d)
    return lat2d, lon2d


def cross_track_distance_m(lat, lon, lat1, lon1, lat2, lon2):
    """Signed distance in metres from a point to the great circle through
    points 1 and 2 (negative = left of the track).

    Used by the EnvClus* clustering to measure how far a historical position
    deviates from a candidate pathway segment.
    """
    d13 = haversine_m(lat1, lon1, lat, lon) / EARTH_RADIUS_M
    theta13 = np.radians(initial_bearing_deg(lat1, lon1, lat, lon))
    theta12 = np.radians(initial_bearing_deg(lat1, lon1, lat2, lon2))
    xt = np.arcsin(np.sin(d13) * np.sin(theta13 - theta12)) * EARTH_RADIUS_M
    if np.ndim(xt) == 0:
        return float(xt)
    return xt


def midpoint(lat1, lon1, lat2, lon2):
    """Great-circle midpoint of two points, returned as ``(lat, lon)``."""
    lat1r, lon1r, lat2r, lon2r = (math.radians(float(v))
                                  for v in (lat1, lon1, lat2, lon2))
    dlon = lon2r - lon1r
    bx = math.cos(lat2r) * math.cos(dlon)
    by = math.cos(lat2r) * math.sin(dlon)
    latm = math.atan2(math.sin(lat1r) + math.sin(lat2r),
                      math.sqrt((math.cos(lat1r) + bx) ** 2 + by ** 2))
    lonm = lon1r + math.atan2(by, math.cos(lat1r) + bx)
    return math.degrees(latm), float(normalize_lon(math.degrees(lonm)))
