"""Physical constants for maritime geodesy (WGS84 spherical approximation)."""

#: Mean Earth radius in metres (IUGG mean radius, adequate for AIS-scale work).
EARTH_RADIUS_M = 6_371_008.8

#: One international nautical mile in metres.
NAUTICAL_MILE_M = 1_852.0

#: Conversion factor from knots to metres per second.
KNOTS_TO_MPS = NAUTICAL_MILE_M / 3_600.0

#: Conversion factor from metres per second to knots.
MPS_TO_KNOTS = 1.0 / KNOTS_TO_MPS

#: Metres per degree of latitude on the spherical Earth.
METERS_PER_DEG_LAT = 111_194.9266

#: Seconds in common time units, used by simulator and models alike.
MINUTE_S = 60.0
HOUR_S = 3_600.0
DAY_S = 86_400.0
