"""Timestamped position tracks and resampling utilities.

AIS transmissions arrive irregularly; the S-VRF training pipeline needs
fixed-rate targets and the kinematic baseline needs interpolation at
arbitrary horizons. These helpers convert between the two worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg


@dataclass(frozen=True)
class Position:
    """A single timestamped vessel position.

    ``t`` is seconds since an arbitrary epoch; ``sog`` is speed over ground in
    knots and ``cog`` course over ground in degrees — both optional because
    some AIS receivers drop them.
    """

    t: float
    lat: float
    lon: float
    sog: float | None = None
    cog: float | None = None


def _as_arrays(track: Sequence[Position]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    ts = np.array([p.t for p in track], dtype=float)
    lats = np.array([p.lat for p in track], dtype=float)
    lons = np.array([p.lon for p in track], dtype=float)
    return ts, lats, lons


def cumulative_distances_m(track: Sequence[Position]) -> np.ndarray:
    """Cumulative along-track distance at each point, starting at 0."""
    if len(track) == 0:
        return np.zeros(0)
    ts, lats, lons = _as_arrays(track)
    seg = haversine_m(lats[:-1], lons[:-1], lats[1:], lons[1:])
    return np.concatenate([[0.0], np.cumsum(np.atleast_1d(seg))])


def track_length_m(track: Sequence[Position]) -> float:
    """Total along-track length of a position sequence, in metres."""
    if len(track) < 2:
        return 0.0
    return float(cumulative_distances_m(track)[-1])


def interpolate_track(track: Sequence[Position], t: float) -> Position:
    """Position at time ``t`` by great-circle interpolation between fixes.

    ``t`` outside the track's time span is extrapolated from the nearest
    segment (dead-reckoning), which mirrors how ground truth is extended a
    few seconds past the last fix during evaluation.
    """
    if len(track) == 0:
        raise ValueError("cannot interpolate an empty track")
    if len(track) == 1:
        only = track[0]
        return Position(t=t, lat=only.lat, lon=only.lon, sog=only.sog, cog=only.cog)

    ts, _, _ = _as_arrays(track)
    idx = int(np.searchsorted(ts, t, side="right"))
    lo = min(max(idx - 1, 0), len(track) - 2)
    a, b = track[lo], track[lo + 1]
    span = b.t - a.t
    frac = 0.0 if span <= 0 else (t - a.t) / span

    total = haversine_m(a.lat, a.lon, b.lat, b.lon)
    brg = initial_bearing_deg(a.lat, a.lon, b.lat, b.lon) if total > 0 else (a.cog or 0.0)
    lat, lon = destination_point(a.lat, a.lon, brg, total * frac)
    return Position(t=t, lat=lat, lon=lon, sog=a.sog, cog=brg)


def resample_track(track: Sequence[Position], times: Iterable[float]) -> list[Position]:
    """Interpolated positions at each requested timestamp."""
    return [interpolate_track(track, t) for t in times]


def downsample_track(track: Sequence[Position], min_interval_s: float) -> list[Position]:
    """Drop fixes closer than ``min_interval_s`` to the previously kept fix.

    This is the paper's 30-second minimum downsampling rate applied to the
    raw irregular AIS stream (Section 4.2). The first fix is always kept.
    """
    if min_interval_s <= 0:
        return list(track)
    kept: list[Position] = []
    for p in track:
        if not kept or p.t - kept[-1].t >= min_interval_s:
            kept.append(p)
    return kept
