"""Geographic bounding boxes.

The paper defines its evaluation dataset by a WGS84 bounding box covering
Europe, the North Atlantic and adjacent seas; :class:`BoundingBox` is the
reusable form of that definition, used by dataset builders and by the fleet
simulator to constrain scenario areas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.geodesy import normalize_lon


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lat/lon box. ``lon_min`` may exceed ``lon_max`` to
    describe a box crossing the antimeridian."""

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat_min <= self.lat_max <= 90.0):
            raise ValueError(
                f"invalid latitude range [{self.lat_min}, {self.lat_max}]")
        if not (-180.0 <= self.lon_min <= 180.0 and -180.0 <= self.lon_max <= 180.0):
            raise ValueError(
                f"longitudes must be in [-180, 180], got [{self.lon_min}, {self.lon_max}]")

    @property
    def crosses_antimeridian(self) -> bool:
        return self.lon_min > self.lon_max

    def contains(self, lat: float, lon: float) -> bool:
        """True if the point lies inside the box (inclusive bounds)."""
        if not self.lat_min <= lat <= self.lat_max:
            return False
        lon = float(normalize_lon(lon))
        if self.crosses_antimeridian:
            return lon >= self.lon_min or lon <= self.lon_max
        return self.lon_min <= lon <= self.lon_max

    def sample(self, rng: random.Random) -> tuple[float, float]:
        """Draw a uniform random point ``(lat, lon)`` inside the box."""
        lat = rng.uniform(self.lat_min, self.lat_max)
        if self.crosses_antimeridian:
            span = (180.0 - self.lon_min) + (self.lon_max + 180.0)
            off = rng.uniform(0.0, span)
            lon = float(normalize_lon(self.lon_min + off))
        else:
            lon = rng.uniform(self.lon_min, self.lon_max)
        return lat, lon

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy grown by ``margin_deg`` degrees on every side (clamped)."""
        return BoundingBox(
            lat_min=max(-90.0, self.lat_min - margin_deg),
            lat_max=min(90.0, self.lat_max + margin_deg),
            lon_min=max(-180.0, self.lon_min - margin_deg),
            lon_max=min(180.0, self.lon_max + margin_deg),
        )


#: The evaluation area of the paper's S-VRF dataset (Section 6.1): Europe,
#: the North Atlantic, the Barents, Caspian and Red Seas and the Persian Gulf.
PAPER_EVAL_BBOX = BoundingBox(lat_min=24.0, lat_max=78.9862,
                              lon_min=-41.99983, lon_max=68.9986)

#: The Aegean Sea, where the paper's collision-forecasting dataset lives.
AEGEAN_BBOX = BoundingBox(lat_min=35.0, lat_max=41.0, lon_min=22.5, lon_max=27.5)
