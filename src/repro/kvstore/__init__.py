"""An in-memory key-value store (the platform's Redis substitute).

The writer actor persists actor states here and the middleware API reads
them back for the UI (Section 3). The store supports the Redis surface the
platform touches: strings, hashes, lists, sorted sets, key TTLs and pub/sub
channels — all thread-safe on one coarse lock.

Durability (opt-in) lives in :mod:`repro.kvstore.persistence`: an
append-only op journal compacted into snapshot files, Redis AOF/RDB
style. See PERSISTENCE.md for the formats and recovery semantics.
"""

from repro.kvstore.store import KeyValueStore, WrongTypeError
from repro.kvstore.persistence import (
    CorruptPersistenceError,
    OpJournal,
    StorePersistence,
)
from repro.kvstore.pubsub import PubSub, Subscription

__all__ = [
    "CorruptPersistenceError",
    "KeyValueStore",
    "OpJournal",
    "PubSub",
    "StorePersistence",
    "Subscription",
    "WrongTypeError",
]
