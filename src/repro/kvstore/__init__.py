"""An in-memory key-value store (the platform's Redis substitute).

The writer actor persists actor states here and the middleware API reads
them back for the UI (Section 3). The store supports the Redis surface the
platform touches: strings, hashes, lists, sorted sets, key TTLs and pub/sub
channels — all thread-safe on one coarse lock.
"""

from repro.kvstore.store import KeyValueStore, WrongTypeError
from repro.kvstore.pubsub import PubSub, Subscription

__all__ = [
    "KeyValueStore",
    "PubSub",
    "Subscription",
    "WrongTypeError",
]
