"""Redis-style durability for the key-value store.

Two files in a directory give the store the same recovery story Redis
gets from AOF + RDB:

* ``journal.log`` — an append-only op journal. Every mutating command is
  serialized (pickle-framed, sequence-numbered) as it executes, so the
  tail of history since the last snapshot is always on disk.
* ``snapshot.pkl`` — a point-in-time snapshot of the full store state,
  written by *compaction* (explicit :meth:`StorePersistence.compact` or
  automatically every ``compact_every_ops`` journaled ops).

Recovery (:meth:`StorePersistence.restore_into`) loads the snapshot and
replays only the journal entries newer than it. Entries are sequence
numbered and the snapshot records the last sequence it contains, so a
crash *between* writing the snapshot and truncating the journal is safe:
stale entries (seq <= snapshot seq) are skipped on replay, which keeps
non-idempotent ops (``rpush``, ``incr``) from double-applying. The
snapshot itself is written to a temp file and atomically renamed.

The journal stores public-method calls ``(seq, op, args, kwargs)`` and
replay simply re-invokes them, so the journal format never drifts from
the store's semantics. Callers pass explicit ``now`` values into every
command (the store's design), making replay deterministic: expiry
decisions depend only on journaled arguments, never on wall time.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:
    from repro.kvstore.store import KeyValueStore

SNAPSHOT_FILE = "snapshot.pkl"
JOURNAL_FILE = "journal.log"

#: Snapshot/journal format version, bumped on incompatible layout change.
FORMAT_VERSION = 1


class CorruptPersistenceError(RuntimeError):
    """A snapshot or journal file could not be decoded."""


def _atomic_write(path: str, payload: bytes, fsync: bool) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)


class OpJournal:
    """The append-only op log: pickle frames of ``(seq, op, args, kwargs)``.

    A torn final frame (crash mid-append) is tolerated: replay stops at
    the first undecodable frame instead of failing recovery.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._fh = open(path, "ab")

    def append(self, seq: int, op: str, args: tuple, kwargs: dict) -> None:
        pickle.dump((seq, op, args, kwargs), self._fh,
                    protocol=pickle.HIGHEST_PROTOCOL)
        self._fh.flush()  # every op reaches the OS before the call returns
        if self.fsync:
            os.fsync(self._fh.fileno())

    def entries(self) -> Iterator[tuple[int, str, tuple, dict]]:
        self._fh.flush()
        with open(self.path, "rb") as fh:
            while True:
                try:
                    entry = pickle.load(fh)
                except EOFError:
                    return
                except (pickle.UnpicklingError, AttributeError, ValueError):
                    return  # torn tail frame from a mid-append crash
                yield entry

    def entries_after(self, seq: int) -> Iterator[tuple[int, str, tuple, dict]]:
        """Entries strictly newer than ``seq`` (the warehouse compactor's
        tailing API: pass the last sequence your manifest covers)."""
        for entry in self.entries():
            if entry[0] > seq:
                yield entry

    def truncate(self) -> None:
        """Drop every entry (called after a snapshot made them redundant)."""
        self._fh.close()
        self._fh = open(self.path, "wb")

    @property
    def size_bytes(self) -> int:
        self._fh.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        self._fh.flush()
        self._fh.close()


class StorePersistence:
    """Directory-backed journal + snapshot pair for one store.

    Attach with ``KeyValueStore(persistence=...)`` or
    :meth:`KeyValueStore.bind_persistence`; binding restores any existing
    on-disk state first, then journals every subsequent mutation.
    """

    def __init__(self, directory: str,
                 compact_every_ops: int = 10_000,
                 fsync: bool = False) -> None:
        if compact_every_ops < 0:
            raise ValueError("compact_every_ops must be non-negative")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.compact_every_ops = compact_every_ops
        self.fsync = fsync
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILE)
        self.journal = OpJournal(os.path.join(directory, JOURNAL_FILE),
                                 fsync=fsync)
        self._lock = threading.RLock()
        #: Monotonic sequence of the last journaled/snapshotted op.
        self._seq = 0
        #: Ops journaled since the last compaction.
        self._ops_since_compact = 0
        self.compactions = 0
        self.ops_journaled = 0
        self.ops_replayed = 0

    @property
    def seq(self) -> int:
        return self._seq

    # -- write path -------------------------------------------------------------

    def record(self, store: "KeyValueStore", op: str,
               args: tuple, kwargs: dict) -> None:
        """Journal one mutating op (called by the store, under its lock)."""
        with self._lock:
            self._seq += 1
            self.journal.append(self._seq, op, args, kwargs)
            self.ops_journaled += 1
            self._ops_since_compact += 1
            if (self.compact_every_ops
                    and self._ops_since_compact >= self.compact_every_ops):
                self.compact(store)

    def compact(self, store: "KeyValueStore") -> None:
        """Fold the journal into a fresh snapshot and truncate it.

        Ordering is crash-safe: the snapshot (stamped with the journal's
        last sequence) lands atomically *before* the journal is truncated,
        so the worst a crash in between can leave is a journal whose
        entries are all older than the snapshot — skipped on restore.
        """
        with self._lock:
            state = store.snapshot_state()
            payload = pickle.dumps(
                {"version": FORMAT_VERSION, "seq": self._seq, **state},
                protocol=pickle.HIGHEST_PROTOCOL)
            _atomic_write(self.snapshot_path, payload, self.fsync)
            self.journal.truncate()
            self._ops_since_compact = 0
            self.compactions += 1

    # -- read path (analytics consumers) ----------------------------------------

    def load_snapshot(self) -> dict[str, Any] | None:
        """Decode the on-disk snapshot without a store (``None`` if absent).

        Readers that bootstrap from a checkpoint — e.g. the warehouse
        compactor after the journal was compacted away — get the snapshot
        dict including its ``seq`` stamp, then tail
        :meth:`iter_ops` from that stamp.
        """
        with self._lock:
            if not os.path.exists(self.snapshot_path):
                return None
            with open(self.snapshot_path, "rb") as fh:
                try:
                    snapshot = pickle.load(fh)
                except (pickle.UnpicklingError, EOFError) as exc:
                    raise CorruptPersistenceError(
                        f"unreadable snapshot {self.snapshot_path}") from exc
            if snapshot.get("version") != FORMAT_VERSION:
                raise CorruptPersistenceError(
                    f"snapshot format {snapshot.get('version')!r} != "
                    f"{FORMAT_VERSION}")
            return snapshot

    def iter_ops(self, after_seq: int = 0
                 ) -> Iterator[tuple[int, str, tuple, dict]]:
        """Journal entries with ``seq > after_seq``, oldest first.

        This is the journal-iteration API downstream consumers tail; it
        never mutates persistence state, so it is safe to call while the
        store keeps journaling (entries appended after the iterator's
        snapshot of the file simply appear on the next call).
        """
        return self.journal.entries_after(after_seq)

    # -- recovery ---------------------------------------------------------------

    def restore_into(self, store: "KeyValueStore") -> int:
        """Load snapshot + journal tail into ``store``; returns the number
        of journal ops replayed. The store must not be journaling to this
        persistence yet (binding order is handled by
        :meth:`KeyValueStore.bind_persistence`)."""
        with self._lock:
            snap_seq = 0
            if os.path.exists(self.snapshot_path):
                with open(self.snapshot_path, "rb") as fh:
                    try:
                        snapshot = pickle.load(fh)
                    except (pickle.UnpicklingError, EOFError) as exc:
                        raise CorruptPersistenceError(
                            f"unreadable snapshot {self.snapshot_path}"
                        ) from exc
                if snapshot.get("version") != FORMAT_VERSION:
                    raise CorruptPersistenceError(
                        f"snapshot format {snapshot.get('version')!r} != "
                        f"{FORMAT_VERSION}")
                snap_seq = snapshot["seq"]
                store.restore_state(snapshot)
            replayed = 0
            last_seq = snap_seq
            for seq, op, args, kwargs in self.journal.entries():
                last_seq = seq
                if seq <= snap_seq:
                    continue  # already folded into the snapshot
                getattr(store, op)(*args, **kwargs)
                replayed += 1
            self._seq = max(self._seq, last_seq)
            self.ops_replayed += replayed
            return replayed

    def close(self) -> None:
        self.journal.close()
