"""Publish/subscribe channels over the KV store's lock discipline.

The middleware uses pub/sub to push event notifications (forecast collisions,
proximity alerts) to the UI without polling. Subscribers receive messages
into unbounded per-subscription queues; delivery is fan-out to every
subscription whose pattern matches the channel.
"""

from __future__ import annotations

import fnmatch
import threading
from collections import deque
from typing import Any


class Subscription:
    """A handle holding the messages delivered to one subscriber."""

    def __init__(self, pattern: str, pubsub: "PubSub") -> None:
        self.pattern = pattern
        self._queue: deque[tuple[str, Any]] = deque()
        self._pubsub = pubsub
        self._closed = False

    def get_all(self) -> list[tuple[str, Any]]:
        """Drain and return all pending ``(channel, message)`` pairs."""
        with self._pubsub._lock:
            out = list(self._queue)
            self._queue.clear()
            return out

    def get(self) -> tuple[str, Any] | None:
        """Pop the oldest pending message, or ``None``."""
        with self._pubsub._lock:
            return self._queue.popleft() if self._queue else None

    def pending(self) -> int:
        with self._pubsub._lock:
            return len(self._queue)

    def close(self) -> None:
        self._pubsub.unsubscribe(self)


class PubSub:
    """Channel registry with glob-pattern subscriptions."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subs: list[Subscription] = []

    def subscribe(self, pattern: str) -> Subscription:
        """Subscribe to channels matching a glob ``pattern`` (e.g.
        ``events:*``)."""
        with self._lock:
            sub = Subscription(pattern, self)
            self._subs.append(sub)
            return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
            sub._closed = True

    def publish(self, channel: str, message: Any) -> int:
        """Deliver to all matching subscriptions; returns receiver count."""
        with self._lock:
            count = 0
            for sub in self._subs:
                if fnmatch.fnmatch(channel, sub.pattern):
                    sub._queue.append((channel, message))
                    count += 1
            return count

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)
