"""Publish/subscribe channels over the KV store's lock discipline.

The middleware uses pub/sub to push event notifications (forecast collisions,
proximity alerts) to the UI without polling, and the serving tier rides the
same mechanism for its read-replica feed (channel ``repl:*``, see
SERVING.md). Delivery is fan-out to every subscription whose glob pattern
matches the channel.

Subscriptions may be **bounded**: past ``maxlen`` pending messages the
oldest pending message is dropped and the subscription's ``dropped``
counter increments — a slow consumer loses its tail, never blocks the
publisher, and can see exactly how much it lost. ``get(timeout=...)``
blocks on a condition variable until a message arrives, so pull-style
consumers (the replica feed pump) need no polling loop.
"""

from __future__ import annotations

import fnmatch
import threading
from collections import deque
from typing import Any


class Subscription:
    """A handle holding the messages delivered to one subscriber.

    ``maxlen=None`` keeps the historical unbounded behaviour; with a bound,
    overflow drops the *oldest* pending message (the newest state of the
    world always gets through) and counts it in :attr:`dropped`.
    """

    def __init__(self, pattern: str, pubsub: "PubSub",
                 maxlen: int | None = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError("maxlen must be >= 1 (or None for unbounded)")
        self.pattern = pattern
        self.maxlen = maxlen
        self._queue: deque[tuple[str, Any]] = deque()
        self._pubsub = pubsub
        self._closed = False
        #: Messages discarded by the drop-oldest overflow policy.
        self.dropped = 0
        # Shares the pub/sub lock, so publishers notify under the same
        # lock they deliver under — no wakeup can be lost between the
        # emptiness check and the wait.
        self._ready = threading.Condition(pubsub._lock)

    def _deliver(self, channel: str, message: Any) -> None:
        """Append one message (caller holds the pub/sub lock)."""
        if self.maxlen is not None and len(self._queue) >= self.maxlen:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append((channel, message))
        self._ready.notify_all()

    def get_all(self) -> list[tuple[str, Any]]:
        """Drain and return all pending ``(channel, message)`` pairs."""
        with self._pubsub._lock:
            out = list(self._queue)
            self._queue.clear()
            return out

    def get(self, timeout: float | None = None) -> tuple[str, Any] | None:
        """Pop the oldest pending message, or ``None``.

        With a ``timeout`` the call blocks until a message arrives, the
        subscription is closed, or ``timeout`` seconds pass (returning
        ``None`` in the latter two cases). ``timeout=None`` preserves the
        historical non-blocking behaviour.
        """
        with self._ready:
            if timeout is not None and not self._queue and not self._closed:
                self._ready.wait_for(
                    lambda: bool(self._queue) or self._closed, timeout)
            return self._queue.popleft() if self._queue else None

    def pending(self) -> int:
        with self._pubsub._lock:
            return len(self._queue)

    def drop_count(self) -> int:
        """Messages lost to the overflow policy so far."""
        with self._pubsub._lock:
            return self.dropped

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._pubsub.unsubscribe(self)


class PubSub:
    """Channel registry with glob-pattern subscriptions."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subs: list[Subscription] = []

    def subscribe(self, pattern: str,
                  maxlen: int | None = None) -> Subscription:
        """Subscribe to channels matching a glob ``pattern`` (e.g.
        ``events:*``), optionally bounding the pending queue."""
        with self._lock:
            sub = Subscription(pattern, self, maxlen=maxlen)
            self._subs.append(sub)
            return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
            sub._closed = True
            sub._ready.notify_all()  # release any blocked get()

    def publish(self, channel: str, message: Any) -> int:
        """Deliver to all matching subscriptions; returns receiver count."""
        with self._lock:
            count = 0
            for sub in self._subs:
                if fnmatch.fnmatch(channel, sub.pattern):
                    sub._deliver(channel, message)
                    count += 1
            return count

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)
