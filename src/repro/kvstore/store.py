"""Typed key-value store with TTL expiry.

Time is injected by the caller (the platform passes its stream clock), so
expiry is deterministic in tests and benchmarks. Commands mirror the small
Redis subset the middleware uses: GET/SET/DEL, HSET/HGET/HGETALL,
LPUSH/RPUSH/LRANGE, ZADD/ZRANGE/ZRANGEBYSCORE, EXPIRE/TTL, KEYS/SCAN.

Durability is optional: bind a
:class:`~repro.kvstore.persistence.StorePersistence` and every mutating
command is appended to an op journal, periodically compacted into a
snapshot file (see ``persistence.py`` / PERSISTENCE.md). ``save``/``load``
give one-shot snapshot files without a journal.
"""

from __future__ import annotations

import fnmatch
import pickle
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.kvstore.persistence import StorePersistence


class WrongTypeError(TypeError):
    """Raised when a command targets a key holding another value type
    (Redis's ``WRONGTYPE`` error)."""


def _copy_value(value: Any) -> Any:
    """Shallow-copy a stored container so snapshots never alias live state."""
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    return value


class KeyValueStore:
    """Thread-safe in-memory store with strings, hashes, lists and zsets."""

    def __init__(self, persistence: "StorePersistence | None" = None) -> None:
        self._lock = threading.RLock()
        self._data: dict[str, Any] = {}
        self._expiry: dict[str, float] = {}
        self._persistence: "StorePersistence | None" = None
        if persistence is not None:
            self.bind_persistence(persistence)

    # -- durability --------------------------------------------------------------

    def bind_persistence(self, persistence: "StorePersistence") -> int:
        """Restore any on-disk state, then journal every later mutation.
        Returns the number of journal ops replayed during restore."""
        with self._lock:
            self._persistence = None  # replay must not re-journal
            replayed = persistence.restore_into(self)
            self._persistence = persistence
            return replayed

    @property
    def persistence(self) -> "StorePersistence | None":
        return self._persistence

    def _journal(self, op: str, *args: Any, **kwargs: Any) -> None:
        """Record one mutating op (no-op unless persistence is bound).
        Always called with the store lock held, *after* the mutation
        succeeded — failed commands (wrong type) are never journaled."""
        if self._persistence is not None:
            self._persistence.record(self, op, args, kwargs)

    def compact(self) -> None:
        """Explicitly fold the journal into a snapshot (bound stores only)."""
        with self._lock:
            if self._persistence is None:
                raise RuntimeError("no persistence bound to this store")
            self._persistence.compact(self)

    def snapshot_state(self) -> dict[str, Any]:
        """The full store state as a plain dict (for snapshots/transfer)."""
        with self._lock:
            return {"data": {k: _copy_value(v) for k, v in self._data.items()},
                    "expiry": dict(self._expiry)}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Replace the store contents with a :meth:`snapshot_state` dict."""
        with self._lock:
            self._data = {k: _copy_value(v)
                          for k, v in state["data"].items()}
            self._expiry = dict(state["expiry"])

    def merge_state(self, state: dict[str, Any], now: float = 0.0) -> int:
        """Fold another store's :meth:`snapshot_state` into this one.

        Used when a node retires gracefully and a surviving peer absorbs
        its durably written outputs: lists append, hash/zset members fill
        in only where this store has no entry for the field (the absorber's
        own rows are at least as new — post-migration writes land here),
        and strings set only if absent. Runs through the public commands so
        a bound journal stays coherent. Returns the number of keys merged.
        """
        merged = 0
        for key, value in state["data"].items():
            if isinstance(value, list):
                if value:
                    self.rpush(key, *value, now=now)
                    merged += 1
            elif isinstance(value, dict):
                if not value:
                    continue
                with self._lock:
                    current = self._typed(key, dict, create=True, now=now)
                    fresh = {f: v for f, v in value.items()
                             if f not in current}
                if fresh:
                    self.hmset(key, fresh, now=now)
                    merged += 1
            else:
                with self._lock:
                    self._purge_if_expired(key, now)
                    absent = key not in self._data
                if absent:
                    self.set(key, value, now=now)
                    merged += 1
        return merged

    def save(self, path: str) -> None:
        """Write a standalone snapshot file (atomic rename)."""
        from repro.kvstore.persistence import FORMAT_VERSION, _atomic_write
        payload = pickle.dumps(
            {"version": FORMAT_VERSION, "seq": 0, **self.snapshot_state()},
            protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(path, payload, fsync=False)

    @classmethod
    def load(cls, path: str) -> "KeyValueStore":
        """Build a store from a :meth:`save` snapshot file."""
        with open(path, "rb") as fh:
            snapshot = pickle.load(fh)
        store = cls()
        store.restore_state(snapshot)
        return store

    def dump(self, now: float = 0.0) -> dict[str, Any]:
        """Canonical observable state at time ``now``: expired keys purged,
        values copied. Two stores are behaviourally equivalent iff their
        dumps match — the comparison the persistence round-trip tests use
        (replaying a journal skips read-triggered purges, so raw ``_data``
        may differ while observable state does not)."""
        with self._lock:
            for key in list(self._data):
                self._purge_if_expired(key, now)
            return self.snapshot_state()

    # -- expiry ----------------------------------------------------------------

    def _purge_if_expired(self, key: str, now: float) -> None:
        deadline = self._expiry.get(key)
        if deadline is not None and now >= deadline:
            self._data.pop(key, None)
            self._expiry.pop(key, None)

    def expire(self, key: str, ttl_s: float, now: float = 0.0) -> bool:
        """Set a time-to-live on a key. Returns False if the key is absent."""
        with self._lock:
            self._purge_if_expired(key, now)
            if key not in self._data:
                return False
            self._expiry[key] = now + ttl_s
            self._journal("expire", key, ttl_s, now)
            return True

    def ttl(self, key: str, now: float = 0.0) -> float | None:
        """Remaining TTL in seconds, or ``None`` if the key has no expiry.

        Returns ``-1.0`` for a missing key (mirroring Redis's -2 semantics
        loosely; the platform only checks for None/negative).
        """
        with self._lock:
            self._purge_if_expired(key, now)
            if key not in self._data:
                return -1.0
            deadline = self._expiry.get(key)
            return None if deadline is None else deadline - now

    # -- helpers -----------------------------------------------------------------

    def _typed(self, key: str, expect: type, create: bool, now: float) -> Any:
        self._purge_if_expired(key, now)
        value = self._data.get(key)
        if value is None:
            if not create:
                return None
            value = expect()
            self._data[key] = value
        elif not isinstance(value, expect):
            raise WrongTypeError(
                f"key {key!r} holds {type(value).__name__}, "
                f"expected {expect.__name__}")
        return value

    # -- strings ------------------------------------------------------------------

    def set(self, key: str, value: str, now: float = 0.0,
            ttl_s: float | None = None) -> None:
        with self._lock:
            self._data[key] = str(value)
            if ttl_s is None:
                self._expiry.pop(key, None)
            else:
                self._expiry[key] = now + ttl_s
            self._journal("set", key, str(value), now, ttl_s)

    def get(self, key: str, now: float = 0.0) -> str | None:
        with self._lock:
            self._purge_if_expired(key, now)
            value = self._data.get(key)
            if value is None:
                return None
            if not isinstance(value, str):
                raise WrongTypeError(f"key {key!r} holds {type(value).__name__}")
            return value

    def incr(self, key: str, by: int = 1, now: float = 0.0) -> int:
        with self._lock:
            self._purge_if_expired(key, now)
            raw = self._data.get(key, "0")
            if not isinstance(raw, str):
                raise WrongTypeError(f"key {key!r} holds {type(raw).__name__}")
            value = int(raw) + by
            self._data[key] = str(value)
            self._journal("incr", key, by, now)
            return value

    def delete(self, *keys: str) -> int:
        with self._lock:
            removed = 0
            for key in keys:
                if key in self._data:
                    del self._data[key]
                    self._expiry.pop(key, None)
                    removed += 1
            if removed:
                self._journal("delete", *keys)
            return removed

    def exists(self, key: str, now: float = 0.0) -> bool:
        with self._lock:
            self._purge_if_expired(key, now)
            return key in self._data

    # -- hashes -------------------------------------------------------------------

    def hset(self, key: str, field: str, value: Any, now: float = 0.0) -> None:
        with self._lock:
            self._typed(key, dict, create=True, now=now)[field] = value
            self._journal("hset", key, field, value, now)

    def hmset(self, key: str, mapping: dict[str, Any], now: float = 0.0) -> None:
        with self._lock:
            self._typed(key, dict, create=True, now=now).update(mapping)
            self._journal("hmset", key, dict(mapping), now)

    def hget(self, key: str, field: str, now: float = 0.0) -> Any | None:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            return None if h is None else h.get(field)

    def hgetall(self, key: str, now: float = 0.0) -> dict[str, Any]:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            return {} if h is None else dict(h)

    def hdel(self, key: str, *fields: str, now: float = 0.0) -> int:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            if h is None:
                return 0
            removed = 0
            for f in fields:
                if f in h:
                    del h[f]
                    removed += 1
            if removed:
                self._journal("hdel", key, *fields, now=now)
            return removed

    def hlen(self, key: str, now: float = 0.0) -> int:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            return 0 if h is None else len(h)

    # -- lists --------------------------------------------------------------------

    def rpush(self, key: str, *values: Any, now: float = 0.0) -> int:
        with self._lock:
            lst = self._typed(key, list, create=True, now=now)
            lst.extend(values)
            self._journal("rpush", key, *values, now=now)
            return len(lst)

    def lpush(self, key: str, *values: Any, now: float = 0.0) -> int:
        with self._lock:
            lst = self._typed(key, list, create=True, now=now)
            for v in values:
                lst.insert(0, v)
            self._journal("lpush", key, *values, now=now)
            return len(lst)

    def lrange(self, key: str, start: int, stop: int, now: float = 0.0) -> list:
        """Inclusive range with Redis index semantics (-1 = last element)."""
        with self._lock:
            lst = self._typed(key, list, create=False, now=now)
            if lst is None:
                return []
            n = len(lst)
            if start < 0:
                start += n
            if stop < 0:
                stop += n
            return lst[max(start, 0):stop + 1]

    def llen(self, key: str, now: float = 0.0) -> int:
        with self._lock:
            lst = self._typed(key, list, create=False, now=now)
            return 0 if lst is None else len(lst)

    def ltrim(self, key: str, start: int, stop: int, now: float = 0.0) -> None:
        with self._lock:
            lst = self._typed(key, list, create=False, now=now)
            if lst is None:
                return
            # Journal the caller's indices: normalized ones (e.g. a stop
            # clamped to -1) would be re-normalized on replay.
            self._journal("ltrim", key, start, stop, now)
            n = len(lst)
            if start < 0:
                start += n
            if stop < 0:
                stop += n
            lst[:] = lst[max(start, 0):stop + 1]

    # -- sorted sets -----------------------------------------------------------------

    def zadd(self, key: str, score: float, member: str, now: float = 0.0) -> None:
        with self._lock:
            self._typed(key, dict, create=True, now=now)[member] = float(score)
            self._journal("zadd", key, float(score), member, now)

    def zscore(self, key: str, member: str, now: float = 0.0) -> float | None:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            return None if z is None else z.get(member)

    def zcard(self, key: str, now: float = 0.0) -> int:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            return 0 if z is None else len(z)

    def zrange(self, key: str, start: int, stop: int, now: float = 0.0
               ) -> list[tuple[str, float]]:
        """Members ordered by (score, member), inclusive index range."""
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            if z is None:
                return []
            ordered = sorted(z.items(), key=lambda kv: (kv[1], kv[0]))
            n = len(ordered)
            if start < 0:
                start += n
            if stop < 0:
                stop += n
            return ordered[max(start, 0):stop + 1]

    def zrangebyscore(self, key: str, lo: float, hi: float, now: float = 0.0
                      ) -> list[tuple[str, float]]:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            if z is None:
                return []
            return sorted(((m, s) for m, s in z.items() if lo <= s <= hi),
                          key=lambda kv: (kv[1], kv[0]))

    def zremrangebyscore(self, key: str, lo: float, hi: float,
                         now: float = 0.0) -> int:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            if z is None:
                return 0
            doomed = [m for m, s in z.items() if lo <= s <= hi]
            for m in doomed:
                del z[m]
            if doomed:
                self._journal("zremrangebyscore", key, lo, hi, now)
            return len(doomed)

    # -- keyspace ----------------------------------------------------------------------

    def keys(self, pattern: str = "*", now: float = 0.0) -> list[str]:
        with self._lock:
            for key in list(self._data):
                self._purge_if_expired(key, now)
            return sorted(k for k in self._data if fnmatch.fnmatch(k, pattern))

    def dbsize(self, now: float = 0.0) -> int:
        with self._lock:
            for key in list(self._data):
                self._purge_if_expired(key, now)
            return len(self._data)

    def flushall(self) -> None:
        with self._lock:
            self._data.clear()
            self._expiry.clear()
            self._journal("flushall")
