"""Typed key-value store with TTL expiry.

Time is injected by the caller (the platform passes its stream clock), so
expiry is deterministic in tests and benchmarks. Commands mirror the small
Redis subset the middleware uses: GET/SET/DEL, HSET/HGET/HGETALL,
LPUSH/RPUSH/LRANGE, ZADD/ZRANGE/ZRANGEBYSCORE, EXPIRE/TTL, KEYS/SCAN.
"""

from __future__ import annotations

import fnmatch
import threading
from typing import Any


class WrongTypeError(TypeError):
    """Raised when a command targets a key holding another value type
    (Redis's ``WRONGTYPE`` error)."""


class KeyValueStore:
    """Thread-safe in-memory store with strings, hashes, lists and zsets."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._data: dict[str, Any] = {}
        self._expiry: dict[str, float] = {}

    # -- expiry ----------------------------------------------------------------

    def _purge_if_expired(self, key: str, now: float) -> None:
        deadline = self._expiry.get(key)
        if deadline is not None and now >= deadline:
            self._data.pop(key, None)
            self._expiry.pop(key, None)

    def expire(self, key: str, ttl_s: float, now: float = 0.0) -> bool:
        """Set a time-to-live on a key. Returns False if the key is absent."""
        with self._lock:
            self._purge_if_expired(key, now)
            if key not in self._data:
                return False
            self._expiry[key] = now + ttl_s
            return True

    def ttl(self, key: str, now: float = 0.0) -> float | None:
        """Remaining TTL in seconds, or ``None`` if the key has no expiry.

        Returns ``-1.0`` for a missing key (mirroring Redis's -2 semantics
        loosely; the platform only checks for None/negative).
        """
        with self._lock:
            self._purge_if_expired(key, now)
            if key not in self._data:
                return -1.0
            deadline = self._expiry.get(key)
            return None if deadline is None else deadline - now

    # -- helpers -----------------------------------------------------------------

    def _typed(self, key: str, expect: type, create: bool, now: float) -> Any:
        self._purge_if_expired(key, now)
        value = self._data.get(key)
        if value is None:
            if not create:
                return None
            value = expect()
            self._data[key] = value
        elif not isinstance(value, expect):
            raise WrongTypeError(
                f"key {key!r} holds {type(value).__name__}, "
                f"expected {expect.__name__}")
        return value

    # -- strings ------------------------------------------------------------------

    def set(self, key: str, value: str, now: float = 0.0,
            ttl_s: float | None = None) -> None:
        with self._lock:
            self._data[key] = str(value)
            if ttl_s is None:
                self._expiry.pop(key, None)
            else:
                self._expiry[key] = now + ttl_s

    def get(self, key: str, now: float = 0.0) -> str | None:
        with self._lock:
            self._purge_if_expired(key, now)
            value = self._data.get(key)
            if value is None:
                return None
            if not isinstance(value, str):
                raise WrongTypeError(f"key {key!r} holds {type(value).__name__}")
            return value

    def incr(self, key: str, by: int = 1, now: float = 0.0) -> int:
        with self._lock:
            self._purge_if_expired(key, now)
            raw = self._data.get(key, "0")
            if not isinstance(raw, str):
                raise WrongTypeError(f"key {key!r} holds {type(raw).__name__}")
            value = int(raw) + by
            self._data[key] = str(value)
            return value

    def delete(self, *keys: str) -> int:
        with self._lock:
            removed = 0
            for key in keys:
                if key in self._data:
                    del self._data[key]
                    self._expiry.pop(key, None)
                    removed += 1
            return removed

    def exists(self, key: str, now: float = 0.0) -> bool:
        with self._lock:
            self._purge_if_expired(key, now)
            return key in self._data

    # -- hashes -------------------------------------------------------------------

    def hset(self, key: str, field: str, value: Any, now: float = 0.0) -> None:
        with self._lock:
            self._typed(key, dict, create=True, now=now)[field] = value

    def hmset(self, key: str, mapping: dict[str, Any], now: float = 0.0) -> None:
        with self._lock:
            self._typed(key, dict, create=True, now=now).update(mapping)

    def hget(self, key: str, field: str, now: float = 0.0) -> Any | None:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            return None if h is None else h.get(field)

    def hgetall(self, key: str, now: float = 0.0) -> dict[str, Any]:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            return {} if h is None else dict(h)

    def hdel(self, key: str, *fields: str, now: float = 0.0) -> int:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            if h is None:
                return 0
            removed = 0
            for f in fields:
                if f in h:
                    del h[f]
                    removed += 1
            return removed

    def hlen(self, key: str, now: float = 0.0) -> int:
        with self._lock:
            h = self._typed(key, dict, create=False, now=now)
            return 0 if h is None else len(h)

    # -- lists --------------------------------------------------------------------

    def rpush(self, key: str, *values: Any, now: float = 0.0) -> int:
        with self._lock:
            lst = self._typed(key, list, create=True, now=now)
            lst.extend(values)
            return len(lst)

    def lpush(self, key: str, *values: Any, now: float = 0.0) -> int:
        with self._lock:
            lst = self._typed(key, list, create=True, now=now)
            for v in values:
                lst.insert(0, v)
            return len(lst)

    def lrange(self, key: str, start: int, stop: int, now: float = 0.0) -> list:
        """Inclusive range with Redis index semantics (-1 = last element)."""
        with self._lock:
            lst = self._typed(key, list, create=False, now=now)
            if lst is None:
                return []
            n = len(lst)
            if start < 0:
                start += n
            if stop < 0:
                stop += n
            return lst[max(start, 0):stop + 1]

    def llen(self, key: str, now: float = 0.0) -> int:
        with self._lock:
            lst = self._typed(key, list, create=False, now=now)
            return 0 if lst is None else len(lst)

    def ltrim(self, key: str, start: int, stop: int, now: float = 0.0) -> None:
        with self._lock:
            lst = self._typed(key, list, create=False, now=now)
            if lst is None:
                return
            n = len(lst)
            if start < 0:
                start += n
            if stop < 0:
                stop += n
            lst[:] = lst[max(start, 0):stop + 1]

    # -- sorted sets -----------------------------------------------------------------

    def zadd(self, key: str, score: float, member: str, now: float = 0.0) -> None:
        with self._lock:
            self._typed(key, dict, create=True, now=now)[member] = float(score)

    def zscore(self, key: str, member: str, now: float = 0.0) -> float | None:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            return None if z is None else z.get(member)

    def zcard(self, key: str, now: float = 0.0) -> int:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            return 0 if z is None else len(z)

    def zrange(self, key: str, start: int, stop: int, now: float = 0.0
               ) -> list[tuple[str, float]]:
        """Members ordered by (score, member), inclusive index range."""
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            if z is None:
                return []
            ordered = sorted(z.items(), key=lambda kv: (kv[1], kv[0]))
            n = len(ordered)
            if start < 0:
                start += n
            if stop < 0:
                stop += n
            return ordered[max(start, 0):stop + 1]

    def zrangebyscore(self, key: str, lo: float, hi: float, now: float = 0.0
                      ) -> list[tuple[str, float]]:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            if z is None:
                return []
            return sorted(((m, s) for m, s in z.items() if lo <= s <= hi),
                          key=lambda kv: (kv[1], kv[0]))

    def zremrangebyscore(self, key: str, lo: float, hi: float,
                         now: float = 0.0) -> int:
        with self._lock:
            z = self._typed(key, dict, create=False, now=now)
            if z is None:
                return 0
            doomed = [m for m, s in z.items() if lo <= s <= hi]
            for m in doomed:
                del z[m]
            return len(doomed)

    # -- keyspace ----------------------------------------------------------------------

    def keys(self, pattern: str = "*", now: float = 0.0) -> list[str]:
        with self._lock:
            for key in list(self._data):
                self._purge_if_expired(key, now)
            return sorted(k for k in self._data if fnmatch.fnmatch(k, pattern))

    def dbsize(self, now: float = 0.0) -> int:
        with self._lock:
            for key in list(self._data):
                self._purge_if_expired(key, now)
            return len(self._data)

    def flushall(self) -> None:
        with self._lock:
            self._data.clear()
            self._expiry.clear()
