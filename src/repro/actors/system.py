"""The actor system: spawning, dispatch, scheduling, supervision, metrics.

Two dispatchers are provided:

* ``deterministic`` (default) — a single-threaded run-to-idle loop. Message
  interleaving is reproducible, which the evaluation relies on; this is also
  the honest way to measure per-message processing time on a shared host.
* ``threaded`` — a pool of worker threads with the classic
  one-actor-never-runs-twice-concurrently scheduling discipline, for
  exercising the concurrency semantics themselves.

Time is virtual: :meth:`ActorSystem.advance_time` moves the clock and
releases scheduled messages. The platform drives it from its stream clock,
so a 24-hour replay runs as fast as the host allows.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from collections import deque
from typing import Any, Callable


from repro.actors.actor import Actor, ActorContext, ActorRef, Envelope
from repro.actors.mailbox import Mailbox
from repro.actors.supervision import (
    Directive,
    RestartStrategy,
    SupervisionStrategy,
)
from repro.telemetry import Telemetry
from repro.telemetry.recorder import MetricsRecorder
from repro.telemetry.trace import clear_current_trace, set_current_trace


class AskTimeoutError(TimeoutError):
    """An ask future was awaited past its timeout without a reply."""


class Future:
    """A write-once container completed by the replying actor."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None

    def complete(self, value: Any) -> None:
        self._value = value
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The reply value; raises :class:`AskTimeoutError` if unavailable.

        With the deterministic dispatcher, call
        :meth:`ActorSystem.run_until_idle` before awaiting (or use
        :meth:`ActorSystem.ask_sync`).
        """
        if not self._event.wait(timeout):
            raise AskTimeoutError("ask future not completed")
        return self._value


class _Cell:
    """Runtime state of one actor."""

    __slots__ = ("name", "factory", "actor", "mailbox", "strategy",
                 "restarts", "started", "stopped", "scheduled",
                 "messages_processed", "tel_instruments")

    def __init__(self, name: str, factory: Callable[[], Actor],
                 strategy: SupervisionStrategy) -> None:
        self.name = name
        self.factory = factory
        self.actor = factory()
        self.mailbox = Mailbox()
        self.strategy = strategy
        self.restarts = 0
        self.started = False
        self.stopped = False
        self.scheduled = False
        self.messages_processed = 0
        #: ``(entity, counter, histogram)`` resolved on first drain —
        #: saves the name split and registry lookup on every batch.
        self.tel_instruments: tuple | None = None


class ActorSystem:
    """Container and dispatcher for a set of actors."""

    def __init__(self, name: str = "system", mode: str = "deterministic",
                 workers: int = 4, record_metrics: bool = False,
                 batch_size: int = 64) -> None:
        if mode not in ("deterministic", "threaded"):
            raise ValueError(f"unknown dispatch mode {mode!r}")
        self.name = name
        self.mode = mode
        self.batch_size = batch_size
        self.metrics = MetricsRecorder() if record_metrics else None
        #: Optional :class:`~repro.telemetry.Telemetry` bundle. When set,
        #: the dispatcher feeds mailbox-depth / queue-delay / per-entity
        #: processing instruments and appends hops for traced envelopes.
        #: Assigned post-construction by the platform/cluster layer.
        self.telemetry: Telemetry | None = None
        #: Callable returning the population figure recorded with each
        #: metric sample. Defaults to the live actor count; the platform
        #: overrides it with the *vessel* actor count so the Figure 6 x
        #: axis is "number of distinct MMSIs", as in the paper.
        self.population_fn: Callable[[], int] | None = None
        #: Optional predicate on actor names limiting which deliveries are
        #: sampled into the metrics (e.g. only vessel actors, so the
        #: Figure 6 series measures per-AIS-message processing time).
        self.metrics_filter: Callable[[str], bool] | None = None
        self.dead_letters: deque[tuple[str, Envelope]] = deque(maxlen=10_000)
        self.dead_letter_count = 0

        self._cells: dict[str, _Cell] = {}
        self._lock = threading.RLock()
        self._active_count = 0
        self._now = 0.0
        self._timer_seq = itertools.count()
        self._timers: list[tuple[float, int, str, Any]] = []

        self._ready: deque[str] = deque()
        self._workers: list[threading.Thread] = []
        self._work_q: "queue.Queue[str | None]" = queue.Queue()
        self._shutdown = False
        self._idle_cv = threading.Condition(self._lock)
        self._in_flight = 0
        if mode == "threaded":
            for i in range(workers):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"{name}-worker-{i}", daemon=True)
                t.start()
                self._workers.append(t)

    # -- spawning / stopping ----------------------------------------------------

    def spawn(self, factory: Callable[[], Actor], name: str,
              strategy: SupervisionStrategy | None = None) -> ActorRef:
        """Create an actor. ``factory`` must build a fresh instance each call
        (it is reused by supervised restarts)."""
        with self._lock:
            existing = self._cells.get(name)
            if existing is not None and not existing.stopped:
                raise ValueError(f"actor {name!r} already exists")
            cell = _Cell(name, factory, strategy or RestartStrategy())
            self._cells[name] = cell
            self._active_count += 1
        return ActorRef(name, self)

    def actor_ref(self, name: str) -> ActorRef:
        return ActorRef(name, self)

    def exists(self, name: str) -> bool:
        with self._lock:
            cell = self._cells.get(name)
            return cell is not None and not cell.stopped

    @property
    def active_count(self) -> int:
        return self._active_count

    def total_mailbox_depth(self) -> int:
        """Messages queued across all live mailboxes right now (the
        cluster load reports' backlog gauge)."""
        with self._lock:
            return sum(len(cell.mailbox) for cell in self._cells.values()
                       if not cell.stopped)

    def stop(self, ref: ActorRef) -> None:
        with self._lock:
            cell = self._cells.get(ref.name)
            if cell is None or cell.stopped:
                return
            cell.stopped = True
            self._active_count -= 1
        cell.actor.post_stop()

    def stop_all(self) -> None:
        with self._lock:
            names = [n for n, c in self._cells.items() if not c.stopped]
        for n in names:
            self.stop(ActorRef(n, self))

    def shutdown(self) -> None:
        """Stop all actors and terminate worker threads."""
        self.stop_all()
        if self.mode == "threaded":
            self._shutdown = True
            for _ in self._workers:
                self._work_q.put(None)
            for t in self._workers:
                t.join(timeout=5.0)

    # -- delivery ----------------------------------------------------------------

    def _new_future(self) -> Future:
        return Future()

    def _deliver(self, name: str, envelope: Envelope) -> None:
        telemetry = self.telemetry
        if (telemetry is not None and envelope.trace_id is not None
                and envelope.enqueued_at is None):
            # Queue-delay stamping is traced-envelopes-only, and in-place:
            # the envelope is not yet in any mailbox, so mutating the
            # frozen dataclass here (the same way its __init__ does) is
            # unobservable and avoids a full copy per sampled message.
            object.__setattr__(envelope, "enqueued_at", telemetry.clock())
        with self._lock:
            cell = self._cells.get(name)
            if cell is None or cell.stopped:
                self.dead_letters.append((name, envelope))
                self.dead_letter_count += 1
                return
            cell.mailbox.put(envelope)
            if not cell.scheduled:
                cell.scheduled = True
                if self.mode == "deterministic":
                    self._ready.append(name)
                else:
                    self._in_flight += 1
                    self._work_q.put(name)

    # -- scheduling (virtual time) --------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay_s: float, target: ActorRef, message: Any) -> None:
        """Deliver ``message`` to ``target`` once virtual time advances by
        at least ``delay_s``."""
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        with self._lock:
            heapq.heappush(self._timers,
                           (self._now + delay_s, next(self._timer_seq),
                            target.name, message))

    def advance_time(self, dt_s: float) -> int:
        """Move the virtual clock forward, firing due timers.

        Returns the number of timer messages delivered.
        """
        if dt_s < 0:
            raise ValueError("cannot move time backwards")
        with self._lock:
            self._now += dt_s
            due = []
            while self._timers and self._timers[0][0] <= self._now:
                due.append(heapq.heappop(self._timers))
        for _, _, name, message in due:
            self._deliver(name, Envelope(message=message))
        return len(due)

    # -- deterministic dispatch --------------------------------------------------------

    def run_until_idle(self, max_messages: int | None = None) -> int:
        """Process mailboxes until empty (deterministic mode only).

        Returns the number of messages processed. ``max_messages`` bounds the
        run for livelock protection in tests.
        """
        if self.mode != "deterministic":
            raise RuntimeError("run_until_idle requires deterministic mode")
        processed = 0
        while self._ready:
            name = self._ready.popleft()
            cell = self._cells.get(name)
            if cell is None:
                continue
            processed += self._process_cell(cell)
            if max_messages is not None and processed >= max_messages:
                with self._lock:
                    if len(cell.mailbox):
                        # leave it scheduled for the next run
                        self._ready.appendleft(name)
                        return processed
                break
        return processed

    def ask_sync(self, ref: ActorRef, message: Any, timeout: float = 5.0) -> Any:
        """Ask and synchronously await the reply.

        In deterministic mode this drives the dispatcher to idle first.
        """
        future = ref.ask(message)
        if self.mode == "deterministic":
            self.run_until_idle()
            return future.result(timeout=0.0)
        return future.result(timeout=timeout)

    # -- threaded dispatch ----------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            name = self._work_q.get()
            if name is None:
                return
            cell = self._cells.get(name)
            if cell is not None:
                try:
                    self._process_cell(cell)
                finally:
                    with self._lock:
                        self._in_flight -= 1
                        if self._in_flight == 0:
                            self._idle_cv.notify_all()

    def await_idle(self, timeout: float = 30.0) -> bool:
        """Block until no work is queued or running (threaded mode)."""
        if self.mode != "threaded":
            return True
        deadline = time.monotonic() + timeout
        with self._idle_cv:
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle_cv.wait(remaining)
        return True

    # -- shared processing core -----------------------------------------------------------

    def _process_cell(self, cell: _Cell) -> int:
        """Drain one batch from a cell's mailbox, honouring supervision."""
        batch = cell.mailbox.get_batch(self.batch_size)
        processed = 0
        telemetry = self.telemetry
        entity = entity_counter = proc_hist = None
        tel_clock = None
        batch_proc: list[float] | None = None
        if telemetry is not None and batch:
            # Instruments resolve once per *cell* and cache on it. Depth /
            # timing histograms only fill on sampled batches; traced
            # envelopes are always timed (they were already sampled at
            # ingest); message counters are exact.
            if cell.tel_instruments is None:
                entity = cell.name.split("-", 1)[0]
                cell.tel_instruments = \
                    (entity,) + telemetry.entity_instruments(entity)
            entity, entity_counter, proc_hist = cell.tel_instruments
            tel_clock = telemetry.clock
            if telemetry.sample_batch():
                telemetry.mailbox_depth.observe(len(batch))
                batch_proc = []
        for i, envelope in enumerate(batch):
            if cell.stopped:
                for leftover in batch[i:]:
                    self.dead_letters.append((cell.name, leftover))
                    self.dead_letter_count += 1
                break
            t0 = time.perf_counter()
            traced = tel_clock is not None and envelope.trace_id is not None
            timed = traced or batch_proc is not None
            tel_t0 = tel_clock() if timed else 0.0
            ok = self._process_envelope(cell, envelope)
            if timed:
                # Durations come from the telemetry clock, not the perf
                # counter: under a virtual clock they are exactly zero,
                # which keeps sim-layer telemetry deterministic per seed.
                proc_s = tel_clock() - tel_t0
                if batch_proc is not None:
                    batch_proc.append(proc_s)
                if traced:
                    queue_s = None
                    if envelope.enqueued_at is not None:
                        queue_s = tel_t0 - envelope.enqueued_at
                        telemetry.queue_delay.observe(queue_s)
                    telemetry.traces.record(envelope.trace_id, entity,
                                            queue_s=queue_s, proc_s=proc_s)
            if self.metrics is not None and (
                    self.metrics_filter is None
                    or self.metrics_filter(cell.name)):
                population = (self.population_fn()
                              if self.population_fn is not None
                              else self._active_count)
                self.metrics.record(population, time.perf_counter() - t0)
            processed += 1
            if not ok:
                # The cell stopped mid-batch: everything still queued becomes
                # a dead letter, like a stopped Akka actor's mailbox.
                leftovers = batch[i + 1:] + cell.mailbox.get_batch(2 ** 30)
                for leftover in leftovers:
                    self.dead_letters.append((cell.name, leftover))
                    self.dead_letter_count += 1
                break
        if entity_counter is not None and processed:
            entity_counter.inc(processed)
            if batch_proc:
                proc_hist.observe_many(batch_proc)
        # Reschedule if more messages arrived or remain.
        with self._lock:
            if not cell.stopped and len(cell.mailbox) > 0:
                if self.mode == "deterministic":
                    self._ready.append(cell.name)
                else:
                    self._in_flight += 1
                    self._work_q.put(cell.name)
            else:
                cell.scheduled = False
                # Race: a message may slip in after the emptiness check in
                # threaded mode; re-check under the same lock.
                if len(cell.mailbox) > 0 and not cell.stopped:
                    cell.scheduled = True
                    if self.mode == "deterministic":
                        self._ready.append(cell.name)
                    else:
                        self._in_flight += 1
                        self._work_q.put(cell.name)
        return processed

    def _process_envelope(self, cell: _Cell, envelope: Envelope) -> bool:
        """Run one delivery; returns False if the cell can no longer process
        (stopped by supervision)."""
        if envelope.trace_id is None:
            return self._run_envelope(cell, envelope)
        # While a traced message is in `receive`, its id is the thread's
        # current trace — every `tell` the actor makes inherits it.
        set_current_trace(envelope.trace_id)
        try:
            return self._run_envelope(cell, envelope)
        finally:
            clear_current_trace()

    def _run_envelope(self, cell: _Cell, envelope: Envelope) -> bool:
        ref = ActorRef(cell.name, self)
        ctx = ActorContext(self, ref, envelope)
        try:
            if not cell.started:
                cell.actor.pre_start(ctx)
                cell.started = True
            cell.actor.receive(envelope.message, ctx)
            cell.messages_processed += 1
            return True
        except Exception as exc:  # supervision boundary
            directive = cell.strategy.decide(cell.restarts)
            if directive is Directive.RESUME:
                cell.messages_processed += 1
                return True
            if directive is Directive.RESTART:
                cell.restarts += 1
                try:
                    cell.actor.pre_restart(exc)
                finally:
                    cell.actor.post_stop()
                cell.actor = cell.factory()
                cell.started = False
                return True
            # STOP
            with self._lock:
                if not cell.stopped:
                    cell.stopped = True
                    self._active_count -= 1
            cell.actor.post_stop()
            return False
