"""Supervision strategies: what the system does when ``receive`` raises.

Mirrors Akka's one-for-one supervision decisions:

* **restart** — discard the failed instance, build a fresh one from the
  actor's factory, keep the mailbox (bounded by ``max_restarts``),
* **stop** — terminate the actor; subsequent messages become dead letters,
* **resume** — drop the failing message, keep state and continue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Directive(enum.Enum):
    RESTART = "restart"
    STOP = "stop"
    RESUME = "resume"


@dataclass(frozen=True)
class SupervisionStrategy:
    """A supervision decision plus its restart budget."""

    directive: Directive
    max_restarts: int = 3

    def decide(self, restarts_so_far: int) -> Directive:
        """The directive to apply given how many restarts happened already.

        A restart budget overrun escalates to STOP, as Akka does when
        ``maxNrOfRetries`` is exceeded.
        """
        if (self.directive is Directive.RESTART
                and restarts_so_far >= self.max_restarts):
            return Directive.STOP
        return self.directive


def RestartStrategy(max_restarts: int = 3) -> SupervisionStrategy:
    """Restart the actor on failure, up to ``max_restarts`` times."""
    return SupervisionStrategy(Directive.RESTART, max_restarts=max_restarts)


def StopStrategy() -> SupervisionStrategy:
    """Stop the actor on first failure."""
    return SupervisionStrategy(Directive.STOP)


def ResumeStrategy() -> SupervisionStrategy:
    """Skip the failing message and keep going."""
    return SupervisionStrategy(Directive.RESUME)
