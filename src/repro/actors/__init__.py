"""An actor runtime (the platform's Akka substitute).

The paper's platform is "based on the actor model [7]" with Akka supplying
lightweight isolated actors, asynchronous message passing, supervision and
dynamic scaling (Section 3). This package implements those semantics:

* :class:`~repro.actors.actor.Actor` — user behaviour with run-to-completion
  message handling and lifecycle hooks,
* :class:`~repro.actors.system.ActorSystem` — spawning, dispatch, stopping,
  dead letters and a virtual-time scheduler; two dispatchers are provided,
  a deterministic single-threaded one (tests, benchmarks, reproducible
  Figure 6 runs) and a thread-pool one,
* :mod:`~repro.actors.supervision` — restart/stop/resume strategies applied
  when an actor's receive raises,
* :class:`~repro.actors.router.KeyRouter` — the "core partitioning
  functionality" that lazily creates one actor per key (per MMSI, per H3
  cell) and routes messages by key,
* :mod:`~repro.actors.metrics` — the per-message processing-time samples
  behind Figure 6.
"""

from repro.actors.actor import Actor, ActorContext, ActorRef, Envelope
from repro.actors.mailbox import Mailbox
from repro.actors.metrics import MetricsRecorder, MovingAverage
from repro.actors.router import KeyRouter
from repro.actors.supervision import (
    RestartStrategy,
    ResumeStrategy,
    StopStrategy,
    SupervisionStrategy,
)
from repro.actors.system import ActorSystem, AskTimeoutError, Future

__all__ = [
    "Actor",
    "ActorContext",
    "ActorRef",
    "ActorSystem",
    "AskTimeoutError",
    "Envelope",
    "Future",
    "KeyRouter",
    "Mailbox",
    "MetricsRecorder",
    "MovingAverage",
    "RestartStrategy",
    "ResumeStrategy",
    "StopStrategy",
    "SupervisionStrategy",
]
