"""Key-based routing with lazy actor creation.

The paper's "core partitioning functionality generates multiple actors N,
with each one corresponding to a specific vessel as defined by its MMSI"
(Section 3). :class:`KeyRouter` is that functionality, generalised so the
same mechanism also backs the spatial *cell actors* (key = H3 cell id) and
*collision actors*: the first message routed to an unseen key spawns the
actor for that key.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.actors.actor import Actor, ActorRef
from repro.actors.supervision import SupervisionStrategy
from repro.actors.system import ActorSystem


class KeyRouter:
    """Routes messages to one actor per key, spawning on first use."""

    def __init__(self, system: ActorSystem, prefix: str,
                 factory: Callable[[Any], Actor],
                 strategy: SupervisionStrategy | None = None) -> None:
        """``factory`` receives the key and returns the actor behaviour for
        it; ``prefix`` namespaces the actor names (e.g. ``vessel``)."""
        self._system = system
        self._prefix = prefix
        self._factory = factory
        self._strategy = strategy
        self._refs: dict[Any, ActorRef] = {}
        self.spawned = 0

    def _name(self, key: Any) -> str:
        return f"{self._prefix}-{key}"

    def route(self, key: Any) -> ActorRef:
        """The actor for ``key``, created now if this key is new."""
        ref = self._refs.get(key)
        if ref is None:
            ref = self._system.spawn(lambda k=key: self._factory(k),
                                     self._name(key), strategy=self._strategy)
            self._refs[key] = ref
            self.spawned += 1
        return ref

    def tell(self, key: Any, message: Any,
             sender: ActorRef | None = None) -> None:
        """Route-and-send in one step."""
        self.route(key).tell(message, sender=sender)

    def forget(self, key: Any) -> bool:
        """Drop the ref for ``key`` so a later route spawns a fresh actor.

        Used by shard handoff: after the actor for a key is stopped and its
        shard moves to another node, the stale ref must not shadow a future
        re-acquisition of the shard. Returns True if the key was known.
        """
        return self._refs.pop(key, None) is not None

    def known_keys(self) -> list[Any]:
        return list(self._refs)

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, key: Any) -> bool:
        return key in self._refs
