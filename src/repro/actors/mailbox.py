"""Actor mailboxes: unbounded, thread-safe FIFO queues of envelopes."""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.actors.actor import Envelope


class Mailbox:
    """FIFO mailbox.

    One mailbox per actor; producers append from any thread, the dispatcher
    drains in batches. The mailbox never drops messages — backpressure is the
    platform's responsibility (the paper relies on the same property of
    Akka's default unbounded mailbox).
    """

    def __init__(self) -> None:
        self._queue: deque["Envelope"] = deque()
        self._lock = threading.Lock()
        #: Total messages ever enqueued, for metrics.
        self.enqueued = 0

    def put(self, envelope: "Envelope") -> None:
        with self._lock:
            self._queue.append(envelope)
            self.enqueued += 1

    def get_batch(self, max_messages: int) -> list["Envelope"]:
        """Dequeue up to ``max_messages`` envelopes (possibly empty)."""
        with self._lock:
            n = min(max_messages, len(self._queue))
            return [self._queue.popleft() for _ in range(n)]

    def requeue_front(self, envelopes: list["Envelope"]) -> None:
        """Put envelopes back at the head (used when a restart interrupts a
        batch so unprocessed messages are not lost)."""
        with self._lock:
            for env in reversed(envelopes):
                self._queue.appendleft(env)

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def is_empty(self) -> bool:
        return len(self) == 0
