"""Compatibility shim: the Figure 6 metrics recorder moved to
:mod:`repro.telemetry.recorder` when the telemetry layer absorbed actor
instrumentation. Import from :mod:`repro.telemetry` in new code."""

from __future__ import annotations

from repro.telemetry.recorder import MetricsRecorder, MovingAverage

__all__ = ["MetricsRecorder", "MovingAverage"]
