"""Per-message processing-time metrics.

Figure 6 of the paper plots *average processing time against the number of
distinct vessels (actors) active in the system*, smoothed with a moving
window of 100 actors. :class:`MetricsRecorder` captures exactly the samples
that plot needs: for every processed message, the actor count at that moment
and the wall time the delivery took (including any actor spawn it
triggered, which is what produces the paper's initialisation spike).
"""

from __future__ import annotations

from array import array

import numpy as np


class MetricsRecorder:
    """Compact append-only store of (actor_count, processing_seconds)."""

    def __init__(self) -> None:
        self._actor_counts = array("q")
        self._durations = array("d")

    def record(self, actor_count: int, duration_s: float) -> None:
        self._actor_counts.append(actor_count)
        self._durations.append(duration_s)

    def __len__(self) -> int:
        return len(self._durations)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(actor_counts, durations_s)`` as numpy arrays."""
        return (np.frombuffer(self._actor_counts, dtype=np.int64).copy(),
                np.frombuffer(self._durations, dtype=np.float64).copy())

    def total_time_s(self) -> float:
        return float(sum(self._durations))

    def curve_by_actor_count(self, window_actors: int = 100
                             ) -> tuple[np.ndarray, np.ndarray]:
        """Figure 6's series: mean processing time per actor-count bucket,
        smoothed over a ``window_actors``-wide moving window.

        Samples are grouped by the actor count at processing time; bucket
        means are then smoothed with a centred moving average spanning
        ``window_actors`` distinct actor counts.
        """
        counts, durations = self.as_arrays()
        if counts.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        uniq, inverse = np.unique(counts, return_inverse=True)
        sums = np.bincount(inverse, weights=durations)
        ns = np.bincount(inverse)
        means = sums / ns
        smoothed = MovingAverage.smooth(means, window=max(1, window_actors))
        return uniq, smoothed


class MovingAverage:
    """Centred moving-average smoothing used by the Figure 6 plot."""

    @staticmethod
    def smooth(values: np.ndarray, window: int) -> np.ndarray:
        if window <= 1 or values.size == 0:
            return values.astype(float, copy=True)
        window = min(window, values.size)
        kernel = np.ones(window) / window
        padded = np.concatenate([
            np.full(window // 2, values[0]),
            values.astype(float),
            np.full(window - 1 - window // 2, values[-1])])
        return np.convolve(padded, kernel, mode="valid")
