"""Actor base class, references and envelopes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.telemetry.trace import current_trace

if TYPE_CHECKING:
    from repro.actors.system import ActorSystem, Future


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus reply plumbing."""

    message: Any
    sender: "ActorRef | None" = None
    #: Set for ask-pattern messages; the receiving actor's context completes
    #: it via ``ctx.reply(...)``.
    reply_to: "Future | None" = None
    #: Telemetry trace this message belongs to (sampled; usually None).
    #: Stamped by :meth:`ActorRef.tell` from the thread-local current
    #: trace, so traced causality propagates without signature changes.
    trace_id: int | None = None
    #: Telemetry-clock time this envelope entered a mailbox; only stamped
    #: for traced envelopes (queue-delay measurement).
    enqueued_at: float | None = None


class ActorRef:
    """A location-transparent handle to an actor.

    Refs remain valid after the actor stops — messages sent to a stopped
    actor land in the system's dead-letter queue, as in Akka.
    """

    __slots__ = ("name", "_system")

    def __init__(self, name: str, system: "ActorSystem") -> None:
        self.name = name
        self._system = system

    def tell(self, message: Any, sender: "ActorRef | None" = None) -> None:
        """Fire-and-forget send."""
        self._system._deliver(
            self.name,
            Envelope(message=message, sender=sender,
                     trace_id=current_trace()))

    def ask(self, message: Any) -> "Future":
        """Request-reply send; returns a :class:`Future` for the reply."""
        future = self._system._new_future()
        self._system._deliver(self.name,
                              Envelope(message=message, reply_to=future))
        return future

    def __repr__(self) -> str:
        return f"ActorRef({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ActorRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class ActorContext:
    """Per-delivery context handed to :meth:`Actor.receive`."""

    __slots__ = ("system", "self_ref", "sender", "_envelope")

    def __init__(self, system: "ActorSystem", self_ref: ActorRef,
                 envelope: Envelope) -> None:
        self.system = system
        self.self_ref = self_ref
        self.sender = envelope.sender
        self._envelope = envelope

    def reply(self, value: Any) -> None:
        """Complete the ask future (if any) and/or tell the sender."""
        if self._envelope.reply_to is not None:
            self._envelope.reply_to.complete(value)
        elif self.sender is not None:
            self.sender.tell(value, sender=self.self_ref)

    def actor_of(self, name: str) -> ActorRef:
        """A ref to any actor by name (it need not exist yet)."""
        return ActorRef(name, self.system)

    def schedule(self, delay_s: float, target: ActorRef, message: Any) -> None:
        """Deliver ``message`` to ``target`` after ``delay_s`` of virtual
        time (see :meth:`ActorSystem.advance_time`)."""
        self.system.schedule(delay_s, target, message)

    def stop_self(self) -> None:
        self.system.stop(self.self_ref)


class Actor:
    """Base class for actor behaviours.

    Subclasses override :meth:`receive`; the runtime guarantees it is never
    executed concurrently with itself for the same actor instance
    (run-to-completion), which is what lets vessel actors keep mutable
    per-vessel state without locks — the property the paper's design builds
    on.
    """

    def receive(self, message: Any, ctx: ActorContext) -> None:
        raise NotImplementedError

    # -- lifecycle hooks ------------------------------------------------------

    def pre_start(self, ctx: ActorContext) -> None:
        """Called once before the first message is processed."""

    def post_stop(self) -> None:
        """Called after the actor is stopped (including via restart)."""

    def pre_restart(self, reason: BaseException) -> None:
        """Called on the failing instance before a supervised restart."""
