"""The paper's forecasting models.

* :mod:`repro.models.kinematic` — the linear kinematic baseline of Section
  6.1: dead reckoning from the last reported position, speed and course.
* :mod:`repro.models.svrf` — the Short-term Vessel Route Forecasting model
  (Figure 3): a BiLSTM over 20 past spatiotemporal displacements emitting
  six (Δlat, Δlon) transitions at 5-minute intervals, with L1 in-layer
  regularisation; includes the training pipeline and model persistence.
* :mod:`repro.models.envclus` — the long-term model (EnvClus* [34, 35]):
  trajectory clustering into common pathways, a weighted transition graph
  per origin-destination port pair, junction classifiers on vessel features
  and Patterns-of-Life aggregate mobility statistics.
"""

from repro.models.base import RouteForecast, RouteForecaster
from repro.models.fuel import FuelModel
from repro.models.kinematic import LinearKinematicModel
from repro.models.svrf import SVRFConfig, SVRFModel, train_svrf
from repro.models.voyage import (
    PlanLeg,
    VoyageOutcome,
    VoyagePlan,
    Waypoint,
    plan_voyage,
    simulate_voyage,
)

__all__ = [
    "FuelModel",
    "LinearKinematicModel",
    "PlanLeg",
    "RouteForecast",
    "RouteForecaster",
    "SVRFConfig",
    "SVRFModel",
    "VoyageOutcome",
    "VoyagePlan",
    "Waypoint",
    "plan_voyage",
    "simulate_voyage",
    "train_svrf",
]
