"""Historical trip corpus and pathway extraction.

EnvClus* "clusters the positional AIS data in order to extract common
pathways of vessel movements". The clustering here is grid-based: each trip
is mapped to the sequence of hex cells it traverses (consecutive duplicates
collapsed, gaps bridged along the straight line), and pathway statistics
accumulate per cell and per cell transition. Cells visited by many voyages
form the corridor; rarely visited cells are pruned as noise when the graph
is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ais.vessel import VesselStatics
from repro.geo.geodesy import haversine_m
from repro.geo.track import Position
from repro.hexgrid import cell_to_latlng, grid_distance, latlng_to_cell

#: Default hex resolution for pathway cells (~8.5 km edges: coarse enough to
#: merge parallel voyages into one corridor, fine enough to keep junctions).
PATHWAY_RESOLUTION = 5


@dataclass
class Trip:
    """One historical voyage between two ports."""

    mmsi: int
    origin: str
    destination: str
    track: Sequence[Position]
    statics: VesselStatics | None = None

    def cell_sequence(self, res: int = PATHWAY_RESOLUTION) -> list[int]:
        """The deduplicated cell sequence this trip traverses.

        Jumps over more than one cell (reception gaps) are bridged by
        linearly interpolating between the two fixes so the pathway stays
        connected.
        """
        cells: list[int] = []
        prev_pos: Position | None = None
        for pos in self.track:
            cell = latlng_to_cell(pos.lat, pos.lon, res)
            if cells and cell == cells[-1]:
                prev_pos = pos
                continue
            if cells and prev_pos is not None:
                jump = grid_distance(cells[-1], cell)
                if jump > 1:
                    for frac in np.linspace(0.0, 1.0, jump + 1)[1:-1]:
                        lat = prev_pos.lat + frac * (pos.lat - prev_pos.lat)
                        lon = prev_pos.lon + frac * (pos.lon - prev_pos.lon)
                        bridge = latlng_to_cell(lat, lon, res)
                        if bridge != cells[-1]:
                            cells.append(bridge)
            if not cells or cell != cells[-1]:
                cells.append(cell)
            prev_pos = pos
        return cells


@dataclass
class TripCorpus:
    """A collection of historical trips with pathway accumulators.

    ``add`` streams trips in; the accumulated per-cell and per-transition
    statistics are what :class:`~repro.models.envclus.graph.TransitionGraph`
    is built from.
    """

    resolution: int = PATHWAY_RESOLUTION
    trips: list[Trip] = field(default_factory=list)
    #: cell -> visit count across all trips.
    cell_counts: dict[int, int] = field(default_factory=dict)
    #: (cell_from, cell_to) -> traversal count.
    transition_counts: dict[tuple[int, int], int] = field(default_factory=dict)
    #: cell -> running sums for mean observed position and speed.
    _cell_pos_sum: dict[int, list[float]] = field(default_factory=dict)

    def add(self, trip: Trip) -> None:
        if len(trip.track) < 2:
            raise ValueError("a trip needs at least two fixes")
        self.trips.append(trip)
        seq = trip.cell_sequence(self.resolution)
        for cell in seq:
            self.cell_counts[cell] = self.cell_counts.get(cell, 0) + 1
        for a, b in zip(seq, seq[1:]):
            key = (a, b)
            self.transition_counts[key] = self.transition_counts.get(key, 0) + 1
        for pos in trip.track:
            cell = latlng_to_cell(pos.lat, pos.lon, self.resolution)
            acc = self._cell_pos_sum.setdefault(cell, [0.0, 0.0, 0.0, 0.0])
            acc[0] += pos.lat
            acc[1] += pos.lon
            acc[2] += pos.sog if pos.sog is not None else 0.0
            acc[3] += 1.0

    def __len__(self) -> int:
        return len(self.trips)

    def od_pairs(self) -> set[tuple[str, str]]:
        return {(t.origin, t.destination) for t in self.trips}

    def trips_for(self, origin: str, destination: str) -> list[Trip]:
        return [t for t in self.trips
                if t.origin == origin and t.destination == destination]

    def cell_center(self, cell: int) -> tuple[float, float]:
        """Mean observed position within a cell (falls back to the geometric
        centre for never-observed cells) — the pathway node coordinates."""
        acc = self._cell_pos_sum.get(cell)
        if acc is None or acc[3] == 0:
            return cell_to_latlng(cell)
        return acc[0] / acc[3], acc[1] / acc[3]

    def cell_mean_speed(self, cell: int) -> float:
        """Mean observed SOG (knots) in a cell, 0 if never observed."""
        acc = self._cell_pos_sum.get(cell)
        if acc is None or acc[3] == 0:
            return 0.0
        return acc[2] / acc[3]

    def corridor_width_m(self, origin: str, destination: str) -> float:
        """Rough corridor spread: mean pairwise midpoint distance between
        voyages of one OD pair (a diagnostic used in tests and examples)."""
        trips = self.trips_for(origin, destination)
        if len(trips) < 2:
            return 0.0
        mids = []
        for trip in trips:
            pos = trip.track[len(trip.track) // 2]
            mids.append((pos.lat, pos.lon))
        dists = [haversine_m(a[0], a[1], b[0], b[1])
                 for i, a in enumerate(mids) for b in mids[i + 1:]]
        return float(np.mean(dists))
