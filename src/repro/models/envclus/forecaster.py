"""The user-facing L-VRF model.

Ties the pieces together the way Section 4.1 describes: a dedicated
transition graph per origin-destination port pair, junction classifiers
trained on vessel features, and route forecasts that follow classifier
decisions at junctions and maximum-probability branches elsewhere. The
forecast carries per-node ETAs derived from historical cell speeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geodesy import haversine_m
from repro.geo.track import Position
from repro.hexgrid import latlng_to_cell
from repro.models.envclus.clustering import PATHWAY_RESOLUTION, Trip, TripCorpus
from repro.models.envclus.graph import PathNotFoundError, TransitionGraph
from repro.models.envclus.junctions import JunctionClassifier
from repro.models.envclus.patterns import PatternsOfLife


@dataclass(frozen=True)
class LVRFForecast:
    """A long-term route forecast towards a destination port."""

    origin: str
    destination: str
    #: Pathway cells from the query position to the destination.
    path_cells: tuple[int, ...]
    #: ``(lat, lon)`` of each pathway node.
    waypoints: tuple[tuple[float, float], ...]
    #: Estimated seconds from the query position to each node.
    etas_s: tuple[float, ...]
    log_probability: float

    @property
    def distance_m(self) -> float:
        total = 0.0
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            total += haversine_m(a[0], a[1], b[0], b[1])
        return total

    @property
    def eta_total_s(self) -> float:
        return self.etas_s[-1] if self.etas_s else 0.0


class LVRFModel:
    """Long-term route forecasting over a historical trip corpus.

    "The method trains a dedicated model for each distinct pair of
    origin-destination ports" — graphs and junction classifiers are built
    per OD pair on :meth:`fit`, and forecasts answer queries of the form
    *(current position, vessel features, origin port, destination port)*.
    """

    def __init__(self, resolution: int = PATHWAY_RESOLUTION,
                 min_cell_support: int = 2,
                 min_junction_samples: int = 8) -> None:
        self.resolution = resolution
        self.min_cell_support = min_cell_support
        self.min_junction_samples = min_junction_samples
        self._corpora: dict[tuple[str, str], TripCorpus] = {}
        self._graphs: dict[tuple[str, str], TransitionGraph] = {}
        self._junctions: dict[tuple[str, str], dict[int, JunctionClassifier]] = {}
        self.patterns = PatternsOfLife(resolution)

    # -- training ----------------------------------------------------------------

    def fit(self, trips: list[Trip]) -> "LVRFModel":
        """Ingest historical trips and build per-OD graphs and classifiers."""
        if not trips:
            raise ValueError("no trips to fit on")
        for trip in trips:
            key = (trip.origin, trip.destination)
            corpus = self._corpora.get(key)
            if corpus is None:
                corpus = TripCorpus(resolution=self.resolution)
                self._corpora[key] = corpus
            corpus.add(trip)
            self.patterns.observe_trip(trip)
        for key, corpus in self._corpora.items():
            graph = TransitionGraph(corpus,
                                    min_cell_support=self.min_cell_support)
            self._graphs[key] = graph
            self._junctions[key] = self._fit_junctions(corpus, graph)
        return self

    def _fit_junctions(self, corpus: TripCorpus, graph: TransitionGraph
                       ) -> dict[int, JunctionClassifier]:
        """Train a branch classifier at each junction with enough data."""
        junction_cells = set(graph.junctions())
        if not junction_cells:
            return {}
        samples: dict[int, tuple[list[list[float]], list[int]]] = {}
        for trip in corpus.trips:
            if trip.statics is None:
                continue
            seq = trip.cell_sequence(corpus.resolution)
            features = trip.statics.feature_vector()
            for a, b in zip(seq, seq[1:]):
                if a in junction_cells and graph.graph.has_edge(a, b):
                    xs, ys = samples.setdefault(a, ([], []))
                    xs.append(features)
                    ys.append(b)
        classifiers = {}
        for cell, (xs, ys) in samples.items():
            if len(xs) < self.min_junction_samples or len(set(ys)) < 2:
                continue
            classifiers[cell] = JunctionClassifier().fit(np.asarray(xs), ys)
        return classifiers

    # -- queries ------------------------------------------------------------------

    def known_od_pairs(self) -> set[tuple[str, str]]:
        return set(self._graphs)

    def graph_for(self, origin: str, destination: str) -> TransitionGraph:
        try:
            return self._graphs[(origin, destination)]
        except KeyError:
            raise PathNotFoundError(
                f"no historical trips for {origin} -> {destination}") from None

    def forecast(self, position: Position, origin: str, destination: str,
                 statics=None, max_steps: int = 4_000) -> LVRFForecast:
        """Forecast the route from ``position`` to ``destination``.

        The path starts greedy: at junctions with a trained classifier and
        known vessel ``statics`` the classifier picks the branch; elsewhere
        the most probable branch wins. If the greedy walk stalls before the
        destination, the maximum-probability graph path completes it.
        """
        key = (origin, destination)
        graph = self.graph_for(origin, destination)
        classifiers = self._junctions.get(key, {})
        corpus = self._corpora[key]

        start_cell = self._snap_to_graph(graph, position)
        dest_trips = corpus.trips_for(origin, destination)
        end_pos = dest_trips[0].track[-1]
        dest_cell = self._snap_to_graph(
            graph, end_pos if end_pos else position)

        path = self._walk(graph, classifiers, statics, start_cell, dest_cell,
                          max_steps)
        waypoints = tuple(graph.path_coordinates(path))
        etas = self._estimate_etas(graph, path, position)
        return LVRFForecast(origin=origin, destination=destination,
                            path_cells=tuple(path), waypoints=waypoints,
                            etas_s=etas,
                            log_probability=graph.path_log_probability(path))

    def _snap_to_graph(self, graph: TransitionGraph, position: Position) -> int:
        """The graph node containing (or nearest to) a position."""
        cell = latlng_to_cell(position.lat, position.lon, self.resolution)
        if cell in graph.graph:
            return cell
        best, best_d = None, float("inf")
        for node in graph.graph.nodes:
            nlat = graph.graph.nodes[node]["lat"]
            nlon = graph.graph.nodes[node]["lon"]
            d = haversine_m(position.lat, position.lon, nlat, nlon)
            if d < best_d:
                best, best_d = node, d
        if best is None:
            raise PathNotFoundError("transition graph is empty")
        return best

    def _walk(self, graph: TransitionGraph, classifiers, statics,
              start: int, dest: int, max_steps: int) -> list[int]:
        path = [start]
        visited = {start}
        current = start
        features = (np.asarray([statics.feature_vector()])
                    if statics is not None else None)
        while current != dest and len(path) < max_steps:
            branches = graph.branch_probabilities(current) \
                if current in graph.graph else {}
            candidates = {b: p for b, p in branches.items()
                          if b not in visited}
            if not candidates:
                break
            clf = classifiers.get(current)
            if clf is not None and features is not None:
                proba = clf.predict_proba(features)[0]
                scored = {b: proba[clf.classes_.index(b)]
                          for b in candidates if b in clf.classes_}
                nxt = (max(scored, key=scored.get) if scored
                       else max(candidates, key=candidates.get))
            else:
                nxt = max(candidates, key=candidates.get)
            path.append(nxt)
            visited.add(nxt)
            current = nxt
        if current != dest:
            # Complete (or replace) with the global most-probable path.
            try:
                tail = graph.most_probable_path(current, dest)
                path = path[:-1] + tail if len(path) > 1 else tail
            except PathNotFoundError:
                path = graph.most_probable_path(start, dest)
        return path

    def _estimate_etas(self, graph: TransitionGraph, path: list[int],
                       position: Position) -> tuple[float, ...]:
        """Cumulative ETA to each node from historical cell speeds (falling
        back to the query's reported speed, then to 10 knots)."""
        from repro.geo.constants import KNOTS_TO_MPS
        coords = graph.path_coordinates(path)
        default_kn = position.sog if position.sog else 10.0
        etas = []
        total = 0.0
        prev = (position.lat, position.lon)
        for cell, coord in zip(path, coords):
            hop = haversine_m(prev[0], prev[1], coord[0], coord[1])
            speed_kn = graph.graph.nodes[cell].get("mean_speed_kn") or default_kn
            total += hop / max(speed_kn * KNOTS_TO_MPS, 0.5)
            etas.append(total)
            prev = coord
        return tuple(etas)
