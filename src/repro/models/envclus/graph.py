"""The weighted transitions graph and most-probable-path search.

"These pathways are translated into a weighted transitions graph,
representing the patterns of movement found in the historical data. Using
the resulting graph we are able to generate a prediction of the path the
vessel is going to follow towards its destination port." (Section 4.1)

Edges carry traversal counts; a most-probable path minimises the sum of
``-log P(edge | node)``, i.e. it maximises the product of empirical branch
probabilities. Low-support cells and transitions are pruned so one-off
detours do not become pathways.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.models.envclus.clustering import TripCorpus


class PathNotFoundError(LookupError):
    """No pathway connects the requested cells in the historical graph."""


class TransitionGraph:
    """Directed graph over pathway cells with probability-weighted edges."""

    def __init__(self, corpus: TripCorpus, min_cell_support: int = 2,
                 min_transition_support: int = 1) -> None:
        """Build from an accumulated corpus.

        ``min_cell_support`` prunes cells visited by fewer trips (noise);
        ``min_transition_support`` prunes rare transitions.
        """
        self.corpus = corpus
        self.graph = nx.DiGraph()
        kept_cells = {c for c, n in corpus.cell_counts.items()
                      if n >= min_cell_support}
        for cell in kept_cells:
            lat, lon = corpus.cell_center(cell)
            self.graph.add_node(cell, lat=lat, lon=lon,
                                count=corpus.cell_counts[cell],
                                mean_speed_kn=corpus.cell_mean_speed(cell))
        for (a, b), n in corpus.transition_counts.items():
            if n < min_transition_support:
                continue
            if a in kept_cells and b in kept_cells:
                self.graph.add_edge(a, b, count=n)
        self._assign_probabilities()

    def _assign_probabilities(self) -> None:
        for node in self.graph.nodes:
            total = sum(self.graph.edges[node, nbr]["count"]
                        for nbr in self.graph.successors(node))
            for nbr in self.graph.successors(node):
                p = self.graph.edges[node, nbr]["count"] / total
                self.graph.edges[node, nbr]["prob"] = p
                self.graph.edges[node, nbr]["weight"] = -math.log(p)

    # -- queries -----------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    def junctions(self, min_branch_prob: float = 0.1) -> list[int]:
        """Cells where historical traffic meaningfully splits — the
        "significant graph nodes (route junctions)" that get classifiers."""
        out = []
        for node in self.graph.nodes:
            branches = [self.graph.edges[node, nbr]["prob"]
                        for nbr in self.graph.successors(node)]
            if sum(1 for p in branches if p >= min_branch_prob) >= 2:
                out.append(node)
        return out

    def branch_probabilities(self, cell: int) -> dict[int, float]:
        """Outgoing transition probabilities from a cell."""
        if cell not in self.graph:
            raise KeyError(f"cell {cell} not in graph")
        return {nbr: self.graph.edges[cell, nbr]["prob"]
                for nbr in self.graph.successors(cell)}

    def most_probable_path(self, origin_cell: int, dest_cell: int
                           ) -> list[int]:
        """The maximum-probability cell path from origin to destination."""
        if origin_cell not in self.graph:
            raise PathNotFoundError(f"origin cell {origin_cell} unknown")
        if dest_cell not in self.graph:
            raise PathNotFoundError(f"destination cell {dest_cell} unknown")
        try:
            return nx.shortest_path(self.graph, origin_cell, dest_cell,
                                    weight="weight")
        except nx.NetworkXNoPath as exc:
            raise PathNotFoundError(
                f"no pathway from {origin_cell} to {dest_cell}") from exc

    def path_coordinates(self, path: list[int]) -> list[tuple[float, float]]:
        """``(lat, lon)`` of each pathway node."""
        return [(self.graph.nodes[c]["lat"], self.graph.nodes[c]["lon"])
                for c in path]

    def path_log_probability(self, path: list[int]) -> float:
        """Sum of log branch probabilities along a path (0 is certain)."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += math.log(self.graph.edges[a, b]["prob"])
        return total
