"""Patterns of Life: aggregated historical mobility statistics.

"Aggregated mobility statistics regarding the vessel traffic at the selected
area are also generated and visualized for the user. These statistics,
called Patterns of Life [32], are extracted from historical data from
relevant trips and provide a more complete overview of the historical
traffic in the area." (Section 4.1, Figure 4b)

Statistics are aggregated per hex cell: visit counts, distinct vessels,
speed distribution and a coarse heading rose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.models.envclus.clustering import PATHWAY_RESOLUTION, Trip

#: Number of sectors in the heading rose (every 45 degrees).
HEADING_SECTORS = 8


@dataclass
class CellStats:
    """Aggregate statistics of historical traffic in one cell."""

    cell: int
    visits: int = 0
    vessels: set[int] = field(default_factory=set)
    _speed_sum: float = 0.0
    _speed_sq_sum: float = 0.0
    _speed_n: int = 0
    heading_rose: np.ndarray = field(
        default_factory=lambda: np.zeros(HEADING_SECTORS, dtype=np.int64))

    def observe(self, mmsi: int, sog: float | None, cog: float | None) -> None:
        self.visits += 1
        self.vessels.add(mmsi)
        if sog is not None:
            self._speed_sum += sog
            self._speed_sq_sum += sog * sog
            self._speed_n += 1
        if cog is not None:
            sector = int(cog % 360.0 // (360.0 / HEADING_SECTORS))
            self.heading_rose[sector] += 1

    @property
    def distinct_vessels(self) -> int:
        return len(self.vessels)

    @property
    def mean_speed_kn(self) -> float:
        return self._speed_sum / self._speed_n if self._speed_n else 0.0

    @property
    def speed_std_kn(self) -> float:
        if self._speed_n < 2:
            return 0.0
        mean = self.mean_speed_kn
        var = max(self._speed_sq_sum / self._speed_n - mean * mean, 0.0)
        return float(np.sqrt(var))

    @property
    def dominant_heading_deg(self) -> float:
        """Centre of the most-populated heading sector."""
        sector = int(np.argmax(self.heading_rose))
        return (sector + 0.5) * 360.0 / HEADING_SECTORS


class PatternsOfLife:
    """Per-cell traffic aggregates over a trip corpus or message stream."""

    def __init__(self, resolution: int = PATHWAY_RESOLUTION) -> None:
        self.resolution = resolution
        self._cells: dict[int, CellStats] = {}

    def observe_position(self, mmsi: int, lat: float, lon: float,
                         sog: float | None = None,
                         cog: float | None = None) -> None:
        cell = latlng_to_cell(lat, lon, self.resolution)
        stats = self._cells.get(cell)
        if stats is None:
            stats = CellStats(cell=cell)
            self._cells[cell] = stats
        stats.observe(mmsi, sog, cog)

    def observe_trip(self, trip: Trip) -> None:
        for pos in trip.track:
            self.observe_position(trip.mmsi, pos.lat, pos.lon,
                                  pos.sog, pos.cog)

    def cell_stats(self, cell: int) -> CellStats | None:
        return self._cells.get(cell)

    def stats_at(self, lat: float, lon: float) -> CellStats | None:
        return self._cells.get(latlng_to_cell(lat, lon, self.resolution))

    def active_cells(self) -> list[int]:
        return sorted(self._cells)

    def in_bbox(self, bbox: BoundingBox) -> list[CellStats]:
        """Statistics for every active cell whose centre falls in ``bbox``
        — the area-inspection query behind Figure 4b."""
        out = []
        for cell, stats in self._cells.items():
            lat, lon = cell_to_latlng(cell)
            if bbox.contains(lat, lon):
                out.append(stats)
        return sorted(out, key=lambda s: -s.visits)

    def busiest_cells(self, k: int = 10) -> list[CellStats]:
        return sorted(self._cells.values(), key=lambda s: -s.visits)[:k]

    def __len__(self) -> int:
        return len(self._cells)
