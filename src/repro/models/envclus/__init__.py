"""The long-term Vessel Route Forecasting model (EnvClus* [34, 35]).

Section 4.1 of the paper: historical AIS positions are clustered into common
pathways, the pathways become a weighted transitions graph per
origin-destination port pair, junction nodes carry classifiers over vessel
features, and route forecasts are most-probable paths through the graph.
Aggregated "Patterns of Life" statistics summarise historical traffic per
spatial cell.

The paper consumes EnvClus* through an external API; this package implements
the algorithm itself so the platform is self-contained:

* :mod:`repro.models.envclus.clustering` — map historical trips onto the hex
  grid and accumulate pathway statistics,
* :mod:`repro.models.envclus.graph` — the weighted transition graph and
  most-probable-path search,
* :mod:`repro.models.envclus.junctions` — multinomial logistic classifiers
  choosing the outgoing branch at route junctions from vessel features,
* :mod:`repro.models.envclus.forecaster` — the user-facing L-VRF model,
* :mod:`repro.models.envclus.patterns` — Patterns-of-Life statistics.
"""

from repro.models.envclus.clustering import Trip, TripCorpus
from repro.models.envclus.forecaster import LVRFForecast, LVRFModel
from repro.models.envclus.graph import TransitionGraph
from repro.models.envclus.junctions import JunctionClassifier
from repro.models.envclus.patterns import CellStats, PatternsOfLife

__all__ = [
    "CellStats",
    "JunctionClassifier",
    "LVRFForecast",
    "LVRFModel",
    "PatternsOfLife",
    "TransitionGraph",
    "Trip",
    "TripCorpus",
]
