"""Junction classifiers over vessel features.

"Vessel-specific information is utilized to generate the best-suited
forecasts for each query, by enhancing the graph with classification models
in significant graph nodes (route junctions). Features may include the
vessel type, length, draught, deadweight tonnage (DWT) or trip related
information" (Section 4.1).

The classifier is a from-scratch multinomial logistic regression (numpy,
full-batch gradient descent with L2 shrinkage) predicting which outgoing
branch a vessel will take at a junction given its feature vector.
"""

from __future__ import annotations

import numpy as np


class JunctionClassifier:
    """Multinomial logistic regression over junction branches."""

    def __init__(self, l2: float = 1e-3, lr: float = 0.1,
                 epochs: int = 300, seed: int = 0) -> None:
        self.l2 = l2
        self.lr = lr
        self.epochs = epochs
        self.seed = seed
        self.classes_: list[int] | None = None
        self._w: np.ndarray | None = None
        self._b: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def fit(self, x: np.ndarray, branches: list[int]) -> "JunctionClassifier":
        """Train on vessel feature rows ``x`` and the branch (next cell)
        each vessel historically took."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] != len(branches):
            raise ValueError("x must be (n, features) matching branches")
        self.classes_ = sorted(set(branches))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        y = np.array([class_index[b] for b in branches])

        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        xs = (x - self._mean) / self._std

        n, d = xs.shape
        k = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self._w = rng.normal(0.0, 0.01, size=(d, k))
        self._b = np.zeros(k)
        onehot = np.eye(k)[y]
        for _ in range(self.epochs):
            p = self._softmax(xs @ self._w + self._b)
            grad_w = xs.T @ (p - onehot) / n + self.l2 * self._w
            grad_b = (p - onehot).mean(axis=0)
            self._w -= self.lr * grad_w
            self._b -= self.lr * grad_b
        return self

    def _check(self) -> None:
        if self._w is None:
            raise RuntimeError("classifier is not fitted")

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Branch probabilities ``(n, n_branches)`` in ``classes_`` order."""
        self._check()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        xs = (x - self._mean) / self._std
        return self._softmax(xs @ self._w + self._b)

    def predict(self, x: np.ndarray) -> list[int]:
        """Most likely branch (next cell) per row."""
        proba = self.predict_proba(x)
        return [self.classes_[i] for i in proba.argmax(axis=1)]

    def accuracy(self, x: np.ndarray, branches: list[int]) -> float:
        return float(np.mean([p == b for p, b in
                              zip(self.predict(x), branches)]))
