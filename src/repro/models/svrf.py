"""The Short-term Vessel Route Forecasting (S-VRF) model.

Architecture per Figure 3 of the paper: one input layer consuming the fixed
tensor of 20 past spatiotemporal displacements, one BiLSTM layer, one fully
connected layer, and an output layer producing six (Δlat, Δlon) transitions
at 5-minute intervals up to the 30-minute horizon. The BiLSTM carries the
paper's L1 in-layer regularisation.

The class covers the model's full lifecycle as the platform uses it:
training from a :class:`~repro.ais.preprocessing.SegmentDataset`, batch
prediction for evaluation, a single-vessel :meth:`forecast` used at the
actor level ("the short-term vessel route forecasting model is mounted only
once in memory, serving simultaneously the requirements of each vessel
actor", Section 3), and ``.npz`` persistence so the platform can mount a
pre-trained model at initialisation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.ais.preprocessing import (
    INPUT_STEPS,
    OUTPUT_INTERVAL_S,
    OUTPUT_STEPS,
    SegmentDataset,
)
from repro.geo.track import Position
from repro.ml import (
    LSTM,
    Bidirectional,
    Dense,
    L1Regularizer,
    Model,
    StandardScaler,
)
from repro.ml.network import TrainingHistory
from repro.models.base import RouteForecast, forecast_mark_times

#: Input features per displacement step: (Δlat, Δlon, Δt).
N_FEATURES = 3


@dataclass(frozen=True)
class SVRFConfig:
    """Hyperparameters of the integrated S-VRF model.

    Defaults reflect the paper's constraints: small enough to mount once in
    memory and share across every vessel actor, with the fixed 20-step
    input / 6-transition output contract of Figure 3.
    """

    hidden: int = 48
    dense: int = 64
    l1_lambda: float = 1e-6
    seed: int = 0
    input_steps: int = INPUT_STEPS
    output_steps: int = OUTPUT_STEPS
    #: Figure 3 uses a BiLSTM; the unidirectional variant exists for the
    #: BiLSTM-vs-LSTM ablation the paper's design change motivates.
    bidirectional: bool = True


class SVRFModel:
    """BiLSTM route forecaster with feature/target standardisation."""

    def __init__(self, config: SVRFConfig | None = None) -> None:
        self.config = config or SVRFConfig()
        cfg = self.config
        if cfg.bidirectional:
            recurrent = Bidirectional(N_FEATURES, cfg.hidden, seed=cfg.seed)
            recurrent_out = 2 * cfg.hidden
        else:
            recurrent = LSTM(N_FEATURES, cfg.hidden, seed=cfg.seed)
            recurrent_out = cfg.hidden
        self.network = Model(
            layers=[
                recurrent,
                Dense(recurrent_out, cfg.dense, activation="tanh",
                      seed=cfg.seed + 10),
                Dense(cfg.dense, cfg.output_steps * 2, seed=cfg.seed + 20),
            ],
            regularizers={0: L1Regularizer(cfg.l1_lambda)})
        self.x_scaler = StandardScaler()
        self.y_scaler = StandardScaler()
        self.trained = False

    # -- training ------------------------------------------------------------

    def fit(self, train: SegmentDataset, val: SegmentDataset | None = None,
            epochs: int = 25, batch_size: int = 128, lr: float = 2e-3,
            patience: int | None = 6, verbose: bool = False
            ) -> TrainingHistory:
        """Train on preprocessed segments; scalers are fitted on the
        training split only."""
        if len(train) == 0:
            raise ValueError("training dataset is empty")
        x = self.x_scaler.fit_transform(train.x)
        y = self.y_scaler.fit_transform(
            train.y.reshape(len(train), -1))
        x_val = y_val = None
        if val is not None and len(val):
            x_val = self.x_scaler.transform(val.x)
            y_val = self.y_scaler.transform(val.y.reshape(len(val), -1))
        history = self.network.fit(x, y, x_val, y_val, epochs=epochs,
                                   batch_size=batch_size, lr=lr,
                                   patience=patience, verbose=verbose)
        self.trained = True
        return history

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("S-VRF model is not trained/loaded")

    # -- batch prediction ---------------------------------------------------------

    def predict_transitions(self, x: np.ndarray) -> np.ndarray:
        """Predicted transitions ``(n, OUTPUT_STEPS, 2)`` in degrees from a
        raw (unscaled) input tensor ``(n, INPUT_STEPS, 3)``."""
        self._require_trained()
        if x.ndim != 3 or x.shape[1:] != (self.config.input_steps, N_FEATURES):
            raise ValueError(
                f"expected (n, {self.config.input_steps}, {N_FEATURES}), "
                f"got {x.shape}")
        z = self.network.predict(self.x_scaler.transform(x))
        y = self.y_scaler.inverse_transform(z)
        return y.reshape(-1, self.config.output_steps, 2)

    def predict_positions(self, anchor: np.ndarray, x: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Predicted absolute positions at the six 5-minute marks.

        Transitions are cumulatively summed from the anchor position —
        the inverse of the target construction in preprocessing.
        """
        transitions = self.predict_transitions(x)
        lat = anchor[:, 1:2] + np.cumsum(transitions[:, :, 0], axis=1)
        lon = anchor[:, 2:3] + np.cumsum(transitions[:, :, 1], axis=1)
        return lat, lon

    # -- actor-level single-vessel forecast -----------------------------------------

    def make_window(self, ts: np.ndarray, lats: np.ndarray,
                    lons: np.ndarray, pad: bool = False) -> np.ndarray:
        """The ``(input_steps, 3)`` displacement window for one vessel.

        Takes the vessel's recent fixes as parallel arrays (oldest first;
        only the last ``input_steps + 1`` are used). With ``pad=True``
        shorter histories (two fixes upward) are accepted and the missing
        leading displacements stay zero — the "variable filling" of the
        original variable-length formulation [4].
        """
        steps = self.config.input_steps
        min_needed = 2 if pad else steps + 1
        if len(ts) < min_needed:
            raise ValueError(
                f"S-VRF needs {min_needed} fixes, got {len(ts)}")
        keep = min(len(ts), steps + 1)
        ts, lats, lons = ts[-keep:], lats[-keep:], lons[-keep:]
        window = np.zeros((steps, N_FEATURES))
        window[steps - (keep - 1):, 0] = lats[1:] - lats[:-1]
        window[steps - (keep - 1):, 1] = lons[1:] - lons[:-1]
        window[steps - (keep - 1):, 2] = ts[1:] - ts[:-1]
        return window

    def forecast_batch(self, mmsis: Sequence[int], windows: np.ndarray,
                       anchors: Sequence[Position]) -> list[RouteForecast]:
        """Forecasts for many vessels from one pooled forward pass.

        ``windows`` is the stacked ``(n, input_steps, 3)`` tensor of
        :meth:`make_window` rows and ``anchors`` each vessel's latest fix.
        One batched matmul serves the whole fleet; per-row results are
        bitwise identical to :meth:`forecast` (see ``Model.predict``).
        """
        transitions = self.predict_transitions(windows)
        out = []
        for i, (mmsi, anchor) in enumerate(zip(mmsis, anchors)):
            positions = [anchor]
            lat, lon = anchor.lat, anchor.lon
            for k, t in enumerate(forecast_mark_times(anchor.t)):
                lat = lat + transitions[i, k, 0]
                lon = lon + transitions[i, k, 1]
                positions.append(Position(t=t, lat=lat, lon=lon))
            out.append(RouteForecast(mmsi=mmsi, positions=tuple(positions)))
        return out

    def forecast(self, mmsi: int, history: Sequence[Position],
                 pad: bool = False) -> RouteForecast:
        """Forecast for one vessel from its recent downsampled fixes.

        Needs ``input_steps + 1`` fixes (20 displacements); this is the call
        each vessel actor makes per ingested AIS message. With ``pad=True``
        shorter histories (two fixes upward) are accepted and the missing
        leading displacements are zero-filled, so newly appeared vessels
        forecast before their window fills (prediction quality degrades
        gracefully until it does). Delegates to :meth:`forecast_batch` with
        a single-row batch, so per-vessel and pooled fleet-wide inference
        produce bitwise-identical forecasts.
        """
        need = self.config.input_steps + 1
        recent = list(history[-need:])
        lats = np.array([p.lat for p in recent])
        lons = np.array([p.lon for p in recent])
        ts = np.array([p.t for p in recent])
        window = self.make_window(ts, lats, lons, pad=pad)
        return self.forecast_batch(
            [mmsi], window[np.newaxis, :, :], [recent[-1]])[0]

    @property
    def min_history(self) -> int:
        """Minimum fixes :meth:`forecast` requires."""
        return self.config.input_steps + 1

    @property
    def window_size(self) -> int:
        """Displacement steps per :meth:`make_window` row (pooled
        inference preallocates its batch buffer from this)."""
        return self.config.input_steps

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist weights, scalers and config to one ``.npz`` file."""
        self._require_trained()
        flat = {f"net_{i}__{name}": arr
                for i, layer in enumerate(self.network.layers)
                for name, arr in layer.params.items()}
        flat["x_mean"] = self.x_scaler.mean_
        flat["x_std"] = self.x_scaler.std_
        flat["y_mean"] = self.y_scaler.mean_
        flat["y_std"] = self.y_scaler.std_
        cfg = asdict(self.config)
        flat["config_keys"] = np.array(sorted(cfg), dtype="U32")
        flat["config_values"] = np.array(
            [float(cfg[k]) for k in sorted(cfg)])
        np.savez_compressed(path, **flat)

    @classmethod
    def load(cls, path: str | Path) -> "SVRFModel":
        data = np.load(path)
        cfg_map = dict(zip(data["config_keys"].tolist(),
                           data["config_values"].tolist()))
        config = SVRFConfig(
            hidden=int(cfg_map["hidden"]), dense=int(cfg_map["dense"]),
            l1_lambda=float(cfg_map["l1_lambda"]), seed=int(cfg_map["seed"]),
            input_steps=int(cfg_map["input_steps"]),
            output_steps=int(cfg_map["output_steps"]),
            bidirectional=bool(cfg_map.get("bidirectional", 1.0)))
        model = cls(config)
        for key in data.files:
            if not key.startswith("net_"):
                continue
            idx_text, name = key[len("net_"):].split("__", 1)
            model.network.layers[int(idx_text)].params[name][...] = data[key]
        model.x_scaler = StandardScaler.from_state(
            {"mean": data["x_mean"], "std": data["x_std"]})
        model.y_scaler = StandardScaler.from_state(
            {"mean": data["y_mean"], "std": data["y_std"]})
        model.trained = True
        return model


def train_svrf(train: SegmentDataset, val: SegmentDataset,
               config: SVRFConfig | None = None, epochs: int = 25,
               lr: float = 2e-3, cache_path: str | Path | None = None,
               verbose: bool = False) -> SVRFModel:
    """Train (or load a cached) S-VRF model.

    ``cache_path`` makes the expensive training step idempotent for the
    benchmark harness: if the file exists it is loaded, otherwise the model
    is trained and saved there.
    """
    if cache_path is not None:
        cache_path = Path(cache_path)
        if cache_path.exists():
            return SVRFModel.load(cache_path)
    model = SVRFModel(config)
    model.fit(train, val, epochs=epochs, lr=lr, verbose=verbose)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        model.save(cache_path)
    return model
