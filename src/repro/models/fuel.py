"""Fuel-burn model: speed and heading against wind, current, and waves.

A deliberately small resistance model in the spirit of the
Voyage_Optimization exemplar: calm-water burn grows with the cube of the
speed *through water*, and the weather adds three penalty terms —

* added wave resistance, ``wave_coeff * stw * wave_height**2``,
* head-wind drag, ``wind_coeff * stw * head * |head|`` (signed: a
  tailwind gives relief, a headwind costs), and
* crosswind leeway, ``cross_coeff * stw * cross**2`` (symmetric: a
  starboard crosswind costs exactly what the mirrored port one does).

The property suite pins the three structural facts the optimiser relies
on: burn is strictly positive, strictly increasing in the head-wind
component, and symmetric under mirrored crosswind. The coefficients are
sized so the signed wind term can never drag the unclamped burn below the
idle floor within the model's physical envelope (|wind| <= ~25 m/s,
speed <= ~25 kn): the calm-water minimum of ``base + hull*stw^3 -
wind_coeff*25^2*stw`` stays well above ``idle_floor_kg_h``, which keeps
the clamp from ever flattening the monotonicity.

All pure functions of their arguments — no RNG, no clock — so every
planner decision replays bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.constants import KNOTS_TO_MPS
from repro.weather.field import WeatherSample


@dataclass(frozen=True)
class FuelModel:
    """Hourly fuel burn (kg/h) for a vessel moving through weather."""

    base_kg_h: float = 40.0      #: hotel load + machinery at any speed
    hull_coeff: float = 0.09     #: calm-water cubic drag, kg/h per kn^3
    wave_coeff: float = 0.8      #: added wave resistance, per kn*m^2
    wind_coeff: float = 0.01     #: signed head-wind drag, per kn*(m/s)^2
    cross_coeff: float = 0.01    #: crosswind leeway, per kn*(m/s)^2
    idle_floor_kg_h: float = 5.0  #: burn never reported below this

    def __post_init__(self) -> None:
        for name in ("base_kg_h", "hull_coeff", "wave_coeff",
                     "wind_coeff", "cross_coeff", "idle_floor_kg_h"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # -- wind decomposition ----------------------------------------------------------

    @staticmethod
    def wind_components(heading_deg: float,
                        weather: WeatherSample) -> tuple[float, float]:
        """``(headwind, crosswind)`` in m/s for a vessel on
        ``heading_deg``. Headwind is positive when the wind opposes the
        motion; crosswind is signed (port/starboard) but only its square
        ever enters the burn."""
        heading = math.radians(heading_deg)
        # Unit vector the bow points along (east, north) components.
        ahead_e, ahead_n = math.sin(heading), math.cos(heading)
        headwind = -(weather.wind_u_mps * ahead_e
                     + weather.wind_v_mps * ahead_n)
        crosswind = (weather.wind_u_mps * ahead_n
                     - weather.wind_v_mps * ahead_e)
        return headwind, crosswind

    @staticmethod
    def speed_through_water_kn(sog_kn: float, heading_deg: float,
                               weather: WeatherSample) -> float:
        """Speed through water: speed over ground minus the along-track
        current, clamped at bare steerage so a following current never
        reports a negative waterspeed."""
        heading = math.radians(heading_deg)
        ahead_e, ahead_n = math.sin(heading), math.cos(heading)
        current_along_mps = (weather.current_u_mps * ahead_e
                             + weather.current_v_mps * ahead_n)
        stw = sog_kn - current_along_mps / KNOTS_TO_MPS
        return max(stw, 0.5)

    # -- burn ------------------------------------------------------------------------

    def burn_rate_kg_h(self, sog_kn: float, heading_deg: float,
                       weather: WeatherSample) -> float:
        """Instantaneous burn for ``sog_kn`` over ground on
        ``heading_deg`` through ``weather``."""
        if sog_kn < 0:
            raise ValueError("sog_kn must be non-negative")
        stw = self.speed_through_water_kn(sog_kn, heading_deg, weather)
        headwind, crosswind = self.wind_components(heading_deg, weather)
        burn = (self.base_kg_h
                + self.hull_coeff * stw ** 3
                + self.wave_coeff * stw * weather.wave_height_m ** 2
                + self.wind_coeff * stw * headwind * abs(headwind)
                + self.cross_coeff * stw * crosswind ** 2)
        return max(burn, self.idle_floor_kg_h)

    def leg_fuel_kg(self, distance_m: float, sog_kn: float,
                    heading_deg: float, weather: WeatherSample) -> float:
        """Fuel for one constant-weather leg of ``distance_m`` metres."""
        if distance_m < 0:
            raise ValueError("distance_m must be non-negative")
        if distance_m == 0.0:
            return 0.0
        if sog_kn <= 0:
            raise ValueError("a finite leg needs sog_kn > 0")
        hours = distance_m / (sog_kn * KNOTS_TO_MPS) / 3600.0
        return self.burn_rate_kg_h(sog_kn, heading_deg, weather) * hours
