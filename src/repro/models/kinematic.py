"""The linear kinematic baseline.

Section 6.1: "a simple linear kinematic model which utilizes the last
reported AIS position, reported AIS speed (knots) and course (°) to predict
future vessel positions in the same time horizons". This is also the model
class that present VTMS/VTMIS systems rely on, per the paper's introduction
— which is why it is the comparison baseline for both Table 1 and Table 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ais.preprocessing import OUTPUT_INTERVAL_S, OUTPUT_STEPS
from repro.geo.constants import KNOTS_TO_MPS
from repro.geo.geodesy import destination_point
from repro.geo.track import Position
from repro.models.base import RouteForecast, forecast_mark_times


class LinearKinematicModel:
    """Dead reckoning from the last reported position, SOG and COG."""

    #: A single fix suffices — the model only uses the last report.
    min_history = 1
    #: No displacement window: pooled inference batches anchors only.
    window_size = 0

    def forecast(self, mmsi: int, history: Sequence[Position]) -> RouteForecast:
        if not history:
            raise ValueError("linear kinematic model needs at least one fix")
        return self.forecast_batch([mmsi], None, [history[-1]])[0]

    def forecast_batch(self, mmsis: Sequence[int], windows,
                       anchors: Sequence[Position]) -> list[RouteForecast]:
        """Vectorised dead reckoning over many vessels' latest fixes.

        ``windows`` is accepted for forecaster-protocol parity and ignored.
        The scalar :meth:`forecast` delegates here, so per-vessel and
        pooled fleet-wide forecasts are bitwise identical.
        """
        del windows
        for anchor in anchors:
            if anchor.sog is None or anchor.cog is None:
                raise ValueError("last fix must carry SOG and COG")
        lat0 = np.array([a.lat for a in anchors])
        lon0 = np.array([a.lon for a in anchors])
        cog = np.array([a.cog for a in anchors])
        speed_mps = np.array([a.sog for a in anchors]) * KNOTS_TO_MPS
        lats = np.empty((len(anchors), OUTPUT_STEPS))
        lons = np.empty_like(lats)
        for k in range(1, OUTPUT_STEPS + 1):
            lat_k, lon_k = destination_point(
                lat0, lon0, cog, speed_mps * OUTPUT_INTERVAL_S * k)
            lats[:, k - 1] = lat_k
            lons[:, k - 1] = lon_k
        out = []
        for i, (mmsi, anchor) in enumerate(zip(mmsis, anchors)):
            positions = [anchor]
            for k, t in enumerate(forecast_mark_times(anchor.t)):
                positions.append(Position(t=t, lat=lats[i, k],
                                          lon=lons[i, k],
                                          sog=anchor.sog, cog=anchor.cog))
            out.append(RouteForecast(mmsi=mmsi, positions=tuple(positions)))
        return out

    def predict_positions(self, anchor: np.ndarray, x: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised dead reckoning over segment anchors.

        ``x`` (the displacement history) is accepted for interface parity
        and ignored — the kinematic model sees only the last report.
        """
        del x
        lat0, lon0 = anchor[:, 1], anchor[:, 2]
        sog, cog = anchor[:, 3], anchor[:, 4]
        speed_mps = sog * KNOTS_TO_MPS
        lats = np.empty((anchor.shape[0], OUTPUT_STEPS))
        lons = np.empty_like(lats)
        for k in range(1, OUTPUT_STEPS + 1):
            lat_k, lon_k = destination_point(
                lat0, lon0, cog, speed_mps * OUTPUT_INTERVAL_S * k)
            lats[:, k - 1] = lat_k
            lons[:, k - 1] = lon_k
        return lats, lons
