"""The linear kinematic baseline.

Section 6.1: "a simple linear kinematic model which utilizes the last
reported AIS position, reported AIS speed (knots) and course (°) to predict
future vessel positions in the same time horizons". This is also the model
class that present VTMS/VTMIS systems rely on, per the paper's introduction
— which is why it is the comparison baseline for both Table 1 and Table 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ais.preprocessing import OUTPUT_INTERVAL_S, OUTPUT_STEPS
from repro.geo.constants import KNOTS_TO_MPS
from repro.geo.geodesy import destination_point
from repro.geo.track import Position
from repro.models.base import RouteForecast, forecast_mark_times


class LinearKinematicModel:
    """Dead reckoning from the last reported position, SOG and COG."""

    #: A single fix suffices — the model only uses the last report.
    min_history = 1

    def forecast(self, mmsi: int, history: Sequence[Position]) -> RouteForecast:
        if not history:
            raise ValueError("linear kinematic model needs at least one fix")
        last = history[-1]
        if last.sog is None or last.cog is None:
            raise ValueError("last fix must carry SOG and COG")
        speed_mps = last.sog * KNOTS_TO_MPS
        positions = [last]
        for k, t in enumerate(forecast_mark_times(last.t), start=1):
            lat, lon = destination_point(last.lat, last.lon, last.cog,
                                         speed_mps * OUTPUT_INTERVAL_S * k)
            positions.append(Position(t=t, lat=lat, lon=lon,
                                      sog=last.sog, cog=last.cog))
        return RouteForecast(mmsi=mmsi, positions=tuple(positions))

    def predict_positions(self, anchor: np.ndarray, x: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised dead reckoning over segment anchors.

        ``x`` (the displacement history) is accepted for interface parity
        and ignored — the kinematic model sees only the last report.
        """
        del x
        lat0, lon0 = anchor[:, 1], anchor[:, 2]
        sog, cog = anchor[:, 3], anchor[:, 4]
        speed_mps = sog * KNOTS_TO_MPS
        lats = np.empty((anchor.shape[0], OUTPUT_STEPS))
        lons = np.empty_like(lats)
        for k in range(1, OUTPUT_STEPS + 1):
            lat_k, lon_k = destination_point(
                lat0, lon0, cog, speed_mps * OUTPUT_INTERVAL_S * k)
            lats[:, k - 1] = lat_k
            lons[:, k - 1] = lon_k
        return lats, lons
