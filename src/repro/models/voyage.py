"""Weather-aware voyage planning and the plan-vs-actual twin.

Pure functions over :class:`~repro.weather.forecast.ForecastingWeatherField`
and :class:`~repro.models.fuel.FuelModel` — the deterministic core the
:class:`~repro.platform.route_optimizer.RouteOptimizerService` pools and
the voyage benchmark sweeps. Two halves:

* :func:`plan_voyage` — the optimiser. Plans the remaining waypoints
  against *forecasts* from the product issued at ``issue_time(sample_t)``:
  per leg it considers the direct track plus storm-dodging dog-legs
  (lateral offsets at the leg midpoint, only when the forecast along the
  direct track looks rough) and a ladder of speed multipliers, integrates
  forecast fuel along each candidate, and keeps the cheapest candidate
  that still fits the leg's share of the remaining deadline budget.

* :func:`simulate_voyage` — the twin. Sails the planned geometry at the
  planned speeds through the *actual* weather field, accumulating the
  fuel really burned, and replans the remaining waypoints every
  ``cadence_s`` (``None`` = plan once and never look back — the
  no-replanning baseline). The gap between a 1 h and a 12 h cadence is
  exactly the staleness cost the exemplar's experiment B measures.

Replan instants are *bucket-quantised* (a replan fires when stream time
crosses a multiple of the cadence), so the sequence of plans a voyage sees
is a pure function of ``(field seed, route, cadence)`` — independent of
how the surrounding platform batches, crashes, or migrates shards.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from repro.geo.constants import KNOTS_TO_MPS
from repro.geo.geodesy import (
    destination_point,
    haversine_m,
    initial_bearing_deg,
    midpoint,
)
from repro.models.fuel import FuelModel
from repro.weather.forecast import ForecastingWeatherField


@dataclass(frozen=True)
class Waypoint:
    """A (lat, lon) mark on the route."""

    lat: float
    lon: float


@dataclass(frozen=True)
class PlanLeg:
    """One planned leg: the path to sail and the speed to sail it at.

    ``path`` holds the start point, any dog-leg pivot, and the target
    waypoint; a direct leg has exactly two points.
    """

    path: tuple[Waypoint, ...]
    sog_kn: float
    distance_m: float
    duration_s: float
    fuel_kg: float      #: forecast fuel for the leg
    diverted: bool      #: True when a dog-leg beat the direct track


@dataclass(frozen=True)
class VoyagePlan:
    """The optimiser's answer for the remaining waypoints."""

    origin: Waypoint
    legs: tuple[PlanLeg, ...]
    planned_t: float      #: stream time the plan was computed at
    issued_t: float       #: forecast product issue the plan used
    depart_t: float
    eta_t: float
    deadline_t: float
    fuel_kg: float        #: forecast fuel for the whole remaining route
    diverted: bool        #: any leg dog-legged around forecast weather
    feasible: bool        #: eta_t <= deadline_t

    @property
    def eta_slack_s(self) -> float:
        """Seconds of margin before the deadline (negative = late)."""
        return self.deadline_t - self.eta_t

    def fingerprint(self) -> str:
        """Stable digest of the planned geometry and speeds — equal
        fingerprints mean bitwise-equal routing decisions, which is what
        the fault-injection campaign compares across crash/migration."""
        payload = {
            "issued_t": round(self.issued_t, 6),
            "eta_t": round(self.eta_t, 3),
            "fuel_kg": round(self.fuel_kg, 6),
            "legs": [
                {
                    "path": [(round(p.lat, 9), round(p.lon, 9)) for p in leg.path],
                    "sog_kn": round(leg.sog_kn, 6),
                }
                for leg in self.legs
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class VoyageOutcome:
    """What the twin measured sailing one voyage at one cadence."""

    planned_fuel_kg: float   #: the departure plan's forecast fuel
    actual_fuel_kg: float    #: fuel actually burned through the truth field
    planned_eta_t: float
    arrival_t: float
    distance_m: float
    replans: int
    diversions: int          #: plans (initial or re-) that dog-legged


# -- planning -----------------------------------------------------------------------


def _leg_candidates(
    field: ForecastingWeatherField,
    start: Waypoint,
    end: Waypoint,
    sample_t: float,
    eta_guess_t: float,
    offset_fraction: float,
) -> list[tuple[Waypoint, ...]]:
    """Candidate geometries for one leg: direct, plus port/starboard
    dog-legs when the forecast along the direct track looks rough."""
    candidates: list[tuple[Waypoint, ...]] = [(start, end)]
    if offset_fraction <= 0.0:
        return candidates
    distance = haversine_m(start.lat, start.lon, end.lat, end.lon)
    if distance <= 0.0:
        return candidates
    mid_lat, mid_lon = midpoint(start.lat, start.lon, end.lat, end.lon)
    rough = any(
        field.forecast_at(lat, lon, sample_t, t).is_rough
        for lat, lon, t in (
            (start.lat, start.lon, sample_t),
            (mid_lat, mid_lon, (sample_t + eta_guess_t) / 2.0),
            (end.lat, end.lon, eta_guess_t),
        )
    )
    if not rough:
        return candidates
    bearing = initial_bearing_deg(start.lat, start.lon, end.lat, end.lon)
    offset_m = offset_fraction * distance
    for side in (90.0, -90.0):
        pivot_lat, pivot_lon = destination_point(mid_lat, mid_lon, bearing + side, offset_m)
        candidates.append((start, Waypoint(pivot_lat, pivot_lon), end))
    return candidates


def _integrate_leg(
    field: ForecastingWeatherField,
    fuel_model: FuelModel,
    path: tuple[Waypoint, ...],
    sog_kn: float,
    sample_t: float,
    start_t: float,
    sample_step_s: float,
) -> tuple[float, float, float]:
    """Forecast ``(fuel_kg, duration_s, distance_m)`` sailing ``path`` at
    ``sog_kn``, sampling the forecast product every ``sample_step_s``."""
    fuel = 0.0
    t = start_t
    total_distance = 0.0
    sog_mps = sog_kn * KNOTS_TO_MPS
    for seg_start, seg_end in zip(path, path[1:]):
        seg_dist = haversine_m(seg_start.lat, seg_start.lon, seg_end.lat, seg_end.lon)
        if seg_dist <= 0.0:
            continue
        heading = initial_bearing_deg(seg_start.lat, seg_start.lon, seg_end.lat, seg_end.lon)
        travelled = 0.0
        while travelled < seg_dist:
            step_dist = min(sog_mps * sample_step_s, seg_dist - travelled)
            dt = step_dist / sog_mps
            mid_dist = travelled + step_dist / 2.0
            lat, lon = destination_point(seg_start.lat, seg_start.lon, heading, mid_dist)
            wx = field.forecast_at(lat, lon, sample_t, t + dt / 2.0)
            fuel += fuel_model.burn_rate_kg_h(sog_kn, heading, wx) * (dt / 3600.0)
            travelled += step_dist
            t += dt
        total_distance += seg_dist
    return fuel, t - start_t, total_distance


def plan_voyage(
    field: ForecastingWeatherField,
    fuel_model: FuelModel,
    origin: Waypoint,
    waypoints: tuple[Waypoint, ...],
    sample_t: float,
    depart_t: float,
    deadline_t: float,
    base_speed_kn: float = 12.0,
    speed_candidates: tuple[float, ...] = (0.7, 0.85, 1.0, 1.15, 1.3),
    offset_fraction: float = 0.25,
    sample_step_s: float = 3600.0,
) -> VoyagePlan:
    """Plan the remaining ``waypoints`` from ``origin`` against the
    forecast product issued at ``issue_time(sample_t)``.

    Greedy per leg: each leg gets a share of the remaining deadline
    budget proportional to its direct distance; among the candidate
    (geometry, speed) pairs that fit the budget the cheapest forecast
    fuel wins, with the fastest candidate as the infeasible fallback.
    Pure and deterministic for fixed arguments.
    """
    if not waypoints:
        raise ValueError("plan_voyage needs at least one waypoint")
    if base_speed_kn <= 0:
        raise ValueError("base_speed_kn must be positive")
    direct = [
        haversine_m(a.lat, a.lon, b.lat, b.lon)
        for a, b in zip((origin,) + waypoints, waypoints)
    ]
    remaining_direct = sum(direct)
    legs: list[PlanLeg] = []
    here = origin
    t = depart_t
    total_fuel = 0.0
    for target, leg_direct in zip(waypoints, direct):
        budget = (
            (deadline_t - t) * (leg_direct / remaining_direct)
            if remaining_direct > 0.0
            else deadline_t - t
        )
        eta_guess = t + (leg_direct / (base_speed_kn * KNOTS_TO_MPS) if leg_direct else 0.0)
        geometries = _leg_candidates(field, here, target, sample_t, eta_guess, offset_fraction)
        best: PlanLeg | None = None
        fastest: PlanLeg | None = None
        for path in geometries:
            for multiplier in speed_candidates:
                sog = base_speed_kn * multiplier
                fuel, duration, distance = _integrate_leg(
                    field, fuel_model, path, sog, sample_t, t, sample_step_s
                )
                leg = PlanLeg(
                    path=path,
                    sog_kn=sog,
                    distance_m=distance,
                    duration_s=duration,
                    fuel_kg=fuel,
                    diverted=len(path) > 2,
                )
                if fastest is None or leg.duration_s < fastest.duration_s:
                    fastest = leg
                if leg.duration_s <= budget and (best is None or leg.fuel_kg < best.fuel_kg):
                    best = leg
        chosen = best if best is not None else fastest
        assert chosen is not None
        legs.append(chosen)
        total_fuel += chosen.fuel_kg
        t += chosen.duration_s
        here = target
        remaining_direct -= leg_direct
    return VoyagePlan(
        origin=origin,
        legs=tuple(legs),
        planned_t=sample_t,
        issued_t=field.issue_time(sample_t),
        depart_t=depart_t,
        eta_t=t,
        deadline_t=deadline_t,
        fuel_kg=total_fuel,
        diverted=any(leg.diverted for leg in legs),
        feasible=t <= deadline_t,
    )


# -- the plan-vs-actual twin --------------------------------------------------------


def _crossed_bucket(last_t: float, t: float, cadence_s: float) -> bool:
    """True when stream time crossed a replan boundary since ``last_t``."""
    if last_t == -math.inf:
        return True
    return int(t // cadence_s) > int(last_t // cadence_s)


def simulate_voyage(
    field: ForecastingWeatherField,
    fuel_model: FuelModel,
    origin: Waypoint,
    waypoints: tuple[Waypoint, ...],
    depart_t: float,
    deadline_t: float,
    base_speed_kn: float = 12.0,
    cadence_s: float | None = None,
    speed_candidates: tuple[float, ...] = (0.7, 0.85, 1.0, 1.15, 1.3),
    offset_fraction: float = 0.25,
    sample_step_s: float = 3600.0,
    max_steps: int = 200_000,
) -> VoyageOutcome:
    """Sail the route with rolling-horizon replanning every ``cadence_s``
    (``None`` = plan once at departure), burning fuel through the
    *actual* weather while every plan only ever saw forecasts."""

    def make_plan(here: Waypoint, remaining: tuple[Waypoint, ...], t: float) -> VoyagePlan:
        return plan_voyage(
            field,
            fuel_model,
            here,
            remaining,
            sample_t=t,
            depart_t=t,
            deadline_t=deadline_t,
            base_speed_kn=base_speed_kn,
            speed_candidates=speed_candidates,
            offset_fraction=offset_fraction,
            sample_step_s=sample_step_s,
        )

    remaining = tuple(waypoints)
    here = origin
    t = depart_t
    plan = make_plan(here, remaining, t)
    planned_fuel = plan.fuel_kg
    planned_eta = plan.eta_t
    last_plan_t = t
    replans = 0
    diversions = 1 if plan.diverted else 0
    actual_fuel = 0.0
    distance = 0.0
    steps = 0
    while remaining:
        steps += 1
        if steps > max_steps:
            raise RuntimeError("simulate_voyage failed to converge")
        leg = plan.legs[0]
        sog_mps = leg.sog_kn * KNOTS_TO_MPS
        replanned = False
        for seg_start, seg_end in zip(leg.path, leg.path[1:]):
            seg_dist = haversine_m(seg_start.lat, seg_start.lon, seg_end.lat, seg_end.lon)
            if seg_dist <= 0.0:
                continue
            heading = initial_bearing_deg(
                seg_start.lat, seg_start.lon, seg_end.lat, seg_end.lon
            )
            travelled = 0.0
            while travelled < seg_dist:
                step_dist = min(sog_mps * sample_step_s, seg_dist - travelled)
                dt = step_dist / sog_mps
                mid = travelled + step_dist / 2.0
                lat, lon = destination_point(seg_start.lat, seg_start.lon, heading, mid)
                wx = field.actual(lat, lon, t + dt / 2.0)
                actual_fuel += fuel_model.burn_rate_kg_h(leg.sog_kn, heading, wx) * (
                    dt / 3600.0
                )
                travelled += step_dist
                distance += step_dist
                t += dt
                if (
                    cadence_s is not None
                    and _crossed_bucket(last_plan_t, t, cadence_s)
                    and travelled < seg_dist
                ):
                    here = Waypoint(
                        *destination_point(seg_start.lat, seg_start.lon, heading, travelled)
                    )
                    plan = make_plan(here, remaining, t)
                    last_plan_t = t
                    replans += 1
                    if plan.diverted:
                        diversions += 1
                    replanned = True
                    break
            if replanned:
                break
        if not replanned:
            here = remaining[0]
            remaining = remaining[1:]
            if remaining:
                plan = VoyagePlan(
                    origin=here,
                    legs=plan.legs[1:],
                    planned_t=plan.planned_t,
                    issued_t=plan.issued_t,
                    depart_t=t,
                    eta_t=plan.eta_t,
                    deadline_t=deadline_t,
                    fuel_kg=sum(leg.fuel_kg for leg in plan.legs[1:]),
                    diverted=any(leg.diverted for leg in plan.legs[1:]),
                    feasible=plan.feasible,
                )
    return VoyageOutcome(
        planned_fuel_kg=planned_fuel,
        actual_fuel_kg=actual_fuel,
        planned_eta_t=planned_eta,
        arrival_t=t,
        distance_m=distance,
        replans=replans,
        diversions=diversions,
    )

