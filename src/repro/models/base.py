"""Common forecaster interface shared by the baseline and the S-VRF model.

Both short-term models answer the same question: *given a vessel's recent
history, where will it be at the six 5-minute marks of the next half hour?*
Event functions (collision forecasting, VTFF) are written against this
interface so either model can back them — exactly the substitution the
paper's Table 2 evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.ais.preprocessing import OUTPUT_INTERVAL_S, OUTPUT_STEPS
from repro.geo.track import Position


@dataclass(frozen=True)
class RouteForecast:
    """A short-term route forecast: the anchor fix plus the predicted marks.

    ``positions`` has ``OUTPUT_STEPS + 1`` entries: the present position at
    index 0 followed by the six 5-minute predictions — the "7 positions
    (1 present position and 6 position predictions)" of Section 5.2.
    """

    mmsi: int
    positions: tuple[Position, ...]

    @property
    def anchor(self) -> Position:
        return self.positions[0]

    @property
    def predicted(self) -> tuple[Position, ...]:
        return self.positions[1:]

    def horizon_s(self) -> float:
        return self.positions[-1].t - self.positions[0].t


class RouteForecaster(Protocol):
    """Anything that can produce a short-term route forecast."""

    def forecast(self, mmsi: int, history: Sequence[Position]) -> RouteForecast:
        """Forecast from a vessel's recent downsampled fixes.

        ``history`` is ordered oldest-first; implementations state their
        minimum history length and raise :class:`ValueError` below it.
        """
        ...

    def predict_positions(self, anchor: np.ndarray, x: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batch form over preprocessed segments.

        ``anchor`` is the ``(n, 5)`` anchor-state array and ``x`` the
        ``(n, 20, 3)`` input tensor of a
        :class:`~repro.ais.preprocessing.SegmentDataset`. Returns
        ``(lat, lon)`` arrays of shape ``(n, OUTPUT_STEPS)``.
        """
        ...


def forecast_mark_times(t0: float) -> list[float]:
    """The six forecast timestamps for an anchor at ``t0``."""
    return [t0 + OUTPUT_INTERVAL_S * k for k in range(1, OUTPUT_STEPS + 1)]
