"""Gradient-descent optimizers.

Optimizers mutate parameter arrays in place (layers hold references to the
same arrays), keyed by ``(layer_index, param_name)`` so state survives
across steps.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, keyed_params: dict[tuple[int, str], np.ndarray],
             keyed_grads: dict[tuple[int, str], np.ndarray]) -> None:
        for key, param in keyed_params.items():
            grad = keyed_grads[key]
            if self.momentum > 0.0:
                vel = self._velocity.setdefault(key, np.zeros_like(param))
                vel *= self.momentum
                vel -= self.lr * grad
                param += vel
            else:
                param -= self.lr * grad


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[tuple[int, str], np.ndarray] = {}
        self._v: dict[tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, keyed_params: dict[tuple[int, str], np.ndarray],
             keyed_grads: dict[tuple[int, str], np.ndarray]) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1 ** self._t
        b2c = 1.0 - self.beta2 ** self._t
        for key, param in keyed_params.items():
            grad = keyed_grads[key]
            m = self._m.setdefault(key, np.zeros_like(param))
            v = self._v.setdefault(key, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            param -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)
