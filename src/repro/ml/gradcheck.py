"""Numerical gradient verification.

The analytic backward passes in :mod:`repro.ml.layers` are hand-derived;
these helpers confirm them against central finite differences. They are used
by the test suite and are handy when extending the layer zoo.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Layer
from repro.ml.losses import MSELoss


def numeric_param_grad(layer: Layer, name: str, x: np.ndarray,
                       target: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Finite-difference gradient of the MSE loss w.r.t. one parameter."""
    loss_fn = MSELoss()
    param = layer.params[name]
    grad = np.zeros_like(param)
    flat = param.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up, _ = loss_fn(layer.forward(x), target)
        flat[i] = original - eps
        down, _ = loss_fn(layer.forward(x), target)
        flat[i] = original
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def numeric_input_grad(layer: Layer, x: np.ndarray, target: np.ndarray,
                       eps: float = 1e-6) -> np.ndarray:
    """Finite-difference gradient of the MSE loss w.r.t. the input."""
    loss_fn = MSELoss()
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up, _ = loss_fn(layer.forward(x), target)
        flat[i] = original - eps
        down, _ = loss_fn(layer.forward(x), target)
        flat[i] = original
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def analytic_grads(layer: Layer, x: np.ndarray, target: np.ndarray
                   ) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Backprop gradients for every parameter and for the input."""
    loss_fn = MSELoss()
    layer.zero_grads()
    pred = layer.forward(x)
    _, dloss = loss_fn(pred, target)
    dx = layer.backward(dloss)
    return {k: v.copy() for k, v in layer.grads.items()}, dx


def max_relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Elementwise ``|a-b| / max(|a|,|b|,1e-8)`` maximum — the standard
    gradient-check metric."""
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), 1e-8)
    return float(np.max(np.abs(a - b) / denom))
