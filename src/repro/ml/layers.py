"""Neural-network layers with hand-derived backward passes.

Every layer follows the same contract:

* ``forward(x)`` consumes a batch and caches whatever backward needs,
* ``backward(dout)`` consumes the loss gradient w.r.t. the layer output,
  accumulates parameter gradients into ``self.grads`` and returns the
  gradient w.r.t. the layer input,
* ``params`` / ``grads`` are dicts of same-shaped numpy arrays.

Shapes: sequence layers take ``(batch, time, features)``; ``Dense`` takes
``(batch, features)``. ``LSTM``/``Bidirectional`` emit the *final* hidden
state(s) — the S-VRF architecture summarises the input track into one
vector before the fully-connected head.
"""

from __future__ import annotations

import numpy as np

from repro.ml.initializers import glorot_uniform, recurrent_orthogonal


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # sigmoid(x) == 0.5 * (1 + tanh(x/2)): numerically stable at both tails
    # and a single vectorised primitive (this sits on the per-message hot
    # path of every vessel actor's forecast).
    return 0.5 * (1.0 + np.tanh(0.5 * x))


class Layer:
    """Base class; see module docstring for the contract."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for g in self.grads.values():
            g.fill(0.0)

    @property
    def regularizable(self) -> tuple[str, ...]:
        """Names of parameters subject to weight regularisation (kernels,
        not biases)."""
        return tuple(name for name in self.params if name != "b")


class Dense(Layer):
    """Fully connected layer ``y = act(x W + b)``."""

    def __init__(self, in_features: int, out_features: int,
                 activation: str = "linear", seed: int = 0) -> None:
        super().__init__()
        if activation not in ("linear", "tanh", "relu"):
            raise ValueError(f"unknown activation {activation!r}")
        rng = np.random.default_rng(seed)
        self.activation = activation
        self.params = {
            "W": glorot_uniform(rng, in_features, out_features),
            "b": np.zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None
        self._pre: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        pre = x @ self.params["W"] + self.params["b"]
        self._pre = pre
        if self.activation == "tanh":
            return np.tanh(pre)
        if self.activation == "relu":
            return np.maximum(pre, 0.0)
        return pre

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        if self.activation == "tanh":
            dout = dout * (1.0 - np.tanh(self._pre) ** 2)
        elif self.activation == "relu":
            dout = dout * (self._pre > 0.0)
        self.grads["W"] += self._x.T @ dout
        self.grads["b"] += dout.sum(axis=0)
        return dout @ self.params["W"].T


class LSTM(Layer):
    """Single LSTM layer returning the final hidden state.

    Gate layout in the fused kernels is ``[i, f, g, o]`` (input, forget,
    candidate, output). ``forward`` returns ``(batch, hidden)``; the full
    hidden sequence is kept internally for BPTT and exposed via
    ``hidden_sequence`` for consumers that want it.
    """

    def __init__(self, in_features: int, hidden: int, seed: int = 0,
                 forget_bias: float = 1.0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.hidden = hidden
        self.params = {
            "W": glorot_uniform(rng, in_features, 4 * hidden,
                                shape=(in_features, 4 * hidden)),
            "U": recurrent_orthogonal(rng, hidden),
            "b": np.zeros(4 * hidden),
        }
        # Positive forget-gate bias: the classic trick that lets gradients
        # flow through time early in training.
        self.params["b"][hidden:2 * hidden] = forget_bias
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"expected (batch, time, {self.in_features}), got {x.shape}")
        batch, steps, _ = x.shape
        H = self.hidden
        W, U, b = self.params["W"], self.params["U"], self.params["b"]

        h = np.zeros((batch, H))
        c = np.zeros((batch, H))
        hs = np.zeros((batch, steps, H))
        cache_steps = []
        for t in range(steps):
            z = x[:, t, :] @ W + h @ U + b
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H:2 * H])
            g = np.tanh(z[:, 2 * H:3 * H])
            o = _sigmoid(z[:, 3 * H:])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            cache_steps.append((h, c, i, f, g, o, tanh_c))
            h, c = h_new, c_new
            hs[:, t, :] = h
        self._cache = {"x": x, "steps": cache_steps, "hs": hs}
        return h

    @property
    def hidden_sequence(self) -> np.ndarray:
        """All hidden states ``(batch, time, hidden)`` from the last
        forward pass."""
        if self._cache is None:
            raise RuntimeError("no forward pass cached")
        return self._cache["hs"]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """BPTT from the gradient w.r.t. the final hidden state."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        cache_steps = self._cache["steps"]
        batch, steps, _ = x.shape
        H = self.hidden
        W, U = self.params["W"], self.params["U"]

        dx = np.zeros_like(x)
        dh_next = dout.copy()
        dc_next = np.zeros((batch, H))
        dW = self.grads["W"]
        dU = self.grads["U"]
        db = self.grads["b"]

        for t in range(steps - 1, -1, -1):
            h_prev, c_prev, i, f, g, o, tanh_c = cache_steps[t]
            do = dh_next * tanh_c
            dc = dh_next * o * (1.0 - tanh_c ** 2) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f

            dz = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g ** 2),
                do * o * (1.0 - o),
            ], axis=1)

            dW += x[:, t, :].T @ dz
            dU += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ W.T
            dh_next = dz @ U.T
        return dx


class Bidirectional(Layer):
    """Bidirectional wrapper: runs one LSTM forward and one on the
    time-reversed input, concatenating the two final hidden states.

    This is the paper's BiLSTM layer ("BiLSTM adds one more LSTM layer,
    which reverses the direction of information flow ... Concatenation is
    used for combining the bidirectional LSTM-layer outputs", Section 4.2).
    Output shape: ``(batch, 2*hidden)``.
    """

    def __init__(self, in_features: int, hidden: int, seed: int = 0) -> None:
        super().__init__()
        self.fwd = LSTM(in_features, hidden, seed=seed)
        self.bwd = LSTM(in_features, hidden, seed=seed + 1)
        self.hidden = hidden
        # Expose both children's parameters under prefixed names so the
        # optimizer and regularizers see a flat dict.
        self.params = {f"fwd_{k}": v for k, v in self.fwd.params.items()}
        self.params.update({f"bwd_{k}": v for k, v in self.bwd.params.items()})
        self.grads = {f"fwd_{k}": v for k, v in self.fwd.grads.items()}
        self.grads.update({f"bwd_{k}": v for k, v in self.bwd.grads.items()})

    @property
    def regularizable(self) -> tuple[str, ...]:
        return tuple(n for n in self.params if not n.endswith("b"))

    def forward(self, x: np.ndarray) -> np.ndarray:
        h_fwd = self.fwd.forward(x)
        h_bwd = self.bwd.forward(x[:, ::-1, :])
        return np.concatenate([h_fwd, h_bwd], axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        H = self.hidden
        dx_fwd = self.fwd.backward(dout[:, :H])
        dx_bwd = self.bwd.backward(dout[:, H:])
        return dx_fwd + dx_bwd[:, ::-1, :]

    def zero_grads(self) -> None:
        self.fwd.zero_grads()
        self.bwd.zero_grads()
