"""A from-scratch numpy neural-network stack.

The paper's S-VRF model is a BiLSTM network ("one input layer, one BiLSTM
layer, one fully connected layer, and an output layer", Figure 3) trained
with L1 in-layer regularisation. No deep-learning framework is available in
this environment, so this package implements the required pieces directly
on numpy with hand-derived backpropagation:

* :mod:`repro.ml.layers` — ``Dense``, ``LSTM`` and ``Bidirectional`` layers
  with full backward passes (BPTT for the recurrent layers),
* :mod:`repro.ml.losses` — mean-squared-error loss,
* :mod:`repro.ml.optimizers` — Adam and SGD,
* :mod:`repro.ml.regularizers` — L1/L2 weight penalties,
* :mod:`repro.ml.network` — a ``Model`` container with a training loop,
  prediction and ``.npz`` persistence,
* :mod:`repro.ml.scalers` — feature standardisation for sequence tensors,
* :mod:`repro.ml.gradcheck` — numerical gradient verification used by the
  test suite to prove the analytic gradients correct.
"""

from repro.ml.layers import LSTM, Bidirectional, Dense, Layer
from repro.ml.losses import MSELoss
from repro.ml.network import Model, TrainingHistory
from repro.ml.optimizers import SGD, Adam
from repro.ml.regularizers import L1Regularizer, L2Regularizer
from repro.ml.scalers import StandardScaler

__all__ = [
    "Adam",
    "Bidirectional",
    "Dense",
    "L1Regularizer",
    "L2Regularizer",
    "LSTM",
    "Layer",
    "MSELoss",
    "Model",
    "SGD",
    "StandardScaler",
    "TrainingHistory",
]
