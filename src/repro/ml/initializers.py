"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape or (fan_in, fan_out))


def orthogonal(rng: np.random.Generator, n: int) -> np.ndarray:
    """An ``n x n`` orthogonal matrix (QR of a Gaussian)."""
    a = rng.normal(size=(n, n))
    q, r = np.linalg.qr(a)
    # Fix the sign ambiguity so the distribution is uniform (Haar).
    return q * np.sign(np.diag(r))


def recurrent_orthogonal(rng: np.random.Generator, hidden: int,
                         gates: int = 4) -> np.ndarray:
    """LSTM recurrent kernel ``(hidden, gates*hidden)`` built from one
    orthogonal block per gate — the standard recurrent initialisation that
    keeps BPTT gradients well conditioned."""
    return np.concatenate([orthogonal(rng, hidden) for _ in range(gates)],
                          axis=1)
