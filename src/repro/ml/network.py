"""Model container: layer stacking, training loop, persistence."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ml.layers import Layer
from repro.ml.losses import MSELoss
from repro.ml.optimizers import Adam
from repro.ml.regularizers import L1Regularizer, L2Regularizer


@dataclass
class TrainingHistory:
    """Per-epoch loss curves produced by :meth:`Model.fit`."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    @property
    def epochs(self) -> int:
        return len(self.train_loss)


class Model:
    """A sequential stack of layers with an MSE training loop.

    Regularizers are attached per layer index (the paper regularises the
    BiLSTM layer specifically): ``regularizers={0: L1Regularizer(1e-5)}``.
    """

    def __init__(self, layers: list[Layer],
                 regularizers: dict[int, L1Regularizer | L2Regularizer] | None = None
                 ) -> None:
        if not layers:
            raise ValueError("model needs at least one layer")
        self.layers = layers
        self.regularizers = regularizers or {}
        for idx in self.regularizers:
            if not 0 <= idx < len(layers):
                raise ValueError(f"regularizer index {idx} out of range")
        self.loss_fn = MSELoss()

    # -- forward / backward ------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference forward pass, batch-size consistent.

        BLAS dispatches a single-row matmul to gemv and multi-row inputs
        to gemm, whose per-row results can differ in the last ulp. A lone
        sample is therefore duplicated to a 2-row batch (gemm, like every
        n >= 2 batch) and the first row returned, so one vessel forecast
        is bitwise identical to the same window inside a fleet-wide batch.
        """
        if x.shape[0] == 1:
            doubled = np.concatenate([x, x], axis=0)
            return self.forward(doubled)[:1]
        return self.forward(x)

    def _keyed_params(self) -> dict[tuple[int, str], np.ndarray]:
        return {(i, name): arr
                for i, layer in enumerate(self.layers)
                for name, arr in layer.params.items()}

    def _keyed_grads(self) -> dict[tuple[int, str], np.ndarray]:
        return {(i, name): arr
                for i, layer in enumerate(self.layers)
                for name, arr in layer.grads.items()}

    def _regularization(self, apply_grads: bool) -> float:
        penalty = 0.0
        for idx, reg in self.regularizers.items():
            layer = self.layers[idx]
            for name in layer.regularizable:
                penalty += reg.penalty(layer.params[name])
                if apply_grads:
                    layer.grads[name] += reg.grad(layer.params[name])
        return penalty

    def train_step(self, x: np.ndarray, y: np.ndarray, optimizer) -> float:
        """One gradient step on a minibatch; returns the total loss."""
        for layer in self.layers:
            layer.zero_grads()
        pred = self.forward(x)
        loss, dloss = self.loss_fn(pred, y)
        grad = dloss
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        loss += self._regularization(apply_grads=True)
        optimizer.step(self._keyed_params(), self._keyed_grads())
        return loss

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 512) -> float:
        """Mean MSE over a dataset (no regularisation term)."""
        total, n = 0.0, 0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            loss, _ = self.loss_fn(self.forward(xb), yb)
            total += loss * xb.shape[0]
            n += xb.shape[0]
        return total / max(n, 1)

    def fit(self, x: np.ndarray, y: np.ndarray,
            x_val: np.ndarray | None = None, y_val: np.ndarray | None = None,
            epochs: int = 20, batch_size: int = 128, lr: float = 1e-3,
            seed: int = 0, patience: int | None = None,
            verbose: bool = False) -> TrainingHistory:
        """Adam training with optional early stopping on validation loss.

        ``patience`` epochs without validation improvement stop training and
        restore the best parameters seen.
        """
        optimizer = Adam(lr=lr)
        rng = np.random.default_rng(seed)
        history = TrainingHistory()
        best_val = float("inf")
        best_state: list[dict[str, np.ndarray]] | None = None
        stall = 0

        for epoch in range(epochs):
            order = rng.permutation(x.shape[0])
            epoch_loss, batches = 0.0, 0
            for start in range(0, x.shape[0], batch_size):
                idx = order[start:start + batch_size]
                epoch_loss += self.train_step(x[idx], y[idx], optimizer)
                batches += 1
            history.train_loss.append(epoch_loss / max(batches, 1))

            if x_val is not None and y_val is not None:
                val = self.evaluate(x_val, y_val)
                history.val_loss.append(val)
                if verbose:
                    print(f"epoch {epoch + 1}/{epochs} "
                          f"train={history.train_loss[-1]:.6f} val={val:.6f}")
                if val < best_val - 1e-12:
                    best_val = val
                    best_state = self._snapshot()
                    stall = 0
                else:
                    stall += 1
                    if patience is not None and stall >= patience:
                        break
            elif verbose:
                print(f"epoch {epoch + 1}/{epochs} "
                      f"train={history.train_loss[-1]:.6f}")

        if best_state is not None:
            self._restore(best_state)
        return history

    # -- persistence ----------------------------------------------------------------

    def _snapshot(self) -> list[dict[str, np.ndarray]]:
        return [{name: arr.copy() for name, arr in layer.params.items()}
                for layer in self.layers]

    def _restore(self, state: list[dict[str, np.ndarray]]) -> None:
        for layer, params in zip(self.layers, state):
            for name, arr in params.items():
                layer.params[name][...] = arr

    def save_params(self, path: str | Path) -> None:
        """Persist all parameters to an ``.npz`` file."""
        flat = {f"{i}__{name}": arr
                for i, layer in enumerate(self.layers)
                for name, arr in layer.params.items()}
        np.savez_compressed(path, **flat)

    def load_params(self, path: str | Path) -> None:
        """Load parameters saved by :meth:`save_params` into this model
        (architectures must match)."""
        data = np.load(path)
        for key in data.files:
            idx_text, name = key.split("__", 1)
            layer = self.layers[int(idx_text)]
            if name not in layer.params:
                raise KeyError(f"layer {idx_text} has no parameter {name!r}")
            if layer.params[name].shape != data[key].shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{layer.params[name].shape} vs {data[key].shape}")
            layer.params[name][...] = data[key]

    def parameter_count(self) -> int:
        return sum(arr.size for layer in self.layers
                   for arr in layer.params.values())
