"""Weight regularisation penalties.

The paper couples its BiLSTM with "L1 in-layer regularization for reducing
overfitting" (Section 4.2); :class:`L1Regularizer` is that penalty, applied
to a layer's kernel parameters (never biases).
"""

from __future__ import annotations

import numpy as np


class L1Regularizer:
    """``penalty = lam * sum(|w|)`` with subgradient ``lam * sign(w)``."""

    def __init__(self, lam: float) -> None:
        if lam < 0:
            raise ValueError("lambda must be non-negative")
        self.lam = lam

    def penalty(self, weights: np.ndarray) -> float:
        return float(self.lam * np.abs(weights).sum())

    def grad(self, weights: np.ndarray) -> np.ndarray:
        return self.lam * np.sign(weights)


class L2Regularizer:
    """``penalty = lam * sum(w^2)`` with gradient ``2 * lam * w``."""

    def __init__(self, lam: float) -> None:
        if lam < 0:
            raise ValueError("lambda must be non-negative")
        self.lam = lam

    def penalty(self, weights: np.ndarray) -> float:
        return float(self.lam * np.square(weights).sum())

    def grad(self, weights: np.ndarray) -> np.ndarray:
        return 2.0 * self.lam * weights
