"""Loss functions."""

from __future__ import annotations

import numpy as np


class MSELoss:
    """Mean squared error over every element of the prediction tensor."""

    def __call__(self, pred: np.ndarray, target: np.ndarray
                 ) -> tuple[float, np.ndarray]:
        """Returns ``(loss, dloss/dpred)``."""
        if pred.shape != target.shape:
            raise ValueError(
                f"shape mismatch: pred {pred.shape} vs target {target.shape}")
        diff = pred - target
        loss = float(np.mean(diff ** 2))
        grad = 2.0 * diff / diff.size
        return loss, grad
