"""Feature standardisation for flat and sequence tensors."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature zero-mean/unit-variance scaling.

    Works on ``(n, features)`` and ``(n, time, features)`` tensors — for
    sequences the statistics pool over both the batch and time axes, which
    is what the displacement features need (a Δlat at step 3 and at step 17
    are the same physical quantity).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        flat = x.reshape(-1, x.shape[-1])
        self.mean_ = flat.mean(axis=0)
        std = flat.std(axis=0)
        # Constant features scale to zero offset rather than dividing by 0.
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def _check(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        return (x - self.mean_) / self.std_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        return x * self.std_ + self.mean_

    def state(self) -> dict[str, np.ndarray]:
        self._check()
        return {"mean": self.mean_.copy(), "std": self.std_.copy()}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StandardScaler":
        scaler = cls()
        scaler.mean_ = np.asarray(state["mean"], dtype=float)
        scaler.std_ = np.asarray(state["std"], dtype=float)
        return scaler
