"""Wire serialization for cluster messages.

The paper's Akka cluster serializes actor messages with a configured
serializer before they cross node boundaries. Here every
:class:`~repro.cluster.protocol.WireEnvelope` crosses the wire in one of
two forms:

* **fast path** — a compact ``struct``-packed binary encoding, selected by
  a one-byte tag. Envelope metadata (kind, hops, correlation id, the five
  routing strings, an int/str key) is never pickled; the hot payload types
  of the Figure 6 workload (``PositionIngested``, ``CellObservation``,
  ``ForecastShared`` and heartbeats) get dedicated fixed layouts, so the
  steady-state stream pays zero pickle headers.
* **restricted pickle fallback** — anything else (control messages, alerts,
  arbitrary ask payloads) is pickled, but *only the payload*: the envelope
  framing around it stays binary. Decoding resolves classes through a
  restricted unpickler that only admits trusted modules (``repro.*``,
  numpy, and a small stdlib allowlist).

Both transports carry the same frames — the loopback transport round trips
exactly the bytes the sockets carry, so serialization bugs surface in the
deterministic tests. :func:`encode_batch` / :func:`decode_batch` pack many
frames into one container frame for the batching transport.

Counters (``encoded_size``, ``frames_encoded``, ``fast_path_frames``,
``pickle_fallbacks``) are module-level and monotonic; under free threading
they are best-effort observability, not accounting.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from typing import Any, Sequence

#: Benchmark knob: ``REPRO_WIRE_FAST=0`` forces the legacy whole-frame
#: pickle path, giving the "before" row of the batched-vs-unbatched
#: comparison in ``examples/run_figure6_cluster.py``. Decode always
#: accepts both forms, so mixed clusters interoperate.
fast_path_enabled = os.environ.get("REPRO_WIRE_FAST", "1") != "0"


def set_fast_path(enabled: bool) -> None:
    """Toggle the struct fast path (and propagate to child processes)."""
    global fast_path_enabled
    fast_path_enabled = enabled
    os.environ["REPRO_WIRE_FAST"] = "1" if enabled else "0"

#: Module prefixes whose classes may appear in a wire frame.
TRUSTED_PREFIXES = ("repro.",)

#: Exact modules from outside the project that payloads legitimately use
#: (numpy arrays inside forecasts, deques inside actor state snapshots).
TRUSTED_MODULES = frozenset({
    "builtins",
    "collections",
    "numpy",
    "numpy.core.multiarray",
    "numpy._core.multiarray",
    "numpy.core.numeric",
    "numpy._core.numeric",
    "numpy.dtypes",
})

#: Builtins that restricted frames may reference. Notably *not* ``eval``,
#: ``exec``, ``getattr`` or ``__import__``.
_SAFE_BUILTINS = frozenset({
    "complex", "dict", "frozenset", "list", "set", "tuple", "bytearray",
    "bytes", "float", "int", "str", "bool", "slice", "range", "object",
})


class WireDecodeError(ValueError):
    """A frame failed to decode or referenced an untrusted class."""


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module == "builtins":
            if name not in _SAFE_BUILTINS:
                raise WireDecodeError(
                    f"wire frame references forbidden builtin {name!r}")
            return super().find_class(module, name)
        if module in TRUSTED_MODULES or module.startswith(TRUSTED_PREFIXES):
            return super().find_class(module, name)
        raise WireDecodeError(
            f"wire frame references untrusted class {module}.{name}")


def _restricted_loads(data: bytes) -> Any:
    return _RestrictedUnpickler(io.BytesIO(data)).load()


# -- observability counters --------------------------------------------------------

#: Total bytes produced by :func:`encode` (frame sizes, pre-transport).
encoded_size = 0
#: Frames encoded since import / the last :func:`reset_counters`.
frames_encoded = 0
#: Frames that took the struct envelope framing (their payload may still
#: be pickled — see ``pickle_fallbacks``).
fast_path_frames = 0
#: Whole frames or envelope payloads that fell back to pickle.
pickle_fallbacks = 0


def reset_counters() -> None:
    global encoded_size, frames_encoded, fast_path_frames, pickle_fallbacks
    encoded_size = 0
    frames_encoded = 0
    fast_path_frames = 0
    pickle_fallbacks = 0


def counters() -> dict:
    return {
        "encoded_size": encoded_size,
        "frames_encoded": frames_encoded,
        "fast_path_frames": fast_path_frames,
        "pickle_fallbacks": pickle_fallbacks,
    }


# -- frame tags --------------------------------------------------------------------

# Pickle protocol >= 2 frames start with 0x80, so the fast-path tags below
# stay clear of it and decode dispatches on the first byte.
TAG_ENV = 0x01      #: struct-framed WireEnvelope
TAG_BATCH = 0x02    #: container of many frames (see encode_batch)

_KIND_CODES = {"sharded": 0, "named": 1, "ask": 2, "reply": 3, "control": 4}
_KIND_NAMES = {v: k for k, v in _KIND_CODES.items()}

# Value/payload tags inside a TAG_ENV frame.
_P_NONE = 0x00
_P_PICKLE = 0x01
_P_INT = 0x02        #: signed 64-bit int
_P_STR = 0x03
_P_UINT = 0x04       #: unsigned 64-bit int above INT64_MAX (H3 cell keys)
_P_POSITION = 0x10        #: platform.messages.PositionIngested
_P_CELLOBS = 0x11         #: platform.messages.CellObservation
_P_FORECAST = 0x12        #: platform.messages.ForecastShared
_P_HEARTBEAT = 0x13       #: cluster.protocol.Heartbeat
_P_FORECAST_BATCH = 0x14  #: platform.messages.ForecastSharedBatch
_P_LOAD_REPORT = 0x15     #: cluster.protocol.LoadReport

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_U64 = struct.Struct(">Q")
_ENV_HEAD = struct.Struct(">BBq")            # kind, hops, corr_id (-1 = None)
#: High bit of the kind byte flags an 8-byte trace id following the head;
#: untraced frames (the overwhelming majority) stay byte-identical to the
#: pre-telemetry encoding.
_KIND_TRACED = 0x80
_AIS_BODY = struct.Struct(">QdddddhBB")      # mmsi,t,lat,lon,sog,cog,hdg,st,src
#: Cells are unsigned: H3-style ids use the full 64-bit range (indexes
#: above ``2**63`` are routine at the collision-cell resolution).
_CELLOBS_BODY = struct.Struct(">QQddd")      # cell, mmsi, t, lat, lon
_FORECAST_HEAD = struct.Struct(">QQH")       # cell, mmsi, n_positions
_FORECAST_BATCH_HEAD = struct.Struct(">QHH")  # mmsi, n_cells, n_positions
_POS_FIXED = struct.Struct(">Bddd")          # flags, t, lat, lon
_DOUBLE = struct.Struct(">d")
#: mailbox_depth, consumer_lag, busy_ms, entities, n_shard_pairs — the
#: per-heartbeat load report (sent once per ``load_report_interval_s`` by
#: every node, so it must not pay a pickle header).
_LOAD_HEAD = struct.Struct(">QQdQH")
_LOAD_PAIR = struct.Struct(">IQ")            # shard, message count

_NO_STR = 0xFFFF    #: length marker for a None string field
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1

# The hot message types live in repro.platform (which itself imports
# repro.cluster), so they are bound lazily on first encode/decode rather
# than at module import.
_HOT: dict | None = None


def _hot() -> dict:
    global _HOT
    if _HOT is None:
        from repro.ais.message import AISMessage, NavigationStatus
        from repro.cluster.protocol import (
            Heartbeat,
            LoadReport,
            WireEnvelope,
        )
        from repro.geo.track import Position
        from repro.models.base import RouteForecast
        from repro.platform.messages import (
            CellObservation,
            ForecastShared,
            ForecastSharedBatch,
            PositionIngested,
        )
        _HOT = {
            "AISMessage": AISMessage,
            "NavigationStatus": NavigationStatus,
            "Heartbeat": Heartbeat,
            "LoadReport": LoadReport,
            "WireEnvelope": WireEnvelope,
            "Position": Position,
            "RouteForecast": RouteForecast,
            "CellObservation": CellObservation,
            "ForecastShared": ForecastShared,
            "ForecastSharedBatch": ForecastSharedBatch,
            "PositionIngested": PositionIngested,
        }
    return _HOT


_SOURCE_CODES = {"terrestrial": 0, "satellite": 1}
_SOURCE_NAMES = {v: k for k, v in _SOURCE_CODES.items()}


# -- field helpers -----------------------------------------------------------------


def _put_str(out: bytearray, value: str | None) -> None:
    if value is None:
        out += _U16.pack(_NO_STR)
        return
    data = value.encode("utf-8")
    if len(data) >= _NO_STR:
        raise ValueError("string field too long for wire encoding")
    out += _U16.pack(len(data))
    out += data


def _get_str(data: bytes, pos: int) -> tuple[str | None, int]:
    (length,) = _U16.unpack_from(data, pos)
    pos += _U16.size
    if length == _NO_STR:
        return None, pos
    return data[pos:pos + length].decode("utf-8"), pos + length


def _put_value(out: bytearray, value: Any) -> None:
    """Encode a small routing value (the envelope ``key``)."""
    if value is None:
        out.append(_P_NONE)
    elif type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
        out.append(_P_INT)
        out += _I64.pack(value)
    elif type(value) is int and _INT64_MAX < value < (1 << 64):
        out.append(_P_UINT)
        out += _U64.pack(value)
    elif type(value) is str:
        out.append(_P_STR)
        _put_str(out, value)
    else:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_P_PICKLE)
        out += _U32.pack(len(blob))
        out += blob


def _get_value(data: bytes, pos: int) -> tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _P_NONE:
        return None, pos
    if tag == _P_INT:
        (value,) = _I64.unpack_from(data, pos)
        return value, pos + _I64.size
    if tag == _P_UINT:
        (value,) = _U64.unpack_from(data, pos)
        return value, pos + _U64.size
    if tag == _P_STR:
        return _get_str(data, pos)
    if tag == _P_PICKLE:
        (length,) = _U32.unpack_from(data, pos)
        pos += _U32.size
        return _restricted_loads(data[pos:pos + length]), pos + length
    raise WireDecodeError(f"unknown value tag {tag:#x}")


# -- hot payload encodings ---------------------------------------------------------


def _try_put_payload(out: bytearray, message: Any) -> bool:
    """Append a fast-path payload encoding; False if ``message`` needs the
    pickle fallback. Exact-type checks only — subclasses may carry state the
    fixed layouts would drop."""
    hot = _hot()
    t = type(message)
    if message is None:
        out.append(_P_NONE)
        return True
    if t is hot["PositionIngested"]:
        return _try_put_position(out, message.message)
    if t is hot["CellObservation"]:
        if not (type(message.cell) is int
                and 0 <= message.cell < (1 << 64)
                and type(message.mmsi) is int
                and 0 <= message.mmsi < (1 << 64)):
            return False
        out.append(_P_CELLOBS)
        out += _CELLOBS_BODY.pack(message.cell, message.mmsi,
                                  message.t, message.lat, message.lon)
        return True
    if t is hot["ForecastShared"]:
        return _try_put_forecast(out, message)
    if t is hot["ForecastSharedBatch"]:
        return _try_put_forecast_batch(out, message)
    if t is hot["Heartbeat"]:
        out.append(_P_HEARTBEAT)
        _put_str(out, message.node_id)
        return True
    if t is hot["LoadReport"]:
        return _try_put_load_report(out, message)
    return False


def _try_put_load_report(out: bytearray, message: Any) -> bool:
    pairs = message.shard_messages
    if (type(message.node_id) is not str
            or type(pairs) is not tuple or len(pairs) > 0xFFFF
            or type(message.busy_ms) not in (int, float)):
        return False
    for gauge in (message.mailbox_depth, message.consumer_lag,
                  message.entities):
        if type(gauge) is not int or not 0 <= gauge < (1 << 64):
            return False
    for pair in pairs:
        if (type(pair) is not tuple or len(pair) != 2
                or type(pair[0]) is not int or type(pair[1]) is not int
                or not 0 <= pair[0] < (1 << 32)
                or not 0 <= pair[1] < (1 << 64)):
            return False
    out.append(_P_LOAD_REPORT)
    _put_str(out, message.node_id)
    out += _LOAD_HEAD.pack(message.mailbox_depth, message.consumer_lag,
                           float(message.busy_ms), message.entities,
                           len(pairs))
    for shard, count in pairs:
        out += _LOAD_PAIR.pack(shard, count)
    return True


def _try_put_position(out: bytearray, msg: Any) -> bool:
    hot = _hot()
    if type(msg) is not hot["AISMessage"]:
        return False
    source = _SOURCE_CODES.get(msg.source)
    if (source is None or not isinstance(msg.status, hot["NavigationStatus"])
            or not (type(msg.mmsi) is int and 0 <= msg.mmsi < (1 << 64))):
        return False
    heading = -1 if msg.heading is None else int(msg.heading)
    if not -1 <= heading <= 32767:
        return False
    out.append(_P_POSITION)
    out += _AIS_BODY.pack(msg.mmsi, msg.t, msg.lat, msg.lon, msg.sog,
                          msg.cog, heading, int(msg.status), source)
    return True


#: One-slot caches for the forecast fan-out: a vessel actor shares the
#: *same* forecast with every collision cell its trajectory touches, so
#: consecutive ForecastShared frames carry an identical positions tuple.
#: The encode cache holds a strong reference to the tuple and compares by
#: identity (no id() reuse hazard); the decode cache compares the packed
#: bytes. Races under threading at worst cause a miss, never a wrong hit.
_ENC_POSITIONS_CACHE: tuple | None = None   # (positions tuple, bytes)
_DEC_POSITIONS_CACHE: tuple | None = None   # (bytes, positions tuple)


def _positions_body(positions: tuple) -> bytes | None:
    """The packed positions region of a forecast payload (cached), or
    None when a position doesn't fit the fixed layout."""
    global _ENC_POSITIONS_CACHE
    cached = _ENC_POSITIONS_CACHE
    if cached is not None and cached[0] is positions:
        return cached[1]
    position_cls = _hot()["Position"]
    for p in positions:
        if type(p) is not position_cls:
            return None
    buf = bytearray()
    for p in positions:
        flags = (1 if p.sog is not None else 0) | \
                (2 if p.cog is not None else 0)
        buf += _POS_FIXED.pack(flags, p.t, p.lat, p.lon)
        if p.sog is not None:
            buf += _DOUBLE.pack(p.sog)
        if p.cog is not None:
            buf += _DOUBLE.pack(p.cog)
    body = bytes(buf)
    _ENC_POSITIONS_CACHE = (positions, body)
    return body


def _try_put_forecast(out: bytearray, message: Any) -> bool:
    hot = _hot()
    forecast = message.forecast
    if (type(forecast) is not hot["RouteForecast"]
            or type(message.cell) is not int
            or not 0 <= message.cell < (1 << 64)
            or type(forecast.mmsi) is not int
            or not 0 <= forecast.mmsi < (1 << 64)):
        return False
    positions = forecast.positions
    if len(positions) > 0xFFFF:
        return False
    body = _positions_body(positions)
    if body is None:
        return False
    out.append(_P_FORECAST)
    out += _FORECAST_HEAD.pack(message.cell, forecast.mmsi, len(positions))
    out += body
    return True


def _try_put_forecast_batch(out: bytearray, message: Any) -> bool:
    """One forecast, many destination cells: the positions region is
    written once, prefixed by the cell list."""
    hot = _hot()
    forecast = message.forecast
    cells = message.cells
    if (type(forecast) is not hot["RouteForecast"]
            or type(cells) is not tuple
            or not 1 <= len(cells) <= 0xFFFF
            or type(forecast.mmsi) is not int
            or not 0 <= forecast.mmsi < (1 << 64)):
        return False
    for cell in cells:
        if type(cell) is not int or not 0 <= cell < (1 << 64):
            return False
    positions = forecast.positions
    if len(positions) > 0xFFFF:
        return False
    body = _positions_body(positions)
    if body is None:
        return False
    out.append(_P_FORECAST_BATCH)
    out += _FORECAST_BATCH_HEAD.pack(forecast.mmsi, len(cells),
                                     len(positions))
    for cell in cells:
        out += _U64.pack(cell)
    out += body
    return True


def _get_positions(data: bytes, pos: int, count: int) -> tuple[tuple, int]:
    """Decode a packed positions region; returns ``(tuple, end_offset)``.

    Walks the flags bytes to find the region end, then checks the decode
    cache — the fan-out delivers the same positions blob to every cell of
    one forecast, and tuples are immutable to share."""
    global _DEC_POSITIONS_CACHE
    end = pos
    for _ in range(count):
        flags = data[end]
        end += _POS_FIXED.size + (8 if flags & 1 else 0) \
            + (8 if flags & 2 else 0)
    blob = bytes(data[pos:end])
    cached = _DEC_POSITIONS_CACHE
    if cached is not None and cached[0] == blob:
        return cached[1], end
    positions = []
    position_cls = _hot()["Position"]
    while pos < end:
        flags, t, lat, lon = _POS_FIXED.unpack_from(data, pos)
        pos += _POS_FIXED.size
        sog = cog = None
        if flags & 1:
            (sog,) = _DOUBLE.unpack_from(data, pos)
            pos += _DOUBLE.size
        if flags & 2:
            (cog,) = _DOUBLE.unpack_from(data, pos)
            pos += _DOUBLE.size
        positions.append(position_cls(t=t, lat=lat, lon=lon,
                                      sog=sog, cog=cog))
    positions_t = tuple(positions)
    _DEC_POSITIONS_CACHE = (blob, positions_t)
    return positions_t, end


def _get_payload(data: bytes, pos: int) -> tuple[Any, int]:
    global pickle_fallbacks
    hot = _hot()
    tag = data[pos]
    pos += 1
    if tag == _P_NONE:
        return None, pos
    if tag == _P_POSITION:
        (mmsi, t, lat, lon, sog, cog, heading, status,
         source) = _AIS_BODY.unpack_from(data, pos)
        pos += _AIS_BODY.size
        msg = hot["AISMessage"](
            mmsi=mmsi, t=t, lat=lat, lon=lon, sog=sog, cog=cog,
            heading=None if heading == -1 else heading,
            status=hot["NavigationStatus"](status),
            source=_SOURCE_NAMES[source])
        return hot["PositionIngested"](msg), pos
    if tag == _P_CELLOBS:
        cell, mmsi, t, lat, lon = _CELLOBS_BODY.unpack_from(data, pos)
        return hot["CellObservation"](cell=cell, mmsi=mmsi, t=t, lat=lat,
                                      lon=lon), pos + _CELLOBS_BODY.size
    if tag == _P_FORECAST:
        cell, mmsi, count = _FORECAST_HEAD.unpack_from(data, pos)
        pos += _FORECAST_HEAD.size
        positions_t, end = _get_positions(data, pos, count)
        forecast = hot["RouteForecast"](mmsi=mmsi, positions=positions_t)
        return hot["ForecastShared"](cell=cell, forecast=forecast), end
    if tag == _P_FORECAST_BATCH:
        mmsi, n_cells, count = _FORECAST_BATCH_HEAD.unpack_from(data, pos)
        pos += _FORECAST_BATCH_HEAD.size
        cells = struct.unpack_from(f">{n_cells}Q", data, pos)
        pos += 8 * n_cells
        positions_t, end = _get_positions(data, pos, count)
        forecast = hot["RouteForecast"](mmsi=mmsi, positions=positions_t)
        return hot["ForecastSharedBatch"](cells=cells,
                                          forecast=forecast), end
    if tag == _P_HEARTBEAT:
        node_id, pos = _get_str(data, pos)
        return hot["Heartbeat"](node_id), pos
    if tag == _P_LOAD_REPORT:
        node_id, pos = _get_str(data, pos)
        (depth, lag, busy_ms, entities,
         n_pairs) = _LOAD_HEAD.unpack_from(data, pos)
        pos += _LOAD_HEAD.size
        pairs = []
        for _ in range(n_pairs):
            shard, count = _LOAD_PAIR.unpack_from(data, pos)
            pos += _LOAD_PAIR.size
            pairs.append((shard, count))
        return hot["LoadReport"](
            node_id=node_id, mailbox_depth=depth, consumer_lag=lag,
            busy_ms=busy_ms, entities=entities,
            shard_messages=tuple(pairs)), pos
    if tag == _P_PICKLE:
        (length,) = _U32.unpack_from(data, pos)
        pos += _U32.size
        pickle_fallbacks += 1
        return _restricted_loads(data[pos:pos + length]), pos + length
    raise WireDecodeError(f"unknown payload tag {tag:#x}")


# -- envelope fast path ------------------------------------------------------------


def _encode_envelope(env: Any) -> bytes | None:
    """The TAG_ENV encoding, or None when the envelope doesn't fit it
    (unknown kind, oversized strings, unpicklable key)."""
    global pickle_fallbacks
    kind = _KIND_CODES.get(env.kind)
    corr = -1 if env.corr_id is None else env.corr_id
    trace_id = env.trace_id
    if kind is None or not 0 <= env.hops <= 255 \
            or not _INT64_MIN <= corr <= _INT64_MAX:
        return None
    if trace_id is not None and not 0 <= trace_id < (1 << 64):
        return None
    out = bytearray([TAG_ENV])
    out += _ENV_HEAD.pack(kind | (_KIND_TRACED if trace_id is not None
                                  else 0), env.hops, corr)
    if trace_id is not None:
        out += _U64.pack(trace_id)
    try:
        _put_str(out, env.src)
        _put_str(out, env.entity)
        _put_str(out, env.target)
        _put_str(out, env.sender_node)
        _put_str(out, env.sender_name)
        _put_value(out, env.key)
    except (ValueError, TypeError):
        return None
    payload = bytearray()
    try:
        fits = _try_put_payload(payload, env.message)
    except (struct.error, ValueError, TypeError, OverflowError):
        fits = False
    if fits:
        out += payload
    else:
        blob = pickle.dumps(env.message, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_P_PICKLE)
        out += _U32.pack(len(blob))
        out += blob
        pickle_fallbacks += 1
    return bytes(out)


def _decode_envelope(data: bytes) -> Any:
    kind_code, hops, corr = _ENV_HEAD.unpack_from(data, 1)
    kind = _KIND_NAMES.get(kind_code & ~_KIND_TRACED)
    if kind is None:
        raise WireDecodeError(f"unknown envelope kind code {kind_code}")
    pos = 1 + _ENV_HEAD.size
    trace_id = None
    if kind_code & _KIND_TRACED:
        (trace_id,) = _U64.unpack_from(data, pos)
        pos += _U64.size
    src, pos = _get_str(data, pos)
    entity, pos = _get_str(data, pos)
    target, pos = _get_str(data, pos)
    sender_node, pos = _get_str(data, pos)
    sender_name, pos = _get_str(data, pos)
    key, pos = _get_value(data, pos)
    message, pos = _get_payload(data, pos)
    return _hot()["WireEnvelope"](
        kind=kind, src=src, message=message, entity=entity, key=key,
        target=target, sender_node=sender_node, sender_name=sender_name,
        corr_id=None if corr == -1 else corr, hops=hops,
        trace_id=trace_id)


# -- public API --------------------------------------------------------------------


def encode(obj: Any) -> bytes:
    """Serialize one wire message to a byte frame.

    :class:`WireEnvelope` instances take the struct fast path; everything
    else (and any envelope the fast path cannot represent) is pickled
    whole, which older peers and the tests decode identically.
    """
    global encoded_size, frames_encoded, fast_path_frames, pickle_fallbacks
    data = None
    if fast_path_enabled and type(obj) is _hot()["WireEnvelope"]:
        data = _encode_envelope(obj)
    if data is None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        pickle_fallbacks += 1
    else:
        fast_path_frames += 1
    frames_encoded += 1
    encoded_size += len(data)
    return data


def decode(data: bytes) -> Any:
    """Deserialize a byte frame, resolving only trusted classes."""
    if not data:
        raise WireDecodeError("empty wire frame")
    try:
        if data[0] == TAG_ENV:
            return _decode_envelope(data)
        if data[0] == TAG_BATCH:
            raise WireDecodeError(
                "batch frame reached decode(); split with decode_batch()")
        return _restricted_loads(data)
    except WireDecodeError:
        raise
    except Exception as exc:
        raise WireDecodeError(f"undecodable wire frame: {exc}") from exc


# -- batch container ---------------------------------------------------------------


def encode_batch(frames: Sequence[bytes]) -> bytes:
    """Pack already-encoded frames into one container frame.

    The batching transport coalesces per-peer traffic with this: one
    transport-level frame (one length prefix, one ``sendall``) carries many
    envelopes. Combined with the struct fast path above, a steady-state
    batch of hot messages contains no pickle headers at all.
    """
    out = bytearray([TAG_BATCH])
    out += _U32.pack(len(frames))
    for frame in frames:
        out += _U32.pack(len(frame))
        out += frame
    return bytes(out)


def decode_batch(data: bytes) -> list[bytes]:
    """Split a container frame back into its member frames."""
    if not data or data[0] != TAG_BATCH:
        raise WireDecodeError("not a batch frame")
    try:
        (count,) = _U32.unpack_from(data, 1)
        pos = 1 + _U32.size
        frames = []
        for _ in range(count):
            (length,) = _U32.unpack_from(data, pos)
            pos += _U32.size
            frames.append(data[pos:pos + length])
            if len(frames[-1]) != length:
                raise WireDecodeError("truncated batch frame")
            pos += length
        if pos != len(data):
            raise WireDecodeError("trailing bytes after batch frame")
        return frames
    except struct.error as exc:
        raise WireDecodeError(f"malformed batch frame: {exc}") from exc


def is_batch(frame: bytes) -> bool:
    return bool(frame) and frame[0] == TAG_BATCH
