"""Wire serialization for cluster messages.

The paper's Akka cluster serializes actor messages with a configured
serializer before they cross node boundaries. Here every
:class:`~repro.cluster.protocol.WireEnvelope` — carrying the existing
``repro.platform.messages`` payloads (``PositionIngested``,
``CellObservation``, ``ForecastShared``, alerts, state updates) plus the
cluster control vocabulary — is encoded with pickle and decoded through a
*restricted* unpickler that only resolves classes from trusted modules
(``repro.*``, numpy, and a small stdlib allowlist). That keeps the loopback
and TCP transports byte-for-byte identical: the loopback transport round
trips the same frames the sockets carry, so serialization bugs surface in
the deterministic tests.
"""

from __future__ import annotations

import io
import pickle
from typing import Any

#: Module prefixes whose classes may appear in a wire frame.
TRUSTED_PREFIXES = ("repro.",)

#: Exact modules from outside the project that payloads legitimately use
#: (numpy arrays inside forecasts, deques inside actor state snapshots).
TRUSTED_MODULES = frozenset({
    "builtins",
    "collections",
    "numpy",
    "numpy.core.multiarray",
    "numpy._core.multiarray",
    "numpy.core.numeric",
    "numpy._core.numeric",
    "numpy.dtypes",
})

#: Builtins that restricted frames may reference. Notably *not* ``eval``,
#: ``exec``, ``getattr`` or ``__import__``.
_SAFE_BUILTINS = frozenset({
    "complex", "dict", "frozenset", "list", "set", "tuple", "bytearray",
    "bytes", "float", "int", "str", "bool", "slice", "range", "object",
})


class WireDecodeError(ValueError):
    """A frame failed to decode or referenced an untrusted class."""


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module == "builtins":
            if name not in _SAFE_BUILTINS:
                raise WireDecodeError(
                    f"wire frame references forbidden builtin {name!r}")
            return super().find_class(module, name)
        if module in TRUSTED_MODULES or module.startswith(TRUSTED_PREFIXES):
            return super().find_class(module, name)
        raise WireDecodeError(
            f"wire frame references untrusted class {module}.{name}")


def encode(obj: Any) -> bytes:
    """Serialize one wire message to a byte frame."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(data: bytes) -> Any:
    """Deserialize a byte frame, resolving only trusted classes."""
    try:
        return _RestrictedUnpickler(io.BytesIO(data)).load()
    except WireDecodeError:
        raise
    except Exception as exc:
        raise WireDecodeError(f"undecodable wire frame: {exc}") from exc
