"""Cluster membership and heartbeat-based failure detection.

State machine per member (a gossip-free subset of Akka cluster's):

``JOINING -> UP -> SUSPECT -> DOWN``

A member becomes SUSPECT after ``suspect_after_s`` without a heartbeat and
DOWN after ``down_after_s``; a heartbeat from a SUSPECT member restores it
to UP. DOWN is terminal for the *incarnation*: heartbeats from a downed
member are ignored (no split-brain resurrection), and the only way back in
is an explicit re-``Join`` — a restarted node may reuse its id, which
:meth:`Membership.add` records as a new incarnation.

Time is injected through a ``clock`` callable so deterministic tests drive
the detector from a virtual clock while TCP deployments use
``time.monotonic`` — the default. No code in this module may read the
``time`` module directly outside that default (virtual-time tests would
race); ``tests/cluster/test_virtual_clock.py`` enforces this.

Under TCP, heartbeats arrive on transport reader threads while the ticker
thread runs :meth:`Membership.check` — every mutation and view therefore
goes through one lock, and observers (node stats, telemetry gauges) read
:meth:`Membership.snapshot`, which returns *copies* of the member records:
the same discipline the actor metrics ``snapshot()`` established, applied
to the membership dict instead of live references.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable


class MemberState(enum.Enum):
    JOINING = "joining"
    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"


@dataclass
class Member:
    """One node's view of a peer."""

    node_id: str
    address: Any
    state: MemberState
    last_heartbeat: float
    #: Bumped each time a DOWN member re-joins under the same id (node
    #: restart); lets observers distinguish a revival from steady UP.
    incarnation: int = 0


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of membership, failure detection and sharding."""

    #: Seconds between outbound heartbeats.
    heartbeat_interval_s: float = 0.5
    #: Silence after which a member is suspected.
    suspect_after_s: float = 2.0
    #: Silence after which a suspect is declared down.
    down_after_s: float = 5.0
    #: Number of shards entity keys hash into (Akka's default is 1000;
    #: anything ≫ max node count gives smooth rebalancing).
    num_shards: int = 64
    #: Virtual nodes per member on the consistent-hash ring.
    ring_replicas: int = 32
    #: Wrap the node's transport in a
    #: :class:`~repro.cluster.transport.BatchingTransport` (outbound
    #: per-peer micro-batching — the cross-node throughput knob).
    transport_batching: bool = False
    #: Longest a buffered frame may wait for peers before its batch is
    #: flushed (TCP mode; loopback flushes synchronously on pump).
    batch_linger_ms: float = 2.0
    #: Flush a peer's buffer once it holds this many bytes…
    max_batch_bytes: int = 64 * 1024
    #: …or this many frames, whichever comes first.
    max_batch_msgs: int = 128
    #: Bound of each per-peer outbound queue in
    #: :class:`~repro.cluster.transport.TcpTransport`.
    outbound_queue_frames: int = 10_000
    #: How long a sender blocks on a full outbound queue before
    #: :class:`~repro.cluster.transport.TransportError` (backpressure).
    send_block_timeout_s: float = 2.0
    #: Leader-side anti-entropy period: the coordinator re-broadcasts the
    #: current shard table and member roster this often, so a peer that
    #: missed a one-shot ``ShardTableUpdate`` / ``MemberUp`` (dropped
    #: frame, transient partition) still converges. <= 0 disables.
    anti_entropy_interval_s: float = 2.0
    #: A joining node re-sends ``Join`` to its seed contact this often
    #: until the ``Welcome`` arrives (the handshake itself may be lost on
    #: a lossy network). <= 0 disables.
    join_retry_interval_s: float = 1.0
    #: How often each node sends a :class:`~repro.cluster.protocol.LoadReport`
    #: window to the leader. <= 0 disables load reporting (and with it the
    #: rebalancer, which cannot plan blind).
    load_report_interval_s: float = 1.0
    #: Leader-side rebalance evaluation period. <= 0 disables live
    #: rebalancing entirely — the default, so the control loop is opt-in
    #: and a static cluster behaves exactly as before.
    rebalance_interval_s: float = 0.0
    #: Plan only when the busiest node carries at least this multiple of
    #: the least-busy node's load.
    rebalance_imbalance_ratio: float = 1.5
    #: Most shards one plan may move (small plans keep each migration's
    #: transfer + replay window short).
    rebalance_max_moves: int = 8
    #: Skip planning when the whole window saw fewer messages than this
    #: (idle-cluster noise must not cause migrations).
    rebalance_min_messages: int = 32
    #: During handoff, export actor state and transfer it to the new
    #: owner (live migration). Off falls back to pre-rebalance behaviour:
    #: new owners start empty and rebuild from stream replay.
    handoff_transfer_state: bool = True
    #: Autoscaler high watermark: sustained per-node messages *per second*
    #: above this recommends adding a node. <= 0 disables autoscaling.
    autoscale_high_msgs_per_s: float = 0.0
    #: Low watermark: sustained per-node msgs/s below this recommends
    #: draining the highest-id non-leader node.
    autoscale_low_msgs_per_s: float = 0.0
    #: Consecutive rebalance evaluations a watermark must hold before the
    #: autoscaler emits a decision (debounce).
    autoscale_sustain: int = 3
    #: Fleet size bounds the autoscaler must respect.
    autoscale_min_nodes: int = 1
    autoscale_max_nodes: int = 8

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if not (0 < self.suspect_after_s <= self.down_after_s):
            raise ValueError(
                "need 0 < suspect_after_s <= down_after_s")
        if self.max_batch_msgs < 1:
            raise ValueError("max_batch_msgs must be >= 1")
        if self.outbound_queue_frames < 1:
            raise ValueError("outbound_queue_frames must be >= 1")
        if self.rebalance_imbalance_ratio < 1.0:
            raise ValueError("rebalance_imbalance_ratio must be >= 1.0")
        if self.rebalance_max_moves < 1:
            raise ValueError("rebalance_max_moves must be >= 1")
        if self.autoscale_sustain < 1:
            raise ValueError("autoscale_sustain must be >= 1")
        if not (1 <= self.autoscale_min_nodes <= self.autoscale_max_nodes):
            raise ValueError(
                "need 1 <= autoscale_min_nodes <= autoscale_max_nodes")


@dataclass(frozen=True)
class MembershipEvent:
    """A state transition observed by the failure detector."""

    node_id: str
    state: MemberState


class Membership:
    """This node's registry of cluster members (itself included)."""

    def __init__(self, node_id: str, address: Any,
                 config: ClusterConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.node_id = node_id
        self.config = config or ClusterConfig()
        self.clock = clock
        self._lock = threading.Lock()
        self._members: dict[str, Member] = {
            node_id: Member(node_id, address, MemberState.UP, clock()),
        }
        #: Members evacuating their shards: still alive (they heartbeat
        #: and route) but excluded from shard assignment. Cleared when the
        #: member goes DOWN or re-joins.
        self._draining: set[str] = set()

    # -- views ---------------------------------------------------------------------
    #
    # Every view copies under the lock: TCP reader threads mutate member
    # records concurrently, so handing out live references would let an
    # observer see a member mid-transition (or race a dict resize).

    def snapshot(self) -> list[Member]:
        """A point-in-time copy of every member record, sorted by id.

        The canonical read path for observers — node ``stats()`` and the
        telemetry heartbeat gauges derive everything from this instead of
        touching the live dict.
        """
        with self._lock:
            return sorted((replace(m) for m in self._members.values()),
                          key=lambda m: m.node_id)

    def members(self) -> list[Member]:
        return self.snapshot()

    def get(self, node_id: str) -> Member | None:
        with self._lock:
            member = self._members.get(node_id)
            return None if member is None else replace(member)

    def state_of(self, node_id: str) -> MemberState | None:
        """Just a member's state, without the record copy :meth:`get`
        pays — the per-message shard-routing check uses this."""
        with self._lock:
            member = self._members.get(node_id)
            return None if member is None else member.state

    def alive_ids(self) -> list[str]:
        """Members counted for shard ownership: UP and SUSPECT (suspicion
        alone must not reshuffle shards — only a DOWN declaration does)."""
        with self._lock:
            return sorted(m.node_id for m in self._members.values()
                          if m.state in (MemberState.UP, MemberState.SUSPECT))

    def draining_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._draining)

    def assignable_ids(self) -> list[str]:
        """Alive members eligible to own shards: :meth:`alive_ids` minus
        the draining set. Falls back to the full alive set if draining
        would leave nobody to own shards (the last node cannot drain)."""
        draining = self.draining_ids()
        alive = self.alive_ids()
        assignable = [n for n in alive if n not in draining]
        return assignable or alive

    def peer_ids(self) -> list[str]:
        """Every non-self member that is not DOWN (heartbeat targets)."""
        with self._lock:
            return sorted(m.node_id for m in self._members.values()
                          if m.node_id != self.node_id
                          and m.state is not MemberState.DOWN)

    def state_counts(self) -> dict[str, int]:
        """``state value -> member count`` (telemetry gauge payload)."""
        counts = {state.value: 0 for state in MemberState}
        with self._lock:
            for member in self._members.values():
                counts[member.state.value] += 1
        return counts

    def leader(self) -> str:
        """The coordinator node: lowest id among alive members (stable,
        deterministic, recomputed identically on every node)."""
        alive = self.alive_ids()
        return alive[0] if alive else self.node_id

    def is_leader(self) -> bool:
        return self.leader() == self.node_id

    # -- mutations -----------------------------------------------------------------

    def add(self, node_id: str, address: Any) -> bool:
        """Admit (or refresh) a member as UP; returns True if the alive set
        changed. Re-admitting a DOWN member (a node restarted under the
        same id) starts a new incarnation."""
        now = self.clock()
        with self._lock:
            member = self._members.get(node_id)
            if member is None:
                self._members[node_id] = Member(node_id, address,
                                                MemberState.UP, now)
                return True
            member.address = address
            self._draining.discard(node_id)
            if member.state is not MemberState.UP:
                # Only a state change stamps the heartbeat timer: an ``add``
                # of an already-UP member (leader anti-entropy re-broadcasts)
                # must not keep a silent node looking alive.
                member.last_heartbeat = now
                changed = member.state is MemberState.DOWN
                if changed:
                    member.incarnation += 1
                member.state = MemberState.UP
                return changed
            return False

    def heartbeat(self, node_id: str) -> bool:
        """Record a heartbeat; returns True if it revived a SUSPECT."""
        now = self.clock()
        with self._lock:
            member = self._members.get(node_id)
            if member is None or member.state is MemberState.DOWN:
                return False
            member.last_heartbeat = now
            if member.state is MemberState.SUSPECT:
                member.state = MemberState.UP
                return True
            return False

    def mark_down(self, node_id: str) -> bool:
        with self._lock:
            self._draining.discard(node_id)
            member = self._members.get(node_id)
            if member is None or member.state is MemberState.DOWN:
                return False
            member.state = MemberState.DOWN
            return True

    def mark_draining(self, node_id: str) -> bool:
        """Flag a member as evacuating; returns True if this is news.
        Draining is not a :class:`MemberState` — the member stays UP for
        failure detection and message routing; only shard assignment
        (:meth:`assignable_ids`) treats it as gone."""
        with self._lock:
            member = self._members.get(node_id)
            if (member is None or member.state is MemberState.DOWN
                    or node_id in self._draining):
                return False
            self._draining.add(node_id)
            return True

    def remove(self, node_id: str) -> None:
        if node_id != self.node_id:
            with self._lock:
                self._members.pop(node_id, None)
                self._draining.discard(node_id)

    def check(self) -> list[MembershipEvent]:
        """Run the failure detector; returns the transitions it performed."""
        now = self.clock()
        events: list[MembershipEvent] = []
        with self._lock:
            for member in self._members.values():
                if member.node_id == self.node_id:
                    continue
                silence = now - member.last_heartbeat
                if (member.state is MemberState.UP
                        and silence >= self.config.suspect_after_s):
                    member.state = MemberState.SUSPECT
                    events.append(MembershipEvent(member.node_id,
                                                  MemberState.SUSPECT))
                if (member.state is MemberState.SUSPECT
                        and silence >= self.config.down_after_s):
                    member.state = MemberState.DOWN
                    self._draining.discard(member.node_id)
                    events.append(MembershipEvent(member.node_id,
                                                  MemberState.DOWN))
        return events
