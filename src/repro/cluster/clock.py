"""Injectable clocks for the cluster runtime.

Every time-dependent component in :mod:`repro.cluster` (heartbeats, the
failure detector, batching lingers) reads time through a ``clock``
callable. Production wiring passes ``time.monotonic``; deterministic
tests and the :mod:`repro.sim` harness pass one shared
:class:`VirtualClock` so a whole cluster — including its fault timeline —
advances only when the driver says so.
"""

from __future__ import annotations


class VirtualClock:
    """A deterministic monotonic clock, advanced explicitly.

    Instances are callable with the same signature as ``time.monotonic``,
    so one object can be handed to every clock-accepting component.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise ValueError("virtual time cannot move backwards")
        self._now += dt_s
        return self._now
