"""The cluster wire vocabulary.

Exactly one frame type crosses the transport — :class:`WireEnvelope` — and
its ``message`` field carries either an application payload (one of the
``repro.platform.messages`` types, or anything picklable from ``repro.*``)
or one of the control messages below. Control messages implement the
seed-node join protocol, heartbeating, the shard table broadcast and node
shutdown; they are deliberately gossip-free — the coordinator (cluster
leader) is the single writer of the shard table, as in Akka cluster
sharding's coordinator singleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class WireEnvelope:
    """One frame on the wire.

    ``kind`` selects the delivery path on the receiving node:

    * ``"sharded"`` — route ``message`` to the ``entity`` actor for ``key``
      (spawning it if needed); forwarded at most ``MAX_HOPS`` times when the
      sender's shard table is stale.
    * ``"named"`` — deliver to the local actor called ``target``.
    * ``"ask"`` / ``"reply"`` — request/response with ``corr_id``
      correlation; ``ask`` works for both named actors and control
      handlers.
    * ``"control"`` — handled by the node itself (membership & sharding).
    """

    kind: str
    src: str
    message: Any = None
    entity: str | None = None
    key: Any = None
    target: str | None = None
    sender_node: str | None = None
    sender_name: str | None = None
    corr_id: int | None = None
    hops: int = 0
    #: Telemetry trace this frame belongs to (sampled; usually None). The
    #: codec carries it on the struct fast path (a flag bit in the kind
    #: byte plus 8 bytes) and for free in the pickle fallback, so traces
    #: survive node boundaries on either wire form.
    trace_id: int | None = None


#: Forwarding bound for sharded messages routed with a stale table.
MAX_HOPS = 3


# -- membership control ------------------------------------------------------------


@dataclass(frozen=True)
class Join:
    """New node -> seed: request admission to the cluster."""

    node_id: str
    address: Any


@dataclass(frozen=True)
class Welcome:
    """Seed -> new node: the current membership and shard table."""

    members: tuple[tuple[str, Any], ...]   #: ``(node_id, address)`` pairs
    table_epoch: int
    table_nodes: tuple[str, ...]


@dataclass(frozen=True)
class MemberUp:
    """Seed -> everyone: a node was admitted."""

    node_id: str
    address: Any


@dataclass(frozen=True)
class MemberDown:
    """Coordinator -> everyone: a node was declared down."""

    node_id: str


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal (also refreshes SUSPECT back to UP)."""

    node_id: str


@dataclass(frozen=True)
class Leave:
    """Graceful departure announcement (shards hand off immediately)."""

    node_id: str


@dataclass(frozen=True)
class ShardTableUpdate:
    """Coordinator -> everyone: install shard table ``epoch`` computed over
    ``nodes`` (every node derives the identical assignment from the node
    list via the shared consistent-hash ring)."""

    epoch: int
    nodes: tuple[str, ...]


@dataclass(frozen=True)
class ControlRequest:
    """Ask-pattern control message dispatched to a node-level handler
    registered with :meth:`ClusterNode.register_control`."""

    op: str
    params: dict = field(default_factory=dict)
