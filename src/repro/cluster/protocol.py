"""The cluster wire vocabulary.

Exactly one frame type crosses the transport — :class:`WireEnvelope` — and
its ``message`` field carries either an application payload (one of the
``repro.platform.messages`` types, or anything picklable from ``repro.*``)
or one of the control messages below. Control messages implement the
seed-node join protocol, heartbeating, the shard table broadcast and node
shutdown; they are deliberately gossip-free — the coordinator (cluster
leader) is the single writer of the shard table, as in Akka cluster
sharding's coordinator singleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class WireEnvelope:
    """One frame on the wire.

    ``kind`` selects the delivery path on the receiving node:

    * ``"sharded"`` — route ``message`` to the ``entity`` actor for ``key``
      (spawning it if needed); forwarded at most ``MAX_HOPS`` times when the
      sender's shard table is stale.
    * ``"named"`` — deliver to the local actor called ``target``.
    * ``"ask"`` / ``"reply"`` — request/response with ``corr_id``
      correlation; ``ask`` works for both named actors and control
      handlers.
    * ``"control"`` — handled by the node itself (membership & sharding).
    """

    kind: str
    src: str
    message: Any = None
    entity: str | None = None
    key: Any = None
    target: str | None = None
    sender_node: str | None = None
    sender_name: str | None = None
    corr_id: int | None = None
    hops: int = 0
    #: Telemetry trace this frame belongs to (sampled; usually None). The
    #: codec carries it on the struct fast path (a flag bit in the kind
    #: byte plus 8 bytes) and for free in the pickle fallback, so traces
    #: survive node boundaries on either wire form.
    trace_id: int | None = None


#: Forwarding bound for sharded messages routed with a stale table.
MAX_HOPS = 3


# -- membership control ------------------------------------------------------------


@dataclass(frozen=True)
class Join:
    """New node -> seed: request admission to the cluster."""

    node_id: str
    address: Any


@dataclass(frozen=True)
class Welcome:
    """Seed -> new node: the current membership and shard table."""

    members: tuple[tuple[str, Any], ...]   #: ``(node_id, address)`` pairs
    table_epoch: int
    table_nodes: tuple[str, ...]
    #: Rebalance overrides of the current table (``(shard, owner)`` pairs).
    #: Defaults keep pre-rebalance peers wire-compatible.
    table_overrides: tuple[tuple[int, str], ...] = ()


@dataclass(frozen=True)
class MemberUp:
    """Seed -> everyone: a node was admitted."""

    node_id: str
    address: Any


@dataclass(frozen=True)
class MemberDown:
    """Coordinator -> everyone: a node was declared down."""

    node_id: str


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal (also refreshes SUSPECT back to UP)."""

    node_id: str


@dataclass(frozen=True)
class Leave:
    """Graceful departure announcement (shards hand off immediately)."""

    node_id: str


@dataclass(frozen=True)
class ShardTableUpdate:
    """Coordinator -> everyone: install shard table ``epoch`` computed over
    ``nodes`` (every node derives the identical assignment from the node
    list via the shared consistent-hash ring). ``overrides`` layers the
    rebalancer's explicit ``shard -> owner`` moves on top of the derived
    ring assignment; receivers apply them after deriving, so the update
    stays a compact description rather than a 64-entry table dump."""

    epoch: int
    nodes: tuple[str, ...]
    overrides: tuple[tuple[int, str], ...] = ()


# -- load telemetry & rebalancing ---------------------------------------------------


@dataclass(frozen=True)
class LoadReport:
    """Node -> leader: one load-telemetry window, sent on the heartbeat
    cadence (``load_report_interval_s``). Counters are *deltas* since the
    node's previous report, so the leader can window them without clock
    coordination; gauges (mailbox depth, consumer lag, entity count) are
    instantaneous."""

    node_id: str
    #: Sum of queued messages across local actor mailboxes at report time.
    mailbox_depth: int
    #: Broker consumer lag (seed node only; 0 elsewhere).
    consumer_lag: int
    #: Actor processing time spent since the previous report, from the
    #: telemetry dispatch recorder (milliseconds; 0.0 without telemetry).
    busy_ms: float
    #: Locally hosted entity actors at report time.
    entities: int
    #: ``(shard, messages delivered locally since the previous report)``.
    shard_messages: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class MigrationPlan:
    """Leader -> everyone: the move list that shard table ``epoch``
    executes, for observability and the sim harness's migration
    accounting. The authoritative assignment travels separately in the
    :class:`ShardTableUpdate` carrying the matching overrides."""

    epoch: int
    #: ``(shard, from_node, to_node)`` triples.
    moves: tuple[tuple[int, str, str], ...]


@dataclass(frozen=True)
class Draining:
    """Node -> everyone: this node is evacuating — assign it no shards.
    Unlike :class:`Leave`, the node stays UP (and keeps heartbeating)
    until its shards and their state have migrated off."""

    node_id: str


@dataclass(frozen=True)
class ShardStateTransfer:
    """Departing owner -> new owner: exported entity state of keys leaving
    with a live handoff, so the new owner resumes from the old owner's
    actor state instead of an empty actor plus history replay. Entries are
    applied through the receiving node's sharded routers as
    ``RestoreState`` messages; adopt-if-newer guards make late or
    duplicated transfers safe."""

    shard: int
    epoch: int
    #: ``(entity, key, exported state)`` triples.
    entries: tuple[tuple[str, Any, dict], ...]


@dataclass(frozen=True)
class ControlRequest:
    """Ask-pattern control message dispatched to a node-level handler
    registered with :meth:`ClusterNode.register_control`."""

    op: str
    params: dict = field(default_factory=dict)
