"""The cluster node: one ActorSystem + transport + membership + shards.

A :class:`ClusterNode` is the multi-node analogue of a bare
:class:`~repro.actors.system.ActorSystem`: it owns a local system, speaks
:class:`~repro.cluster.protocol.WireEnvelope` frames over a
:class:`~repro.cluster.transport.Transport`, runs the heartbeat failure
detector, and — when it is the cluster leader — acts as the
:class:`ShardCoordinator` that assigns consistent-hash shards to nodes and
orchestrates handoff when membership changes.

Delivery guarantees (the documented in-flight window): messages routed to
a shard are buffered and redelivered whenever the owner is unreachable or
unknown; what can be lost is only what a crashed node had already accepted
into its mailboxes, plus TCP frames written to a socket whose peer died
before reading them. The platform layer narrows that window further by
replaying the AIS topic from committed offsets after a node loss.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import replace
from typing import Any, Callable, Iterable

from repro.actors.actor import ActorRef, Envelope
from repro.actors.system import ActorSystem, Future
from repro.cluster import codec
from repro.cluster.membership import (
    ClusterConfig,
    Membership,
    MembershipEvent,
    MemberState,
)
from repro.cluster.protocol import (
    MAX_HOPS,
    ControlRequest,
    Draining,
    Heartbeat,
    Join,
    Leave,
    LoadReport,
    MemberDown,
    MemberUp,
    MigrationPlan,
    ShardStateTransfer,
    ShardTableUpdate,
    Welcome,
    WireEnvelope,
)
from repro.cluster.rebalance import Rebalancer
from repro.cluster.remote import RemoteActorRef, ReplyRelay
from repro.cluster.sharding import ShardRouter, ShardTable, shard_for_key
from repro.cluster.transport import (
    BatchingTransport,
    Transport,
    TransportError,
)
from repro.telemetry import Telemetry
from repro.telemetry.trace import (
    clear_current_trace,
    current_trace,
    set_current_trace,
)


#: Bound lazily — the cluster layer must stay importable without pulling
#: :mod:`repro.platform` in (which imports this package right back).
_RESTORE_STATE = None


def _restore_state_message():
    global _RESTORE_STATE
    if _RESTORE_STATE is None:
        from repro.platform.messages import RestoreState
        _RESTORE_STATE = RestoreState
    return _RESTORE_STATE


class ShardCoordinator:
    """The leader-side authority over the shard table.

    Every node instantiates one, but only the current leader *acts*: on any
    membership change it bumps the table epoch, installs the new table
    locally and broadcasts ``ShardTableUpdate(epoch, nodes)`` — each
    receiver derives the identical consistent-hash assignment from the node
    list, so the table itself never crosses the wire.
    """

    def __init__(self, node: "ClusterNode") -> None:
        self._node = node
        self.rebalances = 0

    @property
    def is_active(self) -> bool:
        return self._node.membership.is_leader()

    def membership_changed(self) -> None:
        """Recompute and broadcast the shard table (leader only).

        The table is computed over the *assignable* set — alive members
        minus draining ones — and carries forward the rebalancer's
        overrides, dropping any whose target left that set (a shard must
        never stay pinned to a draining or dead node).
        """
        if not self.is_active:
            return
        node = self._node
        assignable = tuple(node.membership.assignable_ids())
        node_set = set(assignable)
        overrides = tuple((shard, owner) for shard, owner
                          in node.table.overrides if owner in node_set)
        update = ShardTableUpdate(epoch=node.table.epoch + 1,
                                  nodes=assignable, overrides=overrides)
        self.rebalances += 1
        node._install_table(update)
        node.broadcast_control(update)


class ClusterNode:
    """One member of the sharded actor cluster."""

    def __init__(self, node_id: str, transport: Transport,
                 config: ClusterConfig | None = None,
                 system_mode: str = "deterministic", workers: int = 4,
                 record_metrics: bool = False,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.node_id = node_id
        self.config = config or ClusterConfig()
        if (self.config.transport_batching
                and not isinstance(transport, BatchingTransport)):
            # The wrapper inherits this node's clock: under a virtual
            # clock the linger bookkeeping must not read wall time.
            transport = BatchingTransport(
                transport,
                linger_ms=self.config.batch_linger_ms,
                max_batch_bytes=self.config.max_batch_bytes,
                max_batch_msgs=self.config.max_batch_msgs,
                clock=clock)
        self.transport = transport
        self.clock = clock
        self.system = ActorSystem(name=node_id, mode=system_mode,
                                  workers=workers,
                                  record_metrics=record_metrics)
        self.membership = Membership(node_id, transport.address,
                                     self.config, clock)
        self.coordinator = ShardCoordinator(self)
        self.table = ShardTable(1, (node_id,), self.config.num_shards,
                                self.config.ring_replicas)
        self.joined = threading.Event()

        self._routers: dict[str, ShardRouter] = {}
        self._control: dict[str, Callable[[dict], Any]] = {}
        self._pending: dict[int, list[WireEnvelope]] = {}
        self._asks: dict[int, Future] = {}
        self._corr = itertools.count(1)
        self._lock = threading.RLock()
        self._last_heartbeat_sent = float("-inf")
        self._last_anti_entropy = float("-inf")
        self._seed_contact: tuple[str, Any] | None = None
        self._last_join_sent = float("-inf")
        self._last_load_report = float("-inf")
        self._last_busy_ms = 0.0
        self._closed = False
        #: Leader-side control loop (constructed everywhere so reports
        #: always land; only the active coordinator plans).
        self.rebalancer = Rebalancer(self)
        #: Broker consumer lag provider, wired by the platform layer on
        #: the seed node (others report 0).
        self.consumer_lag_fn: Callable[[], int] | None = None
        #: Hooks fired after a new shard table is installed
        #: (``fn(old_table, new_table)``) — the platform uses this to
        #: trigger stream replay for reassigned shards.
        self.on_table_change: list[Callable[[ShardTable, ShardTable], None]] = []
        #: Hooks fired on membership transitions (``fn(event)``).
        self.on_member_event: list[Callable[[MembershipEvent], None]] = []

        self.frames_in = 0
        self.frames_out = 0
        self.forwarded = 0
        self.buffered = 0
        self.redelivered = 0
        self.shards_moved = 0
        self.handoff_keys_released = 0
        self.load_reports_sent = 0
        self.migration_plans_seen = 0
        self.state_transfers_sent = 0
        self.state_transfers_received = 0
        self.state_transfer_drops = 0
        self.telemetry: Telemetry | None = None

    # -- lifecycle ----------------------------------------------------------------

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach a telemetry bundle: the actor system feeds its dispatch
        instruments, the transport registers its batch/flush metrics, and
        the node contributes routing counters plus heartbeat gauges (read
        from :meth:`Membership.snapshot`, never the live dict)."""
        self.telemetry = telemetry
        self.system.telemetry = telemetry
        registry = telemetry.registry
        self.transport.bind_telemetry(registry)
        for state in ("up", "suspect", "down", "joining"):
            registry.gauge(
                "cluster_members", {"state": state},
                fn=lambda s=state: self.membership.state_counts()[s])
        registry.gauge("node_frames_in", fn=lambda: self.frames_in)
        registry.gauge("node_frames_out", fn=lambda: self.frames_out)
        registry.gauge("node_forwarded", fn=lambda: self.forwarded)
        registry.gauge("node_buffered", fn=lambda: self.buffered)
        registry.gauge("node_redelivered", fn=lambda: self.redelivered)
        registry.gauge("node_shards_moved", fn=lambda: self.shards_moved)
        registry.gauge("node_handoff_keys_released",
                       fn=lambda: self.handoff_keys_released)
        registry.gauge("node_pending_shard_messages",
                       fn=lambda: self.pending_count)
        registry.gauge("node_state_transfers_sent",
                       fn=lambda: self.state_transfers_sent)
        registry.gauge("node_state_transfers_received",
                       fn=lambda: self.state_transfers_received)
        registry.gauge("node_rebalance_plans",
                       fn=lambda: self.rebalancer.plans_total)
        registry.gauge("node_rebalance_moves",
                       fn=lambda: self.rebalancer.moves_total)

    def start(self) -> None:
        self.transport.start(self._on_frame)

    def join(self, seed_id: str, seed_address: Any) -> None:
        """Ask the seed node for admission (the gossip-free join protocol).

        Over loopback, pump the hub afterwards; over TCP, wait on
        :attr:`joined`. Until the ``Welcome`` arrives, :meth:`tick`
        re-sends the ``Join`` every ``join_retry_interval_s`` — the
        handshake must survive a lossy network.
        """
        self.transport.add_peer(seed_id, seed_address)
        self._seed_contact = (seed_id, seed_address)
        self._last_join_sent = self.clock()
        self.send_control(seed_id, Join(self.node_id,
                                        self.transport.address))

    def leave(self) -> None:
        """Announce graceful departure so shards hand off immediately."""
        self.broadcast_control(Leave(self.node_id))

    def drain(self) -> None:
        """Start evacuating this node: announce draining so the
        coordinator assigns it no shards, while the node stays UP — it
        keeps heartbeating, routing, and transferring state until its
        shards have migrated off. Call :meth:`leave` once local entity
        routers are empty (the harness's scale-down sequence)."""
        self.broadcast_control(Draining(self.node_id))
        if self.membership.mark_draining(self.node_id):
            self.coordinator.membership_changed()

    def shutdown(self) -> None:
        self._closed = True
        self.transport.close()
        self.system.shutdown()

    # -- entities -----------------------------------------------------------------

    def register_entity(self, entity: str, factory, strategy=None,
                        local_router=None) -> ShardRouter:
        """Declare a sharded entity type (e.g. ``vessel``); returns its
        location-transparent router. Every node must register the same
        entity set — an entity's actors can live on any of them.
        ``local_router`` substitutes a specialised
        :class:`~repro.actors.router.KeyRouter` for local delivery (the
        collision entity's single-occupant fast path)."""
        if entity in self._routers:
            raise ValueError(f"entity {entity!r} already registered")
        router = ShardRouter(self, entity, factory, strategy=strategy,
                             local_router=local_router)
        self._routers[entity] = router
        return router

    def router(self, entity: str) -> ShardRouter:
        return self._routers[entity]

    def register_control(self, op: str, handler: Callable[[dict], Any]
                         ) -> None:
        """Register a node-level request handler reachable via
        :meth:`ask_control` (e.g. ``"stats"``, ``"metrics"``)."""
        self._control[op] = handler

    # -- shard routing -------------------------------------------------------------

    def shard_owner(self, shard: int) -> str:
        return self.table.owner_of(shard)

    def _sender_info(self, sender) -> tuple[str | None, str | None]:
        if sender is None:
            return None, None
        if isinstance(sender, RemoteActorRef):
            return sender.node_id, sender.name
        return self.node_id, sender.name

    def _materialize_sender(self, env: WireEnvelope):
        if env.sender_name is None:
            return None
        if env.sender_node == self.node_id:
            return ActorRef(env.sender_name, self.system)
        return RemoteActorRef(env.sender_name, env.sender_node, self)

    def send_sharded(self, entity: str, key: Any, message: Any,
                     sender=None) -> None:
        """Route a message to the owner of ``key``'s shard (the remote leg
        of :meth:`ShardRouter.tell`)."""
        sender_node, sender_name = self._sender_info(sender)
        env = WireEnvelope(kind="sharded", src=self.node_id, entity=entity,
                           key=key, message=message,
                           sender_node=sender_node, sender_name=sender_name,
                           trace_id=current_trace())
        self._route_sharded(env)

    def _route_sharded(self, env: WireEnvelope) -> None:
        shard = shard_for_key(env.entity, env.key, self.config.num_shards)
        owner = self.table.owner_of(shard)
        if owner == self.node_id:
            router = self._routers.get(env.entity)
            if router is None:
                self._dead_letter(env)
                return
            router.deliver_local(env.key, env.message,
                                 sender=self._materialize_sender(env))
            return
        state = self.membership.state_of(owner)
        if state is not MemberState.UP:
            # Owner unreachable or suspect: buffer for redelivery once the
            # coordinator reassigns the shard (or the owner recovers).
            self._buffer(shard, env)
            return
        if not self._send(owner, env):
            self._buffer(shard, env)

    def _buffer(self, shard: int, env: WireEnvelope) -> None:
        with self._lock:
            self._pending.setdefault(shard, []).append(env)
            self.buffered += 1

    def flush_pending(self) -> int:
        """Re-route buffered shard messages (called after table installs
        and heartbeat recoveries). Returns how many were redelivered."""
        with self._lock:
            pending = self._pending
            self._pending = {}
        count = 0
        for shard, envelopes in pending.items():
            for env in envelopes:
                count += 1
                self._route_sharded(replace(env, hops=0))
        if count:
            self.redelivered += count
        return count

    @property
    def pending_count(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._pending.values())

    # -- named refs / asks ---------------------------------------------------------

    def actor_ref(self, name: str, node_id: str | None = None):
        """A ref to a named (non-sharded) actor anywhere in the cluster."""
        if node_id is None or node_id == self.node_id:
            return self.system.actor_ref(name)
        return RemoteActorRef(name, node_id, self)

    def send_named(self, node_id: str, name: str, message: Any,
                   sender=None) -> None:
        if node_id == self.node_id:
            self.system.actor_ref(name).tell(message, sender=sender)
            return
        sender_node, sender_name = self._sender_info(sender)
        env = WireEnvelope(kind="named", src=self.node_id, target=name,
                           message=message, sender_node=sender_node,
                           sender_name=sender_name,
                           trace_id=current_trace())
        self._send(node_id, env)

    def ask_named(self, node_id: str, name: str, message: Any) -> Future:
        if node_id == self.node_id:
            return self.system.actor_ref(name).ask(message)
        future = Future()
        with self._lock:
            corr = next(self._corr)
            self._asks[corr] = future
        env = WireEnvelope(kind="ask", src=self.node_id, target=name,
                           message=message, corr_id=corr)
        if not self._send(node_id, env):
            with self._lock:
                self._asks.pop(corr, None)
            raise TransportError(f"ask to {node_id} failed to send")
        return future

    def ask_control(self, node_id: str, op: str,
                    params: dict | None = None) -> Future:
        """Ask a node-level control handler (local or remote)."""
        request = ControlRequest(op=op, params=params or {})
        future = Future()
        if node_id == self.node_id:
            future.complete(self._handle_control_request(request))
            return future
        with self._lock:
            corr = next(self._corr)
            self._asks[corr] = future
        env = WireEnvelope(kind="ask", src=self.node_id, target=None,
                           message=request, corr_id=corr)
        if not self._send(node_id, env):
            with self._lock:
                self._asks.pop(corr, None)
            raise TransportError(f"control ask to {node_id} failed to send")
        return future

    def send_reply(self, node_id: str, corr_id: int, value: Any) -> None:
        if node_id == self.node_id:
            self._complete_ask(corr_id, value)
            return
        env = WireEnvelope(kind="reply", src=self.node_id, corr_id=corr_id,
                           message=value)
        self._send(node_id, env)

    def _complete_ask(self, corr_id: int, value: Any) -> None:
        with self._lock:
            future = self._asks.pop(corr_id, None)
        if future is not None:
            future.complete(value)

    # -- control plane -------------------------------------------------------------

    def send_control(self, node_id: str, message: Any) -> bool:
        env = WireEnvelope(kind="control", src=self.node_id,
                           message=message)
        return self._send(node_id, env)

    def broadcast_control(self, message: Any) -> None:
        for peer in self.membership.peer_ids():
            self.send_control(peer, message)

    def tick(self, now: float | None = None) -> list[MembershipEvent]:
        """Drive heartbeats and the failure detector.

        Deterministic runs call this from a virtual-clock loop; TCP runs
        call it from a ticker thread. Returns the membership transitions
        performed (SUSPECT / DOWN declarations).
        """
        if now is None:
            now = self.clock()
        if (now - self._last_heartbeat_sent
                >= self.config.heartbeat_interval_s):
            self._last_heartbeat_sent = now
            beat = Heartbeat(self.node_id)
            for peer in self.membership.peer_ids():
                self.send_control(peer, beat)
        if (self.config.join_retry_interval_s > 0
                and self._seed_contact is not None
                and not self.joined.is_set()
                and now - self._last_join_sent
                >= self.config.join_retry_interval_s):
            self._last_join_sent = now
            seed_id, seed_address = self._seed_contact
            self.send_control(seed_id, Join(self.node_id,
                                            self.transport.address))
        if (self.config.anti_entropy_interval_s > 0
                and self.coordinator.is_active
                and now - self._last_anti_entropy
                >= self.config.anti_entropy_interval_s):
            # Control broadcasts (table updates, member roster) are
            # one-shot; on a lossy network a peer that missed one would
            # stay stale forever. The leader therefore re-asserts its
            # view periodically — receivers install idempotently.
            self._last_anti_entropy = now
            update = ShardTableUpdate(epoch=self.table.epoch,
                                      nodes=self.table.nodes,
                                      overrides=self.table.overrides)
            roster = [m for m in self.membership.members()
                      if m.state in (MemberState.UP, MemberState.SUSPECT)
                      and m.node_id != self.node_id]
            for peer in self.membership.peer_ids():
                self.send_control(peer, update)
                for member in roster:
                    if member.node_id != peer:
                        self.send_control(peer, MemberUp(member.node_id,
                                                         member.address))
        if (self.config.load_report_interval_s > 0
                and now - self._last_load_report
                >= self.config.load_report_interval_s):
            self._last_load_report = now
            report = self._build_load_report()
            leader = self.membership.leader()
            if leader == self.node_id:
                self.rebalancer.observe(report)
            else:
                self.send_control(leader, report)
            self.load_reports_sent += 1
        self.rebalancer.maybe_rebalance(now)
        events = self.membership.check()
        downs = [e for e in events if e.state is MemberState.DOWN]
        if downs:
            # The (possibly new) leader reassigns the dead nodes' shards.
            self.coordinator.membership_changed()
        for event in events:
            for hook in self.on_member_event:
                hook(event)
        return events

    def _build_load_report(self) -> LoadReport:
        """One load window: per-shard delivery deltas from every entity
        router, the mailbox backlog gauge, the platform-provided consumer
        lag, and the telemetry processing-time delta."""
        shard_messages: dict[int, int] = {}
        entities = 0
        for router in self._routers.values():
            entities += len(router)
            for shard, count in router.take_shard_load().items():
                shard_messages[shard] = shard_messages.get(shard, 0) + count
        busy_ms = 0.0
        if self.telemetry is not None:
            total = self.telemetry.processing_ms_total()
            busy_ms = max(0.0, total - self._last_busy_ms)
            self._last_busy_ms = total
        lag = self.consumer_lag_fn() if self.consumer_lag_fn else 0
        return LoadReport(
            node_id=self.node_id,
            mailbox_depth=self.system.total_mailbox_depth(),
            consumer_lag=int(lag),
            busy_ms=busy_ms,
            entities=entities,
            shard_messages=tuple(sorted(shard_messages.items())))

    # -- inbound frames ------------------------------------------------------------

    def _send(self, node_id: str, env: WireEnvelope) -> bool:
        try:
            self.transport.send(node_id, codec.encode(env))
            self.frames_out += 1
            return True
        except TransportError:
            return False

    def _on_frame(self, frame: bytes) -> None:
        if self._closed:
            return
        env = codec.decode(frame)
        self.frames_in += 1
        self._on_envelope(env)

    def _on_envelope(self, env: WireEnvelope) -> None:
        if env.trace_id is None:
            return self._dispatch_envelope(env)
        # Re-establish the trace on the receiving side so local re-tells
        # (router delivery, actor fan-out) stamp the same id.
        set_current_trace(env.trace_id)
        try:
            self._dispatch_envelope(env)
        finally:
            clear_current_trace()

    def _dispatch_envelope(self, env: WireEnvelope) -> None:
        if env.kind == "sharded":
            self._on_sharded(env)
        elif env.kind == "named":
            self.system.actor_ref(env.target).tell(
                env.message, sender=self._materialize_sender(env))
        elif env.kind == "ask":
            self._on_ask(env)
        elif env.kind == "reply":
            self._complete_ask(env.corr_id, env.message)
        elif env.kind == "control":
            self._on_control(env.src, env.message)

    def _on_sharded(self, env: WireEnvelope) -> None:
        shard = shard_for_key(env.entity, env.key, self.config.num_shards)
        owner = self.table.owner_of(shard)
        if owner != self.node_id:
            if env.hops < MAX_HOPS:
                # The sender routed with a stale table — forward to the
                # owner we know (one extra hop per epoch of staleness).
                self.forwarded += 1
                forwarded = replace(env, hops=env.hops + 1)
                if not self._send(owner, forwarded):
                    self._buffer(shard, forwarded)
            else:
                # Hop budget exhausted mid-churn (tables still disagree).
                # Never deliver to a non-owner — that would spawn an
                # entity actor on the wrong node, invisible to any later
                # handoff. Buffer; flush_pending re-routes fresh once a
                # table installs or the owner recovers.
                self._buffer(shard, replace(env, hops=0))
            return
        router = self._routers.get(env.entity)
        if router is None:
            self._dead_letter(env)
            return
        router.deliver_local(env.key, env.message,
                             sender=self._materialize_sender(env))

    def _dead_letter(self, env: WireEnvelope) -> None:
        self.system.dead_letters.append(
            (f"{env.entity}-{env.key}", Envelope(message=env.message)))
        self.system.dead_letter_count += 1

    def _on_ask(self, env: WireEnvelope) -> None:
        if env.target is None and isinstance(env.message, ControlRequest):
            result = self._handle_control_request(env.message)
            self.send_reply(env.src, env.corr_id, result)
            return
        relay = ReplyRelay(self, env.src, env.corr_id)
        self.system._deliver(env.target,
                             Envelope(message=env.message, reply_to=relay))

    def _handle_control_request(self, request: ControlRequest) -> Any:
        handler = self._control.get(request.op)
        if handler is None:
            return {"error": f"unknown control op {request.op!r}"}
        return handler(request.params)

    def _on_control(self, src: str, message: Any) -> None:
        if isinstance(message, Heartbeat):
            if self.membership.heartbeat(message.node_id):
                self.flush_pending()  # a suspect recovered
        elif isinstance(message, Join):
            self._on_join(message)
        elif isinstance(message, Welcome):
            self._on_welcome(message)
        elif isinstance(message, MemberUp):
            self.transport.add_peer(message.node_id, message.address)
            self.membership.add(message.node_id, message.address)
        elif isinstance(message, MemberDown):
            if self.membership.mark_down(message.node_id):
                self.coordinator.membership_changed()
        elif isinstance(message, Leave):
            if self.membership.mark_down(message.node_id):
                self.coordinator.membership_changed()
        elif isinstance(message, ShardTableUpdate):
            self._install_table(message)
        elif isinstance(message, LoadReport):
            self.rebalancer.observe(message)
        elif isinstance(message, Draining):
            if self.membership.mark_draining(message.node_id):
                self.coordinator.membership_changed()
        elif isinstance(message, MigrationPlan):
            self.migration_plans_seen += 1
        elif isinstance(message, ShardStateTransfer):
            self._on_state_transfer(message)

    def _on_join(self, join: Join) -> None:
        self.transport.add_peer(join.node_id, join.address)
        changed = self.membership.add(join.node_id, join.address)
        members = tuple((m.node_id, m.address)
                        for m in self.membership.members()
                        if m.state is not MemberState.DOWN)
        # Tell the newcomer who is here; the table update follows from the
        # coordinator broadcast below (epoch in Welcome covers the race
        # where the newcomer sends sharded messages before the update).
        self.send_control(join.node_id, Welcome(
            members=members, table_epoch=self.table.epoch,
            table_nodes=self.table.nodes,
            table_overrides=self.table.overrides))
        for peer in self.membership.peer_ids():
            if peer != join.node_id:
                self.send_control(peer, MemberUp(join.node_id, join.address))
        if changed:
            self.coordinator.membership_changed()

    def _on_welcome(self, welcome: Welcome) -> None:
        for node_id, address in welcome.members:
            if node_id != self.node_id:
                self.transport.add_peer(node_id, address)
                self.membership.add(node_id, address)
        self._install_table(ShardTableUpdate(
            epoch=welcome.table_epoch, nodes=welcome.table_nodes,
            overrides=welcome.table_overrides))
        self.joined.set()

    # -- shard table install + handoff ----------------------------------------------

    def _install_table(self, update: ShardTableUpdate) -> None:
        with self._lock:
            new = ShardTable(update.epoch, update.nodes,
                             self.config.num_shards,
                             self.config.ring_replicas,
                             overrides=update.overrides)
            # Idempotence guard compares the *routing outcome*, not just
            # (epoch, nodes): two same-epoch tables may differ in their
            # rebalance overrides (an anti-entropy echo racing a plan),
            # and skipping one would leave ownership split.
            if (update.epoch < self.table.epoch
                    or (update.epoch == self.table.epoch
                        and new.nodes == self.table.nodes
                        and new.overrides == self.table.overrides)):
                return
            old = self.table
            self.table = new
        self._handoff(old, self.table)
        self.flush_pending()
        for hook in self.on_table_change:
            hook(old, self.table)

    def _handoff(self, old: ShardTable, new: ShardTable) -> None:
        """Graceful release of local shards this node no longer owns.

        Each departing entity actor has its state exported and is stopped;
        envelopes still queued in its mailbox are re-routed through the
        shard router so they reach the shard's new owner (buffered
        redelivery). Exported state travels to the new owner in
        :class:`ShardStateTransfer` envelopes *before* the re-told
        pending messages, so on an ordered link the new actor restores
        first and then consumes the backlog; adopt-if-newer guards keep a
        reversed or duplicated arrival safe.
        """
        self.shards_moved += len(old.moved_shards(new))
        transfer_state = self.config.handoff_transfer_state
        released: list[tuple[ShardRouter, Any, list]] = []
        transfers: dict[tuple[str, int], list[tuple[str, Any, dict]]] = {}
        for router in self._routers.values():
            for key in router.handoff_keys():
                state = router.export_state(key) if transfer_state else None
                shard = router.shard_of(key)
                pending = router.release(key)
                self.handoff_keys_released += 1
                released.append((router, key, pending))
                if state is None:
                    continue
                owner = new.owner_of(shard)
                if owner != self.node_id:
                    transfers.setdefault((owner, shard), []).append(
                        (router.entity, key, state))
        for owner, shard in sorted(transfers):
            entries = transfers[(owner, shard)]
            sent = self.send_control(owner, ShardStateTransfer(
                shard=shard, epoch=new.epoch, entries=tuple(entries)))
            if sent:
                self.state_transfers_sent += len(entries)
            else:
                # The owner is unreachable: its state is rebuilt by the
                # platform's stream replay instead (the pre-rebalance
                # recovery path, still correct — just slower).
                self.state_transfer_drops += len(entries)
        for router, key, pending in released:
            for envelope in pending:
                router.tell(key, envelope.message,
                            sender=envelope.sender)

    def _on_state_transfer(self, transfer: ShardStateTransfer) -> None:
        """Apply a live-migration state transfer through the sharded
        routers: routing (not direct local delivery) means entries whose
        shard moved again while the transfer was in flight simply forward
        to the current owner, and adopt-if-newer guards in each actor's
        ``restore_state`` make duplicates and stale arrivals no-ops."""
        RestoreState = _restore_state_message()
        for entity, key, state in transfer.entries:
            router = self._routers.get(entity)
            if router is None:
                continue
            router.tell(key, RestoreState(entity=entity, key=key,
                                          state=state))
            self.state_transfers_received += 1

    # -- introspection ---------------------------------------------------------------

    def stats(self) -> dict:
        # Membership facts come from one snapshot() so the view is
        # internally consistent even while reader threads mutate states.
        members = self.membership.snapshot()
        alive = sorted(m.node_id for m in members
                       if m.state in (MemberState.UP, MemberState.SUSPECT))
        counters = {
            "node_id": self.node_id,
            "epoch": self.table.epoch,
            "alive": alive,
            "leader": alive[0] if alive else self.node_id,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "forwarded": self.forwarded,
            "buffered": self.buffered,
            "redelivered": self.redelivered,
            "shards_moved": self.shards_moved,
            "handoff_keys_released": self.handoff_keys_released,
            "load_reports_sent": self.load_reports_sent,
            "migration_plans_seen": self.migration_plans_seen,
            "state_transfers_sent": self.state_transfers_sent,
            "state_transfers_received": self.state_transfers_received,
            "state_transfer_drops": self.state_transfer_drops,
            "draining": self.membership.draining_ids(),
            "rebalancer": self.rebalancer.stats(),
            "pending": self.pending_count,
            "active_actors": self.system.active_count,
            "dead_letters": self.system.dead_letter_count,
            #: Outbound transport counters (bytes/frames/batches; empty
            #: for plain loopback).
            "transport": self.transport.stats(),
            #: Wire-codec counters — process-wide, so loopback clusters
            #: report the same numbers on every node.
            "codec": codec.counters(),
        }
        with self.system._lock:
            counters["messages_processed"] = sum(
                c.messages_processed for c in self.system._cells.values())
        for entity, router in self._routers.items():
            counters[f"{entity}_local"] = len(router)
        return counters


def run_cluster_until_idle(nodes: Iterable["ClusterNode"], hub,
                           max_rounds: int = 100_000) -> int:
    """Pump a loopback cluster to global quiescence (deterministic).

    Alternates transport delivery with per-node dispatcher runs until no
    frame moved and no actor processed a message — the cluster-wide
    analogue of :meth:`ActorSystem.run_until_idle`. Returns the number of
    actor messages processed.
    """
    nodes = list(nodes)
    total = 0
    for _ in range(max_rounds):
        frames = hub.pump()
        processed = 0
        for node in nodes:
            if node.system.mode == "deterministic":
                processed += node.system.run_until_idle()
        total += processed
        if frames == 0 and processed == 0 and hub.pending == 0:
            return total
    raise RuntimeError("cluster did not reach quiescence "
                       f"within {max_rounds} rounds")
