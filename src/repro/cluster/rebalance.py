"""Telemetry-driven live shard rebalancing and autoscaling.

The shard table previously moved only on membership events (join /
failure). This module closes ROADMAP item 1's control loop: every node
streams :class:`~repro.cluster.protocol.LoadReport` windows to the leader
on the heartbeat path, the leader's :class:`Rebalancer` turns the
accumulated per-shard message weights into a **minimal-move** migration
plan (:func:`plan_rebalance`), and executes it live by broadcasting a
shard table whose *overrides* pin the moved shards to their new owners —
the handoff machinery then freezes each migrating key, transfers its
exported actor state to the new owner
(:class:`~repro.cluster.protocol.ShardStateTransfer`), and the seed
replays only the in-flight stream suffix via ``Consumer.seek``
(CheetahGIS-style partition-aware scale-out, PAPERS.md).

Everything that decides is a pure function of the telemetry snapshot:
``plan_rebalance(table, weights, assignable)`` is deterministic, never
targets a draining or dead node, and moves the fewest shards that bring
the spread under ``rebalance_imbalance_ratio`` — properties the
hypothesis suite asserts directly.

The :class:`Autoscaler` rides the same evaluation cadence: sustained
per-node message rate above/below configured watermarks emits an
``add`` / ``drain`` recommendation. Spawning a process is harness
business, so the autoscaler only *recommends*;
:meth:`LoopbackCluster.autoscale_step` (and operators, for TCP
deployments) execute the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.cluster.protocol import LoadReport, MigrationPlan, ShardTableUpdate

if TYPE_CHECKING:
    from repro.cluster.node import ClusterNode
    from repro.cluster.sharding import ShardTable


@dataclass(frozen=True)
class ShardMove:
    """One planned migration: ``shard`` leaves ``src`` for ``dst``."""

    shard: int
    src: str
    dst: str
    #: The shard's message weight in the planning window (why it moved).
    weight: int


def plan_rebalance(table: "ShardTable", shard_weights: Mapping[int, int],
                   assignable: list[str] | tuple[str, ...], *,
                   max_moves: int = 8, imbalance_ratio: float = 1.5,
                   min_messages: int = 32) -> list[ShardMove]:
    """Compute a minimal-move migration plan for one telemetry window.

    Pure and deterministic: the same ``(table, weights, assignable)``
    always yields the same plan. Greedy peak-shaving — repeatedly move
    the heaviest shard that fits inside half the busiest/least-busy gap
    from the busiest to the least-busy node, so every move strictly
    shrinks the spread and no shard moves twice. Stops when the spread is
    within ``imbalance_ratio``, when ``max_moves`` is reached, or when no
    shard small enough to help remains.

    Only nodes in ``assignable`` (alive and not draining) participate;
    shards currently owned by non-assignable nodes are the coordinator's
    problem (a membership-driven table recompute), not the planner's.
    """
    nodes = sorted(set(assignable) & set(table.nodes))
    if len(nodes) < 2:
        return []
    eligible = set(nodes)
    weights = {s: int(w) for s, w in shard_weights.items()
               if 0 <= s < table.num_shards and w > 0}
    if sum(weights.values()) < min_messages:
        return []
    assignment = dict(table.assignment)
    load = {n: 0 for n in nodes}
    for shard, owner in assignment.items():
        if owner in eligible:
            load[owner] += weights.get(shard, 0)

    moves: list[ShardMove] = []
    moved: set[int] = set()
    for _ in range(max_moves):
        donor = min(nodes, key=lambda n: (-load[n], n))
        recipient = min(nodes, key=lambda n: (load[n], n))
        if donor == recipient:
            break
        if load[donor] <= imbalance_ratio * max(load[recipient], 1):
            break
        gap = load[donor] - load[recipient]
        best: tuple[int, int] | None = None   # (-weight, shard)
        for shard, owner in assignment.items():
            if owner != donor or shard in moved:
                continue
            weight = weights.get(shard, 0)
            # Only moves within half the gap shrink the spread; a heavier
            # shard would just swap which node is overloaded (oscillation).
            if weight <= 0 or 2 * weight > gap:
                continue
            key = (-weight, shard)
            if best is None or key < best:
                best = key
        if best is None:
            break
        weight, shard = -best[0], best[1]
        moves.append(ShardMove(shard=shard, src=donor, dst=recipient,
                               weight=weight))
        moved.add(shard)
        assignment[shard] = recipient
        load[donor] -= weight
        load[recipient] += weight
    return moves


@dataclass
class _NodeWindow:
    """Leader-side accumulation of one node's reports since the last
    evaluation (deltas summed, gauges latest-wins)."""

    node_id: str
    reports: int = 0
    messages: int = 0
    busy_ms: float = 0.0
    mailbox_depth: int = 0
    consumer_lag: int = 0
    entities: int = 0
    shard_messages: dict[int, int] = field(default_factory=dict)


class Autoscaler:
    """Sustained-load watermark policy over the rebalancer's windows.

    Emits at most one outstanding recommendation —
    ``{"action": "add"}`` or ``{"action": "drain", "node_id": ...}`` —
    which the harness collects via :meth:`take_decision` and executes
    (spawn / :meth:`ClusterNode.drain`). Watermarks are per-node message
    rates; ``autoscale_sustain`` consecutive evaluations must agree
    before a decision fires (debounce against bursts).
    """

    def __init__(self, node: "ClusterNode") -> None:
        self._node = node
        self._high_streak = 0
        self._low_streak = 0
        self._pending: dict | None = None
        self.decisions_total = 0

    @property
    def pending_decision(self) -> dict | None:
        return self._pending

    def take_decision(self) -> dict | None:
        decision, self._pending = self._pending, None
        return decision

    def evaluate(self, *, total_messages: int, interval_s: float,
                 assignable: list[str]) -> None:
        config = self._node.config
        if config.autoscale_high_msgs_per_s <= 0 or interval_s <= 0 \
                or not assignable:
            return
        rate = total_messages / len(assignable) / interval_s
        if rate >= config.autoscale_high_msgs_per_s:
            self._high_streak += 1
            self._low_streak = 0
        elif (config.autoscale_low_msgs_per_s > 0
              and rate <= config.autoscale_low_msgs_per_s):
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = self._low_streak = 0
        if self._pending is not None:
            return
        n = len(assignable)
        if (self._high_streak >= config.autoscale_sustain
                and n < config.autoscale_max_nodes):
            self._high_streak = 0
            self.decisions_total += 1
            self._pending = {"action": "add",
                             "rate_per_node": rate, "nodes": n}
        elif (self._low_streak >= config.autoscale_sustain
              and n > config.autoscale_min_nodes):
            leader = self._node.membership.leader()
            candidates = [node_id for node_id in assignable
                          if node_id != leader]
            if candidates:
                self._low_streak = 0
                self.decisions_total += 1
                self._pending = {"action": "drain",
                                 "node_id": max(candidates),
                                 "rate_per_node": rate, "nodes": n}


class Rebalancer:
    """The leader's half of the control loop.

    :meth:`observe` accumulates :class:`LoadReport` windows;
    :meth:`maybe_rebalance` runs on the node tick at
    ``rebalance_interval_s``, and — when every assignable node has
    reported since the last evaluation — plans, stamps a new table epoch
    whose overrides encode the moves, and broadcasts
    :class:`MigrationPlan` + :class:`ShardTableUpdate`. Handoff and state
    transfer then happen exactly as for a membership-driven table change.

    Constructed on every node (reports must land somewhere before an
    election settles) but only the active coordinator plans.
    """

    def __init__(self, node: "ClusterNode") -> None:
        self._node = node
        self._window: dict[str, _NodeWindow] = {}
        self._last_eval_at: float | None = None
        self.autoscaler = Autoscaler(node)
        self.reports_received = 0
        self.plans_total = 0
        self.moves_total = 0
        self.last_plan_epoch = 0

    # -- telemetry intake ------------------------------------------------------

    def observe(self, report: LoadReport) -> None:
        window = self._window.get(report.node_id)
        if window is None:
            window = self._window[report.node_id] = _NodeWindow(
                report.node_id)
        window.reports += 1
        window.busy_ms += report.busy_ms
        window.mailbox_depth = report.mailbox_depth
        window.consumer_lag = report.consumer_lag
        window.entities = report.entities
        for shard, count in report.shard_messages:
            window.messages += count
            window.shard_messages[shard] = \
                window.shard_messages.get(shard, 0) + count
        self.reports_received += 1

    def window_snapshot(self) -> dict[str, dict]:
        """Observability view of the current accumulation window."""
        return {n: {"reports": w.reports, "messages": w.messages,
                    "busy_ms": round(w.busy_ms, 3),
                    "mailbox_depth": w.mailbox_depth,
                    "consumer_lag": w.consumer_lag,
                    "entities": w.entities}
                for n, w in sorted(self._window.items())}

    # -- the control loop ------------------------------------------------------

    def maybe_rebalance(self, now: float) -> bool:
        """Evaluate one window; returns True if a plan was executed."""
        config = self._node.config
        if config.rebalance_interval_s <= 0 \
                or config.load_report_interval_s <= 0:
            return False
        if not self._node.coordinator.is_active:
            # Lost leadership: drop the stale window so a later election
            # does not plan from another era's weights.
            self._window.clear()
            self._last_eval_at = None
            return False
        if self._last_eval_at is None:
            self._last_eval_at = now
            return False
        interval = now - self._last_eval_at
        if interval < config.rebalance_interval_s:
            return False
        assignable = self._node.membership.assignable_ids()
        if any(self._window.get(node_id) is None
               or self._window[node_id].reports == 0
               for node_id in assignable):
            # A node has not reported this window yet — keep accumulating
            # rather than planning from a partial picture.
            return False
        self._last_eval_at = now
        shard_weights: dict[int, int] = {}
        total_messages = 0
        for node_id in assignable:
            window = self._window[node_id]
            total_messages += window.messages
            for shard, count in window.shard_messages.items():
                shard_weights[shard] = shard_weights.get(shard, 0) + count
        self._window.clear()
        self.autoscaler.evaluate(total_messages=total_messages,
                                 interval_s=interval, assignable=assignable)
        moves = plan_rebalance(
            self._node.table, shard_weights, assignable,
            max_moves=config.rebalance_max_moves,
            imbalance_ratio=config.rebalance_imbalance_ratio,
            min_messages=config.rebalance_min_messages)
        if not moves:
            return False
        return self._execute(moves)

    def _execute(self, moves: list[ShardMove]) -> bool:
        node = self._node
        table = node.table
        overrides = dict(table.overrides)
        for move in moves:
            overrides[move.shard] = move.dst
        update = ShardTableUpdate(epoch=table.epoch + 1, nodes=table.nodes,
                                  overrides=tuple(sorted(overrides.items())))
        plan = MigrationPlan(
            epoch=update.epoch,
            moves=tuple((m.shard, m.src, m.dst) for m in moves))
        self.plans_total += 1
        self.moves_total += len(moves)
        self.last_plan_epoch = update.epoch
        # Plan first (observability), then install + broadcast the table:
        # per-peer FIFO delivery means every node sees the plan before the
        # epoch that executes it.
        node.broadcast_control(plan)
        node.migration_plans_seen += 1
        node._install_table(update)
        node.broadcast_control(update)
        return True

    def stats(self) -> dict:
        return {
            "reports_received": self.reports_received,
            "plans_total": self.plans_total,
            "moves_total": self.moves_total,
            "last_plan_epoch": self.last_plan_epoch,
            "autoscale_decisions": self.autoscaler.decisions_total,
        }
