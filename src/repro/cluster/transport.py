"""Node-to-node transports.

Two implementations of one small contract (:class:`Transport`):

* :class:`LoopbackTransport` — in-process queues behind a shared
  :class:`LoopbackHub`. Frames are *not* delivered inline on ``send``;
  they sit in the destination's inbox until the hub is pumped, so tests
  control interleaving exactly (deterministic, no threads, no sleeps).
* :class:`TcpTransport` — real sockets with length-prefixed frames
  (4-byte big-endian length + payload) and one background reader thread
  per connection, for true multi-process runs.

Both carry opaque byte frames; all meaning (sender, target, correlation)
lives inside the encoded :class:`~repro.cluster.protocol.WireEnvelope`, so
the two transports are interchangeable above this line.
"""

from __future__ import annotations

import socket
import struct
import threading
from collections import deque
from typing import Any, Callable


class TransportError(RuntimeError):
    """A frame could not be handed to the destination node."""


class Transport:
    """Minimal contract shared by loopback and TCP transports."""

    #: Externally reachable address peers use to send to this transport
    #: (node id for loopback, ``(host, port)`` for TCP).
    address: Any = None

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        """Begin accepting inbound frames, delivering each to ``on_frame``."""
        raise NotImplementedError

    def add_peer(self, node_id: str, address: Any) -> None:
        """Register where ``node_id`` can be reached."""
        raise NotImplementedError

    def send(self, node_id: str, frame: bytes) -> None:
        """Queue one frame for ``node_id``; raises :class:`TransportError`
        if the destination is known to be unreachable."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop accepting and release resources."""


# -- loopback --------------------------------------------------------------------


class LoopbackHub:
    """The shared medium connecting a set of in-process transports.

    ``pump()`` delivers queued frames in a deterministic order (nodes
    sorted by id, FIFO within each inbox) — the cluster-level analogue of
    :meth:`ActorSystem.run_until_idle`.
    """

    def __init__(self) -> None:
        self._transports: dict[str, "LoopbackTransport"] = {}
        self.frames_delivered = 0
        self.frames_dropped = 0

    def transport(self, node_id: str) -> "LoopbackTransport":
        """Create (or return) the transport endpoint for ``node_id``."""
        t = self._transports.get(node_id)
        if t is None:
            t = LoopbackTransport(self, node_id)
            self._transports[node_id] = t
        return t

    def disconnect(self, node_id: str) -> None:
        """Abruptly remove a node (simulates a crash/partition): its queued
        inbox frames are discarded and future sends to it fail."""
        t = self._transports.pop(node_id, None)
        if t is not None:
            self.frames_dropped += len(t._inbox)
            t._inbox.clear()
            t._closed = True

    def _enqueue(self, dest: str, frame: bytes) -> None:
        t = self._transports.get(dest)
        if t is None or t._on_frame is None:
            raise TransportError(f"loopback destination {dest!r} unreachable")
        t._inbox.append(frame)

    def pump(self, max_frames: int = 100_000) -> int:
        """Deliver queued frames until every inbox is empty.

        Frames enqueued *during* delivery are delivered too (same pump),
        bounded by ``max_frames`` for livelock protection.
        """
        delivered = 0
        progress = True
        while progress:
            progress = False
            for node_id in sorted(self._transports):
                t = self._transports.get(node_id)
                if t is None:
                    continue
                while t._inbox:
                    frame = t._inbox.popleft()
                    delivered += 1
                    self.frames_delivered += 1
                    if delivered > max_frames:
                        raise RuntimeError(
                            "loopback pump exceeded max_frames (livelock?)")
                    t._on_frame(frame)
                    progress = True
        return delivered

    @property
    def pending(self) -> int:
        return sum(len(t._inbox) for t in self._transports.values())


class LoopbackTransport(Transport):
    """One node's endpoint on a :class:`LoopbackHub`."""

    def __init__(self, hub: LoopbackHub, node_id: str) -> None:
        self._hub = hub
        self.node_id = node_id
        self.address = node_id
        self._inbox: deque[bytes] = deque()
        self._on_frame: Callable[[bytes], None] | None = None
        self._closed = False

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame

    def add_peer(self, node_id: str, address: Any) -> None:
        # Loopback peers are addressed by node id on the shared hub —
        # nothing to resolve.
        pass

    def send(self, node_id: str, frame: bytes) -> None:
        if self._closed:
            raise TransportError(f"transport of {self.node_id!r} is closed")
        self._hub._enqueue(node_id, frame)

    def close(self) -> None:
        self._hub.disconnect(self.node_id)


# -- TCP -------------------------------------------------------------------------

_LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024


def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf.extend(chunk)
    return bytes(buf)


class TcpTransport(Transport):
    """Length-prefixed frames over TCP with background reader threads.

    One listening socket per node; outbound connections are opened lazily
    per peer and cached. Frames from any connection are funnelled to the
    single ``on_frame`` callback — ordering is preserved per sender (one
    TCP stream each), not across senders, matching actor semantics.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(16)
        self.address = self._server.getsockname()
        self._peers: dict[str, tuple[str, int]] = {}
        self._conns: dict[str, socket.socket] = {}
        self._send_locks: dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._on_frame: Callable[[bytes], None] | None = None
        self._threads: list[threading.Thread] = []
        self._closed = False
        self.send_errors = 0

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame
        t = threading.Thread(target=self._accept_loop,
                             name=f"tcp-accept-{self.address[1]}", daemon=True)
        t.start()
        self._threads.append(t)

    def add_peer(self, node_id: str, address: Any) -> None:
        with self._lock:
            self._peers[node_id] = (str(address[0]), int(address[1]))
            self._send_locks.setdefault(node_id, threading.Lock())

    def send(self, node_id: str, frame: bytes) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        with self._lock:
            addr = self._peers.get(node_id)
            lock = self._send_locks.setdefault(node_id, threading.Lock())
        if addr is None:
            raise TransportError(f"no known address for node {node_id!r}")
        payload = _LEN.pack(len(frame)) + frame
        with lock:
            sock = self._conns.get(node_id)
            for attempt in (0, 1):
                if sock is None:
                    try:
                        sock = socket.create_connection(addr, timeout=5.0)
                        sock.setsockopt(socket.IPPROTO_TCP,
                                        socket.TCP_NODELAY, 1)
                        self._conns[node_id] = sock
                    except OSError as exc:
                        self.send_errors += 1
                        raise TransportError(
                            f"cannot connect to {node_id} at {addr}: {exc}"
                        ) from exc
                try:
                    sock.sendall(payload)
                    return
                except OSError as exc:
                    # Stale connection — drop it and retry once fresh.
                    try:
                        sock.close()
                    except OSError:
                        pass
                    self._conns.pop(node_id, None)
                    sock = None
                    if attempt == 1:
                        self.send_errors += 1
                        raise TransportError(
                            f"send to {node_id} failed: {exc}") from exc

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            t = threading.Thread(target=self._reader_loop, args=(conn,),
                                 name=f"tcp-reader-{self.address[1]}",
                                 daemon=True)
            t.start()
            self._threads.append(t)

    def _reader_loop(self, conn: socket.socket) -> None:
        try:
            while not self._closed:
                header = _read_exact(conn, _LEN.size)
                if header is None:
                    return
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME:
                    return  # protocol violation; drop the connection
                frame = _read_exact(conn, length)
                if frame is None:
                    return
                if self._on_frame is not None:
                    self._on_frame(frame)
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
