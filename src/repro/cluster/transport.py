"""Node-to-node transports.

Three implementations of one small contract (:class:`Transport`):

* :class:`LoopbackTransport` — in-process queues behind a shared
  :class:`LoopbackHub`. Frames are *not* delivered inline on ``send``;
  they sit in the destination's inbox until the hub is pumped, so tests
  control interleaving exactly (deterministic, no threads, no sleeps).
* :class:`TcpTransport` — real sockets with length-prefixed frames
  (4-byte big-endian length + payload). Inbound: one background reader
  thread per connection. Outbound: one writer thread per peer behind a
  bounded queue, so actor dispatch never blocks on ``sendall`` or
  connection setup; a full queue applies backpressure (block with
  timeout, then :class:`TransportError`).
* :class:`BatchingTransport` — a decorator over either of the above that
  coalesces outbound frames per peer into one multi-envelope container
  frame (``linger_ms`` / ``max_batch_bytes`` / ``max_batch_msgs``), the
  micro-batching that closes the cross-node throughput gap. Receivers
  unwrap container frames transparently.

All carry opaque byte frames; meaning (sender, target, correlation) lives
inside the encoded :class:`~repro.cluster.protocol.WireEnvelope`, so the
transports are interchangeable above this line.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.cluster import codec


class TransportError(RuntimeError):
    """A frame could not be handed to the destination node."""


class Transport:
    """Minimal contract shared by the loopback, TCP and batching
    transports."""

    #: Externally reachable address peers use to send to this transport
    #: (node id for loopback, ``(host, port)`` for TCP).
    address: Any = None

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        """Begin accepting inbound frames, delivering each to ``on_frame``."""
        raise NotImplementedError

    def add_peer(self, node_id: str, address: Any) -> None:
        """Register where ``node_id`` can be reached."""
        raise NotImplementedError

    def send(self, node_id: str, frame: bytes) -> None:
        """Queue one frame for ``node_id``; raises :class:`TransportError`
        if the destination is known to be unreachable."""
        raise NotImplementedError

    def flush(self) -> int:
        """Push any locally buffered outbound frames to the wire; returns
        how many frames moved (0 for unbuffered transports)."""
        return 0

    def stats(self) -> dict:
        """Monotonic outbound counters for node-level observability."""
        return {}

    def bind_telemetry(self, registry) -> None:
        """Attach this transport's metrics to a
        :class:`~repro.telemetry.MetricsRegistry`. The default is a no-op;
        implementations register snapshot-time callback gauges over their
        plain counters (zero hot-path cost) plus the histograms that need
        per-event observations (batch sizes)."""

    def close(self) -> None:
        """Stop accepting and release resources."""


# -- loopback --------------------------------------------------------------------


class LoopbackHub:
    """The shared medium connecting a set of in-process transports.

    ``pump()`` delivers queued frames in a deterministic order (nodes
    sorted by id, FIFO within each inbox) — the cluster-level analogue of
    :meth:`ActorSystem.run_until_idle`. Batching transports layered over
    loopback endpoints register flush hooks here, and ``pump`` flushes them
    synchronously before each delivery round, so batched loopback runs stay
    exactly as deterministic as unbatched ones.
    """

    def __init__(self) -> None:
        self._transports: dict[str, "LoopbackTransport"] = {}
        self._flushers: list[Callable[[], int]] = []
        self.frames_delivered = 0
        self.frames_dropped = 0

    def transport(self, node_id: str) -> "LoopbackTransport":
        """Create (or return) the transport endpoint for ``node_id``."""
        t = self._transports.get(node_id)
        if t is None:
            t = LoopbackTransport(self, node_id)
            self._transports[node_id] = t
        return t

    def register_flusher(self, flush: Callable[[], int]) -> None:
        """Register an outbound-buffer flush hook run before every pump
        round (used by :class:`BatchingTransport` over loopback)."""
        self._flushers.append(flush)

    def disconnect(self, node_id: str) -> None:
        """Abruptly remove a node (simulates a crash/partition): its queued
        inbox frames are discarded and future sends to it fail."""
        t = self._transports.pop(node_id, None)
        if t is not None:
            self.frames_dropped += len(t._inbox)
            t._inbox.clear()
            t._closed = True

    def _enqueue(self, dest: str, frame: bytes,
                 src: str | None = None) -> None:
        """Accept one frame from ``src`` for ``dest``'s inbox.

        This is the fault-injection hook point: ``repro.sim.SimHub``
        overrides it to drop, duplicate, delay or partition frames per
        (src, dest) link before they reach an inbox.
        """
        t = self._transports.get(dest)
        if t is None or t._on_frame is None:
            raise TransportError(f"loopback destination {dest!r} unreachable")
        t._inbox.append(frame)

    def _flush_all(self) -> int:
        flushed = 0
        for flush in self._flushers:
            flushed += flush()
        return flushed

    def pump(self, max_frames: int = 100_000) -> int:
        """Deliver queued frames until every inbox is empty.

        Frames enqueued *during* delivery are delivered too (same pump),
        bounded by ``max_frames`` for livelock protection.
        """
        delivered = 0
        progress = True
        while progress:
            progress = self._flush_all() > 0
            for node_id in sorted(self._transports):
                t = self._transports.get(node_id)
                if t is None:
                    continue
                while t._inbox:
                    frame = t._inbox.popleft()
                    delivered += 1
                    self.frames_delivered += 1
                    if delivered > max_frames:
                        raise RuntimeError(
                            "loopback pump exceeded max_frames (livelock?)")
                    t._on_frame(frame)
                    progress = True
        return delivered

    @property
    def pending(self) -> int:
        return sum(len(t._inbox) for t in self._transports.values())


class LoopbackTransport(Transport):
    """One node's endpoint on a :class:`LoopbackHub`."""

    def __init__(self, hub: LoopbackHub, node_id: str) -> None:
        self._hub = hub
        self.node_id = node_id
        self.address = node_id
        self._inbox: deque[bytes] = deque()
        self._on_frame: Callable[[bytes], None] | None = None
        self._closed = False

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame

    def add_peer(self, node_id: str, address: Any) -> None:
        # Loopback peers are addressed by node id on the shared hub —
        # nothing to resolve.
        pass

    def send(self, node_id: str, frame: bytes) -> None:
        if self._closed:
            raise TransportError(f"transport of {self.node_id!r} is closed")
        self._hub._enqueue(node_id, frame, src=self.node_id)

    def close(self) -> None:
        self._hub.disconnect(self.node_id)


# -- TCP -------------------------------------------------------------------------

_LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024

#: Sentinel telling a peer writer thread to exit.
_STOP = object()


def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf.extend(chunk)
    return bytes(buf)


class _PeerWriter:
    """Outbound state for one peer: bounded queue + dedicated writer
    thread + (lazily opened) connection. ``failed`` latches delivery
    errors so the next ``send`` can surface one :class:`TransportError`;
    a successful write clears the latch."""

    __slots__ = ("node_id", "queue", "thread", "conn", "failed",
                 "last_error", "lock")

    def __init__(self, node_id: str, maxsize: int) -> None:
        self.node_id = node_id
        self.queue: queue.Queue = queue.Queue(maxsize)
        self.thread: threading.Thread | None = None
        self.conn: socket.socket | None = None
        self.failed = threading.Event()
        self.last_error: str | None = None
        self.lock = threading.Lock()


class TcpTransport(Transport):
    """Length-prefixed frames over TCP with background reader and writer
    threads.

    One listening socket per node. Each peer gets a dedicated writer
    thread draining a bounded queue, so ``send`` is a non-blocking enqueue
    (actor dispatch never waits on ``connect`` or ``sendall``); the writer
    coalesces queued frames into a single ``sendall`` when it finds more
    than one waiting. When a queue fills, ``send`` blocks up to
    ``block_timeout_s`` and then raises — the backpressure boundary.
    Frames from any connection are funnelled to the single ``on_frame``
    callback — ordering is preserved per sender (one TCP stream each), not
    across senders, matching actor semantics.

    Delivery failures are detected in the writer thread; they latch a
    per-peer error that the *next* ``send`` to that peer raises (the
    cluster's heartbeat failure detector is the authoritative signal).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 queue_frames: int = 10_000,
                 block_timeout_s: float = 2.0,
                 connect_timeout_s: float = 5.0,
                 coalesce_bytes: int = 256 * 1024,
                 sync_sends: bool = False) -> None:
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(16)
        self.address = self._server.getsockname()
        self._queue_frames = queue_frames
        #: Benchmark-only compatibility mode: write each frame inline under
        #: the per-peer lock (the pre-writer-thread behaviour), used as the
        #: "before" leg of the batched-vs-unbatched comparison.
        self._sync_sends = sync_sends
        self._block_timeout_s = block_timeout_s
        self._connect_timeout_s = connect_timeout_s
        self._coalesce_bytes = coalesce_bytes
        self._peers: dict[str, tuple[str, int]] = {}
        self._writers: dict[str, _PeerWriter] = {}
        self._lock = threading.Lock()
        self._on_frame: Callable[[bytes], None] | None = None
        self._threads: list[threading.Thread] = []
        self._closed = False
        self.send_errors = 0
        self.enqueue_timeouts = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.writes = 0

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame
        t = threading.Thread(target=self._accept_loop,
                             name=f"tcp-accept-{self.address[1]}", daemon=True)
        t.start()
        self._threads.append(t)

    def add_peer(self, node_id: str, address: Any) -> None:
        with self._lock:
            self._peers[node_id] = (str(address[0]), int(address[1]))

    # -- outbound ------------------------------------------------------------------

    def _writer_for(self, node_id: str) -> _PeerWriter:
        with self._lock:
            if node_id not in self._peers:
                raise TransportError(f"no known address for node {node_id!r}")
            writer = self._writers.get(node_id)
            if writer is None:
                writer = _PeerWriter(node_id, self._queue_frames)
                self._writers[node_id] = writer
                if not self._sync_sends:
                    writer.thread = threading.Thread(
                        target=self._writer_loop, args=(writer,),
                        name=f"tcp-writer-{self.address[1]}-{node_id}",
                        daemon=True)
                    writer.thread.start()
            return writer

    def send(self, node_id: str, frame: bytes) -> None:
        if self._closed:
            raise TransportError("transport is closed")
        writer = self._writer_for(node_id)
        if self._sync_sends:
            with writer.lock:
                self._write_frames(writer, [frame])
            if writer.failed.is_set():
                writer.failed.clear()
                raise TransportError(
                    f"send to {node_id} failed: {writer.last_error}")
            return
        if writer.failed.is_set():
            writer.failed.clear()
            raise TransportError(
                f"send to {node_id} failed: {writer.last_error}")
        try:
            writer.queue.put(frame, timeout=self._block_timeout_s)
        except queue.Full:
            self.enqueue_timeouts += 1
            raise TransportError(
                f"outbound queue to {node_id} full "
                f"({self._queue_frames} frames) for "
                f"{self._block_timeout_s}s") from None

    def _writer_loop(self, writer: _PeerWriter) -> None:
        while True:
            item = writer.queue.get()
            if item is _STOP:
                return
            frames = [item]
            size = len(item)
            stop = False
            # Opportunistic coalescing: everything already queued goes out
            # in one sendall (bounded so one write stays cheap to retry).
            while size < self._coalesce_bytes:
                try:
                    nxt = writer.queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                frames.append(nxt)
                size += len(nxt)
            self._write_frames(writer, frames)
            if stop:
                return

    def _write_frames(self, writer: _PeerWriter, frames: list[bytes]) -> None:
        payload = b"".join(_LEN.pack(len(f)) + f for f in frames)
        with self._lock:
            addr = self._peers.get(writer.node_id)
        if addr is None:
            self._record_failure(writer, len(frames), "peer removed")
            return
        for attempt in (0, 1):
            sock = writer.conn
            if sock is None:
                try:
                    sock = socket.create_connection(
                        addr, timeout=self._connect_timeout_s)
                    sock.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                    writer.conn = sock
                except OSError as exc:
                    self._record_failure(writer, len(frames),
                                         f"cannot connect to {addr}: {exc}")
                    return
            try:
                sock.sendall(payload)
                writer.failed.clear()
                self.frames_sent += len(frames)
                self.bytes_sent += len(payload)
                self.writes += 1
                return
            except OSError as exc:
                # Stale connection — drop it and retry once fresh.
                try:
                    sock.close()
                except OSError:
                    pass
                writer.conn = None
                if attempt == 1:
                    self._record_failure(writer, len(frames), str(exc))

    def _record_failure(self, writer: _PeerWriter, n_frames: int,
                        error: str) -> None:
        writer.last_error = error
        writer.failed.set()
        self.send_errors += n_frames

    # -- inbound -------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            t = threading.Thread(target=self._reader_loop, args=(conn,),
                                 name=f"tcp-reader-{self.address[1]}",
                                 daemon=True)
            t.start()
            # Reap finished reader threads so churny peers don't grow the
            # list without bound.
            self._threads = [x for x in self._threads if x.is_alive()]
            self._threads.append(t)

    def _reader_loop(self, conn: socket.socket) -> None:
        try:
            while not self._closed:
                header = _read_exact(conn, _LEN.size)
                if header is None:
                    return
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME:
                    return  # protocol violation; drop the connection
                frame = _read_exact(conn, length)
                if frame is None:
                    return
                if self._on_frame is not None:
                    self._on_frame(frame)
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- introspection / lifecycle --------------------------------------------------

    @property
    def queued_frames(self) -> int:
        with self._lock:
            writers = list(self._writers.values())
        return sum(w.queue.qsize() for w in writers)

    def stats(self) -> dict:
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "writes": self.writes,
            "send_errors": self.send_errors,
            "enqueue_timeouts": self.enqueue_timeouts,
            "queued_frames": self.queued_frames,
        }

    def bind_telemetry(self, registry) -> None:
        # Callback gauges evaluated at snapshot time: the send path and
        # the writer threads pay nothing.
        registry.gauge("transport_frames_sent", fn=lambda: self.frames_sent)
        registry.gauge("transport_bytes_sent", fn=lambda: self.bytes_sent)
        registry.gauge("transport_writes", fn=lambda: self.writes)
        registry.gauge("transport_send_errors",
                       fn=lambda: self.send_errors)
        #: Backpressure events: sends that timed out on a full queue.
        registry.gauge("transport_backpressure_events",
                       fn=lambda: self.enqueue_timeouts)
        registry.gauge("transport_queued_frames",
                       fn=lambda: self.queued_frames)

    def close(self) -> None:
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            writers = list(self._writers.values())
            self._writers.clear()
        for writer in writers:
            while True:
                try:
                    writer.queue.put_nowait(_STOP)
                    break
                except queue.Full:
                    try:
                        writer.queue.get_nowait()
                    except queue.Empty:
                        pass
        for writer in writers:
            if writer.thread is not None:
                writer.thread.join(timeout=1.0)
            if writer.conn is not None:
                try:
                    writer.conn.close()
                except OSError:
                    pass


# -- batching decorator ----------------------------------------------------------


class BatchingTransport(Transport):
    """Per-peer outbound micro-batching over any inner transport.

    ``send`` appends to a per-peer buffer; a buffer is flushed as **one**
    container frame (:func:`repro.cluster.codec.encode_batch`) when it
    reaches ``max_batch_msgs`` or ``max_batch_bytes``, when ``linger_ms``
    elapses (background flusher thread, TCP mode), or on an explicit
    :meth:`flush`. Over a :class:`LoopbackTransport` no thread is started:
    the hub pumps this transport's flush hook synchronously before every
    delivery round, keeping deterministic tests exact. Single-frame
    buffers are sent unwrapped, so a batched sender interoperates with any
    receiver and pays no container overhead at low rates.

    Delivery failures during a flush are absorbed (frames counted in
    ``frames_dropped``): once batching is on, loss of in-flight frames to
    a dead peer falls inside the cluster's documented redelivery window —
    the heartbeat failure detector, not the send path, is the
    authoritative failure signal.
    """

    def __init__(self, inner: Transport, linger_ms: float = 2.0,
                 max_batch_bytes: int = 64 * 1024,
                 max_batch_msgs: int = 128,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_batch_msgs < 1:
            raise ValueError("max_batch_msgs must be >= 1")
        self.inner = inner
        self.linger_ms = linger_ms
        self.max_batch_bytes = max_batch_bytes
        self.max_batch_msgs = max_batch_msgs
        self._clock = clock
        self._lock = threading.Lock()
        self._buffers: dict[str, list[bytes]] = {}
        self._sizes: dict[str, int] = {}
        self._oldest: dict[str, float] = {}
        self._flush_locks: dict[str, threading.Lock] = {}
        self._stop = threading.Event()
        self._flusher: threading.Thread | None = None
        self._on_frame: Callable[[bytes], None] | None = None
        self.batches_sent = 0
        self.frames_batched = 0
        self.batched_bytes = 0
        self.frames_dropped = 0
        #: Why batches left the buffer: ``capacity`` (size/count bound
        #: hit on send), ``linger`` (background timer) or ``explicit``
        #: (direct ``flush()`` calls — the loopback hub's pump path).
        self.flush_reasons = {"capacity": 0, "linger": 0, "explicit": 0}
        self._tel_batch_frames = None
        self._tel_batch_bytes = None
        self._tel_flush_counters: dict[str, Any] | None = None

    @property
    def address(self) -> Any:  # type: ignore[override]
        return self.inner.address

    # -- lifecycle -----------------------------------------------------------------

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame
        self.inner.start(self._unwrap)
        hub = getattr(self.inner, "_hub", None)
        if hub is not None:
            # Deterministic loopback: the hub flushes us before each pump
            # round instead of a wall-clock thread.
            hub.register_flusher(self.flush)
        elif self.linger_ms > 0:
            self._flusher = threading.Thread(
                target=self._flush_loop, name="batch-flusher", daemon=True)
            self._flusher.start()

    def close(self) -> None:
        self._stop.set()
        try:
            self.flush()
        except Exception:
            pass
        if self._flusher is not None:
            self._flusher.join(timeout=1.0)
        self.inner.close()

    # -- outbound ------------------------------------------------------------------

    def add_peer(self, node_id: str, address: Any) -> None:
        self.inner.add_peer(node_id, address)

    def send(self, node_id: str, frame: bytes) -> None:
        with self._lock:
            buf = self._buffers.get(node_id)
            if buf is None:
                buf = self._buffers[node_id] = []
                self._sizes[node_id] = 0
                self._flush_locks.setdefault(node_id, threading.Lock())
            if not buf:
                self._oldest[node_id] = self._clock()
            buf.append(frame)
            self._sizes[node_id] += len(frame)
            full = (len(buf) >= self.max_batch_msgs
                    or self._sizes[node_id] >= self.max_batch_bytes)
        if full:
            self._flush_peer(node_id, reason="capacity")

    def flush(self, node_id: str | None = None) -> int:
        """Flush one peer's buffer (or all of them); returns the number of
        frames pushed to the inner transport."""
        if node_id is not None:
            return self._flush_peer(node_id, reason="explicit")
        with self._lock:
            peers = sorted(k for k, v in self._buffers.items() if v)
        return sum(self._flush_peer(peer, reason="explicit")
                   for peer in peers)

    def _flush_peer(self, node_id: str, reason: str = "explicit") -> int:
        # The per-peer flush lock is held across take-buffer + inner.send
        # so two concurrent flushes cannot reorder a peer's batches.
        flush_lock = self._flush_locks.get(node_id)
        if flush_lock is None:
            return 0
        with flush_lock:
            with self._lock:
                frames = self._buffers.get(node_id) or []
                if not frames:
                    return 0
                self._buffers[node_id] = []
                self._sizes[node_id] = 0
            blob = frames[0] if len(frames) == 1 \
                else codec.encode_batch(frames)
            try:
                self.inner.send(node_id, blob)
            except TransportError:
                self.frames_dropped += len(frames)
                return 0
            self.batches_sent += 1
            self.frames_batched += len(frames)
            self.batched_bytes += len(blob)
            self.flush_reasons[reason] += 1
            if self._tel_batch_frames is not None:
                self._tel_batch_frames.observe(len(frames))
                self._tel_batch_bytes.observe(len(blob))
                self._tel_flush_counters[reason].inc()
            return len(frames)

    def _flush_loop(self) -> None:
        linger_s = self.linger_ms / 1e3
        while not self._stop.wait(linger_s / 2):
            now = self._clock()
            with self._lock:
                due = sorted(
                    peer for peer, buf in self._buffers.items()
                    if buf and now - self._oldest.get(peer, now) >= linger_s)
            for peer in due:
                self._flush_peer(peer, reason="linger")

    # -- inbound -------------------------------------------------------------------

    def _unwrap(self, frame: bytes) -> None:
        if codec.is_batch(frame):
            for sub in codec.decode_batch(frame):
                self._on_frame(sub)
        else:
            self._on_frame(frame)

    # -- introspection -------------------------------------------------------------

    @property
    def buffered_frames(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._buffers.values())

    def stats(self) -> dict:
        merged = dict(self.inner.stats())
        merged.update({
            "batches_sent": self.batches_sent,
            "frames_batched": self.frames_batched,
            "batched_bytes": self.batched_bytes,
            "frames_dropped": self.frames_dropped,
            "buffered_frames": self.buffered_frames,
            "flush_reasons": dict(self.flush_reasons),
        })
        return merged

    def bind_telemetry(self, registry) -> None:
        self._tel_batch_frames = registry.histogram("transport_batch_frames")
        self._tel_batch_bytes = registry.histogram("transport_batch_bytes")
        self._tel_flush_counters = {
            reason: registry.counter("transport_flush_total",
                                     {"reason": reason})
            for reason in self.flush_reasons}
        registry.gauge("transport_batches_sent",
                       fn=lambda: self.batches_sent)
        registry.gauge("transport_frames_batched",
                       fn=lambda: self.frames_batched)
        registry.gauge("transport_batched_bytes",
                       fn=lambda: self.batched_bytes)
        registry.gauge("transport_frames_dropped",
                       fn=lambda: self.frames_dropped)
        registry.gauge("transport_buffer_occupancy_frames",
                       fn=lambda: self.buffered_frames)
        self.inner.bind_telemetry(registry)
