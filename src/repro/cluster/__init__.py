"""Multi-node sharded actor runtime (the platform's Akka *cluster*).

The paper's deployment runs vessel/cell actors across nodes with Akka
cluster sharding: location-transparent refs, a shard coordinator, and
rebalancing on membership change (Section 3; the 170K-vessel run of
Section 6.3 rests on it). This package brings the same layer to the
reproduction:

* :mod:`~repro.cluster.transport` — byte-frame transports: a deterministic
  in-process loopback (tests pump it explicitly) and length-prefixed TCP
  with background readers (real multi-process runs),
* :mod:`~repro.cluster.membership` — seed-node join, heartbeats, and the
  suspect -> down failure detector on an injectable clock,
* :mod:`~repro.cluster.sharding` — consistent-hash shards over a virtual
  node ring, the epoch-stamped shard table, and the location-transparent
  :class:`~repro.cluster.sharding.ShardRouter`,
* :mod:`~repro.cluster.node` — :class:`~repro.cluster.node.ClusterNode`
  tying one local :class:`~repro.actors.system.ActorSystem` to the wire,
  plus the leader-side :class:`~repro.cluster.node.ShardCoordinator`
  handling graceful handoff and buffered redelivery,
* :mod:`~repro.cluster.rebalance` — the telemetry-driven control loop:
  per-node load reports feed the leader's
  :class:`~repro.cluster.rebalance.Rebalancer`, whose minimal-move plans
  migrate hot shards (with live state transfer) and whose
  :class:`~repro.cluster.rebalance.Autoscaler` recommends adding or
  draining nodes under sustained load,
* :mod:`~repro.cluster.remote` — :class:`RemoteActorRef` so ``tell`` /
  ``ask`` work identically for local and remote actors,
* :mod:`~repro.cluster.codec` — restricted-pickle wire serialization of
  the existing ``repro.platform.messages`` vocabulary.

The platform-level assembly lives in
:class:`repro.platform.DistributedPlatform`.
"""

from repro.cluster.clock import VirtualClock
from repro.cluster.membership import (
    ClusterConfig,
    Member,
    MemberState,
    Membership,
    MembershipEvent,
)
from repro.cluster.node import (
    ClusterNode,
    ShardCoordinator,
    run_cluster_until_idle,
)
from repro.cluster.protocol import WireEnvelope
from repro.cluster.rebalance import (
    Autoscaler,
    Rebalancer,
    ShardMove,
    plan_rebalance,
)
from repro.cluster.remote import RemoteActorRef
from repro.cluster.sharding import (
    HashRing,
    ShardRouter,
    ShardTable,
    shard_for_key,
    stable_hash,
)
from repro.cluster.transport import (
    BatchingTransport,
    LoopbackHub,
    LoopbackTransport,
    TcpTransport,
    Transport,
    TransportError,
)

__all__ = [
    "Autoscaler",
    "BatchingTransport",
    "ClusterConfig",
    "ClusterNode",
    "HashRing",
    "LoopbackHub",
    "LoopbackTransport",
    "Member",
    "MemberState",
    "Membership",
    "MembershipEvent",
    "Rebalancer",
    "RemoteActorRef",
    "ShardCoordinator",
    "ShardMove",
    "ShardRouter",
    "ShardTable",
    "TcpTransport",
    "Transport",
    "TransportError",
    "VirtualClock",
    "WireEnvelope",
    "plan_rebalance",
    "run_cluster_until_idle",
    "shard_for_key",
    "stable_hash",
]
