"""Location-transparent references to actors on other nodes.

A :class:`RemoteActorRef` quacks exactly like
:class:`~repro.actors.actor.ActorRef` — ``tell`` and ``ask`` with the same
signatures — so platform actors reply to senders without knowing whether
the counterparty lives in-process or across the wire. Inbound ask frames
get a :class:`ReplyRelay` as their ``reply_to``: it satisfies the
``Future.complete`` surface, but completing it sends the value back over
the transport to resolve the asker's real future.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.actors.system import Future
    from repro.cluster.node import ClusterNode


class RemoteActorRef:
    """A handle to a named actor on another cluster node."""

    __slots__ = ("name", "node_id", "_node")

    def __init__(self, name: str, node_id: str, node: "ClusterNode") -> None:
        self.name = name
        self.node_id = node_id
        self._node = node

    def tell(self, message: Any, sender=None) -> None:
        """Fire-and-forget send across the wire."""
        self._node.send_named(self.node_id, self.name, message,
                              sender=sender)

    def ask(self, message: Any) -> "Future":
        """Request-reply across the wire; the returned future completes
        when the reply frame arrives."""
        return self._node.ask_named(self.node_id, self.name, message)

    def __repr__(self) -> str:
        return f"RemoteActorRef({self.name!r}@{self.node_id})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RemoteActorRef)
                and other.name == self.name
                and other.node_id == self.node_id)

    def __hash__(self) -> int:
        return hash((self.node_id, self.name))


class ReplyRelay:
    """Completes a remote ask by sending the value back to the asker."""

    __slots__ = ("_node", "_dest", "_corr_id", "done")

    def __init__(self, node: "ClusterNode", dest: str, corr_id: int) -> None:
        self._node = node
        self._dest = dest
        self._corr_id = corr_id
        self.done = False

    def complete(self, value: Any) -> None:
        if self.done:
            return
        self.done = True
        self._node.send_reply(self._dest, self._corr_id, value)
