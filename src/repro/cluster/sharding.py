"""Consistent-hash sharding of entity actors across nodes.

Entity keys (MMSIs, H3 cell ids) hash into a fixed number of *shards*;
shards map to nodes through a consistent-hash ring with virtual nodes. The
assignment is a pure function of the sorted alive-node list, so every node
derives the identical table from the coordinator's ``ShardTableUpdate``
(which only carries ``(epoch, nodes)``) — no per-shard state needs to be
gossiped, and a node joining or leaving moves only ~1/N of the shards.

All hashing uses :func:`stable_hash` (BLAKE2b over a canonical byte form),
never the builtin ``hash`` — Python randomises string hashing per process,
which would silently split the ring between nodes of a TCP cluster.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import TYPE_CHECKING, Any

from repro.actors.router import KeyRouter

if TYPE_CHECKING:
    from repro.cluster.node import ClusterNode


def stable_hash(value: Any) -> int:
    """A process-independent 64-bit hash of ints, strings and (nested)
    tuples."""
    data = _canonical_bytes(value)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(),
                          "big")


def _canonical_bytes(value: Any) -> bytes:
    if isinstance(value, tuple):
        return b"t:" + b"\x1f".join(_canonical_bytes(v) for v in value)
    if isinstance(value, bool):
        return b"b:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i:" + str(value).encode()
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"y:" + value
    raise TypeError(f"unhashable shard key type: {type(value).__name__}")


def shard_for_key(entity: str, key: Any, num_shards: int) -> int:
    """The shard an entity key lives in (stable across processes)."""
    return stable_hash((entity, key)) % num_shards


#: Platform message types bound lazily — the sharding layer must stay
#: importable without pulling :mod:`repro.platform` in (which imports the
#: cluster package right back).
_FORECAST_TYPES = None


def _forecast_messages():
    global _FORECAST_TYPES
    if _FORECAST_TYPES is None:
        from repro.platform.messages import ForecastShared, ForecastSharedBatch
        _FORECAST_TYPES = (ForecastShared, ForecastSharedBatch)
    return _FORECAST_TYPES


class HashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, nodes: tuple[str, ...] | list[str],
                 replicas: int = 32) -> None:
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        points: list[tuple[int, str]] = []
        for node in nodes:
            for r in range(replicas):
                points.append((stable_hash(("ring", node, r)), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def owner(self, shard: int) -> str:
        """The node owning ``shard`` (successor on the ring)."""
        idx = bisect.bisect_right(self._points, stable_hash(("shard", shard)))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]


class ShardTable:
    """An epoch-stamped shard -> node assignment.

    The base assignment is derived from the node list via the consistent-
    hash ring; ``overrides`` layers the rebalancer's explicit
    ``shard -> owner`` moves on top. Overrides naming owners outside the
    node list are dropped (a failed node's moves must not resurrect it),
    and overrides equal to the derived owner are normalised away so two
    tables compare equal iff they route identically.
    """

    def __init__(self, epoch: int, nodes: tuple[str, ...], num_shards: int,
                 replicas: int = 32,
                 overrides: dict[int, str] | tuple[tuple[int, str], ...]
                 | None = None) -> None:
        self.epoch = epoch
        self.nodes = tuple(sorted(nodes))
        self.num_shards = num_shards
        ring = HashRing(self.nodes, replicas=replicas)
        self.assignment: dict[int, str] = {
            shard: ring.owner(shard) for shard in range(num_shards)}
        kept: dict[int, str] = {}
        if overrides:
            pairs = overrides.items() if isinstance(overrides, dict) \
                else overrides
            node_set = set(self.nodes)
            for shard, owner in pairs:
                if (owner in node_set and 0 <= shard < num_shards
                        and self.assignment[shard] != owner):
                    kept[shard] = owner
                    self.assignment[shard] = owner
        #: The normalised override set (sorted pairs) — what the
        #: coordinator re-broadcasts and the install guard compares.
        self.overrides: tuple[tuple[int, str], ...] = tuple(
            sorted(kept.items()))

    def owner_of(self, shard: int) -> str:
        return self.assignment[shard]

    def shards_of(self, node_id: str) -> list[int]:
        return [s for s, n in self.assignment.items() if n == node_id]

    def moved_shards(self, other: "ShardTable") -> list[int]:
        """Shards whose owner differs between this table and ``other`` —
        the set a handoff must cover when ``other`` replaces this table."""
        return sorted(s for s in range(self.num_shards)
                      if self.assignment.get(s) != other.assignment.get(s))

    def problems(self) -> list[str]:
        """Internal-consistency violations of this table (empty when
        sound): every shard present exactly once, every owner a member of
        the node list. The sim harness asserts this after every scenario."""
        issues = []
        missing = [s for s in range(self.num_shards)
                   if s not in self.assignment]
        if missing:
            issues.append(f"shards without owner: {missing}")
        node_set = set(self.nodes)
        foreign = sorted({n for n in self.assignment.values()
                          if n not in node_set})
        if foreign:
            issues.append(f"owners outside node list: {foreign}")
        return issues

    def __repr__(self) -> str:
        counts: dict[str, int] = {}
        for node in self.assignment.values():
            counts[node] = counts.get(node, 0) + 1
        return f"ShardTable(epoch={self.epoch}, {counts})"


class ShardRouter:
    """Location-transparent router for one entity type.

    Drop-in replacement for :class:`~repro.actors.router.KeyRouter` in the
    platform wiring: ``tell(key, message)`` delivers locally when this node
    owns the key's shard (lazily spawning the actor, exactly like the
    single-node router) and otherwise serializes the message to the owner
    node. ``__len__`` / ``known_keys`` report the *local* entity population,
    which is what per-node metrics and handoff need.
    """

    #: Clear the key -> shard memo past this many distinct keys.
    _SHARD_CACHE_MAX = 1 << 20

    def __init__(self, node: "ClusterNode", entity: str, factory,
                 strategy=None, local_router=None) -> None:
        self._node = node
        self.entity = entity
        self._local = local_router or KeyRouter(node.system, entity, factory,
                                                strategy=strategy)
        #: Messages routed away from this node (remote deliveries).
        self.remote_told = 0
        #: shard -> messages delivered locally since the last load report
        #: (the rebalancer's per-shard weight signal; take-and-reset).
        self._shard_load: dict[int, int] = {}
        #: key -> shard memo. ``shard_for_key`` is a pure function of
        #: (entity, key, num_shards) — only the shard -> *node* assignment
        #: moves with membership — so the memo survives table changes.
        #: One BLAKE2b digest per *distinct* key instead of per tell.
        self._shard_cache: dict[Any, int] = {}

    def shard_of(self, key: Any) -> int:
        shard = self._shard_cache.get(key)
        if shard is None:
            if len(self._shard_cache) >= self._SHARD_CACHE_MAX:
                self._shard_cache.clear()
            shard = self._shard_cache[key] = shard_for_key(
                self.entity, key, self._node.config.num_shards)
        return shard

    def owner_of(self, key: Any) -> str:
        return self._node.shard_owner(self.shard_of(key))

    def is_local(self, key: Any) -> bool:
        return self.owner_of(key) == self._node.node_id

    def route(self, key: Any):
        """Local ref for a locally-owned key (used by handoff/tests)."""
        return self._local.route(key)

    def tell(self, key: Any, message: Any, sender=None) -> None:
        shard = self.shard_of(key)
        if self._node.shard_owner(shard) == self._node.node_id:
            self._shard_load[shard] = self._shard_load.get(shard, 0) + 1
            self._local.tell(key, message, sender=sender)
        else:
            self.remote_told += 1
            self._node.send_sharded(self.entity, key, message, sender=sender)

    def take_shard_load(self) -> dict[int, int]:
        """Per-shard local delivery counts since the previous call
        (feeds this node's :class:`~repro.cluster.protocol.LoadReport`)."""
        load, self._shard_load = self._shard_load, {}
        return load

    def share_forecast(self, cells, forecast, sender=None) -> None:
        """Fan one forecast out to many collision cells, batching the
        remote legs: cells owned by the same node travel in a single
        :class:`~repro.platform.messages.ForecastSharedBatch` envelope
        instead of one wire message per cell."""
        ForecastShared, ForecastSharedBatch = _forecast_messages()
        node_id = self._node.node_id
        remote: dict[str, list[int]] = {}
        for cell in cells:
            shard = self.shard_of(cell)
            owner = self._node.shard_owner(shard)
            if owner == node_id:
                self._shard_load[shard] = self._shard_load.get(shard, 0) + 1
                self._local.tell(cell, ForecastShared(cell=cell,
                                                      forecast=forecast),
                                 sender=sender)
            else:
                remote.setdefault(owner, []).append(cell)
        for group in remote.values():
            self.remote_told += len(group)
            if len(group) == 1:
                self._node.send_sharded(
                    self.entity, group[0],
                    ForecastShared(cell=group[0], forecast=forecast),
                    sender=sender)
            else:
                self._node.send_sharded(
                    self.entity, group[0],
                    ForecastSharedBatch(cells=tuple(group),
                                        forecast=forecast),
                    sender=sender)

    def deliver_local(self, key: Any, message: Any, sender=None) -> None:
        """Entry point for inbound wire messages (bypasses ownership —
        the node already resolved/forwarded)."""
        ForecastShared, ForecastSharedBatch = _forecast_messages()
        if isinstance(message, ForecastSharedBatch):
            # Expand the batched fan-out; each cell re-routes individually
            # (via tell, not deliver_local) so cells whose shard moved
            # while the envelope was in flight still reach their owner.
            for cell in message.cells:
                self.tell(cell, ForecastShared(cell=cell,
                                               forecast=message.forecast),
                          sender=sender)
            return
        shard = self.shard_of(key)
        self._shard_load[shard] = self._shard_load.get(shard, 0) + 1
        self._local.tell(key, message, sender=sender)

    # -- local population (KeyRouter-compatible surface) -----------------------

    def stashed_state(self, key: Any) -> dict | None:
        """Checkpoint view of a single-occupant stashed key, when the
        local router keeps one (collision cells); ``None`` otherwise."""
        stashed = getattr(self._local, "stashed_state", None)
        return stashed(key) if stashed is not None else None

    def known_keys(self) -> list[Any]:
        return self._local.known_keys()

    def __len__(self) -> int:
        return len(self._local)

    def __contains__(self, key: Any) -> bool:
        return key in self._local

    @property
    def spawned(self) -> int:
        return self._local.spawned

    def export_state(self, key: Any) -> dict | None:
        """Exported actor state for a local key: the live actor's
        ``export_state()`` when one is spawned, else the local router's
        stash (single-occupant collision cells). ``None`` when the key
        carries no recoverable state. Shared by checkpoint capture and
        the live-migration state transfer."""
        system = self._node.system
        with system._lock:
            cell = system._cells.get(f"{self.entity}-{key}")
        if cell is None or cell.stopped:
            return self.stashed_state(key)
        export = getattr(cell.actor, "export_state", None)
        return export() if export is not None else None

    # -- handoff ----------------------------------------------------------------

    def handoff_keys(self) -> list[Any]:
        """Local keys whose shard this node no longer owns."""
        return [k for k in self._local.known_keys() if not self.is_local(k)]

    def release(self, key: Any) -> list:
        """Stop the local actor for ``key`` and return the undelivered
        envelopes drained from its mailbox (for buffered redelivery)."""
        system = self._node.system
        name = f"{self.entity}-{key}"
        pending = []
        with system._lock:
            cell = system._cells.get(name)
            if cell is not None and not cell.stopped:
                pending = cell.mailbox.get_batch(2 ** 30)
        if cell is not None and not cell.stopped:
            system.stop(system.actor_ref(name))
        self._local.forget(key)
        return pending
