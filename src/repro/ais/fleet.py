"""Vectorised fleet-scale AIS stream generator.

The paper's Table 1 dataset is a 24-hour continental stream (14.6M messages
from ~15K vessels) and its Figure 6 run tracks 170K vessels. Generating such
volumes one Python object at a time is hopeless, so this engine keeps the
whole fleet's kinematic state in numpy arrays and advances every vessel per
tick in a handful of vectorised operations. Messages are produced as
struct-of-arrays :class:`MessageBatch` chunks; only small scenarios should
ever expand them to :class:`~repro.ais.message.AISMessage` objects.

The kinematic model matches :mod:`repro.ais.simulator` (waypoint following
with turn-rate limits and speed noise); reporting uses the same SOLAS
schedule quantised to the tick length, and the channel applies coverage
drops, timestamp jitter and satellite-pass gating.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.ais.message import AISMessage
from repro.ais.ports import PORTS, Port, ports_in_bbox
from repro.ais.routes import make_route
from repro.geo.geodesy import haversine_m
from repro.ais.vessel import VesselStatics, random_statics
from repro.geo.bbox import BoundingBox
from repro.geo.constants import EARTH_RADIUS_M, KNOTS_TO_MPS, METERS_PER_DEG_LAT


@dataclass
class FleetConfig:
    """Configuration for a fleet run.

    ``start_window_s`` staggers first appearances across the run, which is
    what produces Figure 6's growing number of distinct MMSIs; set it to 0 to
    have every vessel active from t=0 (Table 1's steady 24-hour coverage).
    """

    n_vessels: int = 200
    duration_s: float = 6 * 3600.0
    tick_s: float = 30.0
    seed: int = 0
    bbox: BoundingBox | None = None
    start_window_s: float = 0.0
    satellite_fraction: float = 0.25
    coverage: float = 0.94
    jitter_s: float = 2.0
    satellite_pass_period_s: float = 5_400.0
    satellite_pass_duration_s: float = 900.0
    #: Approximate spacing between route waypoints, km. Dense enough that a
    #: typical vessel alters course within any 30-minute window — the
    #: curvature structure the learned model exploits over dead reckoning.
    waypoint_spacing_km: float = 12.0
    base_mmsi: int = 200_000_000
    #: Broadcast-sensor noise on reported SOG (knots) and COG (degrees).
    sog_noise_kn: float = 0.05
    cog_noise_deg: float = 0.30
    #: Unpredictable heading random walk (deg per sqrt-second): helmsman and
    #: sea-state wander that no model can forecast. Sets the irreducible
    #: error floor of the route-forecasting problem.
    heading_wobble: float = 0.10
    #: Stationary std (m/s) of the per-vessel current/leeway drift — an
    #: Ornstein-Uhlenbeck velocity added to every displacement. Because it
    #: decorrelates over ``drift_tau_s`` it is unpredictable at the 30-minute
    #: horizon, giving both forecasting models a common error floor (real
    #: AIS forecasting faces the same floor from weather and currents).
    drift_sd_mps: float = 0.20
    #: Correlation time of the drift process, seconds.
    drift_tau_s: float = 1_200.0


@dataclass
class MessageBatch:
    """A struct-of-arrays chunk of AIS position reports, sorted by time."""

    mmsi: np.ndarray   #: int64
    t: np.ndarray      #: float64 seconds
    lat: np.ndarray
    lon: np.ndarray
    sog: np.ndarray    #: knots
    cog: np.ndarray    #: degrees

    def __len__(self) -> int:
        return int(self.mmsi.shape[0])

    @staticmethod
    def empty() -> "MessageBatch":
        z = np.zeros(0)
        return MessageBatch(mmsi=np.zeros(0, dtype=np.int64), t=z.copy(),
                            lat=z.copy(), lon=z.copy(), sog=z.copy(),
                            cog=z.copy())

    @staticmethod
    def concat(batches: list["MessageBatch"]) -> "MessageBatch":
        if not batches:
            return MessageBatch.empty()
        return MessageBatch(
            mmsi=np.concatenate([b.mmsi for b in batches]),
            t=np.concatenate([b.t for b in batches]),
            lat=np.concatenate([b.lat for b in batches]),
            lon=np.concatenate([b.lon for b in batches]),
            sog=np.concatenate([b.sog for b in batches]),
            cog=np.concatenate([b.cog for b in batches]))

    def sorted_by_time(self) -> "MessageBatch":
        order = np.argsort(self.t, kind="stable")
        return MessageBatch(mmsi=self.mmsi[order], t=self.t[order],
                            lat=self.lat[order], lon=self.lon[order],
                            sog=self.sog[order], cog=self.cog[order])

    def per_vessel(self) -> dict[int, "MessageBatch"]:
        """Split into per-MMSI batches, each sorted by time."""
        out: dict[int, MessageBatch] = {}
        order = np.lexsort((self.t, self.mmsi))
        mmsi = self.mmsi[order]
        bounds = np.flatnonzero(np.diff(mmsi)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [len(mmsi)]])
        for s, e in zip(starts, ends):
            idx = order[s:e]
            out[int(mmsi[s])] = MessageBatch(
                mmsi=self.mmsi[idx], t=self.t[idx], lat=self.lat[idx],
                lon=self.lon[idx], sog=self.sog[idx], cog=self.cog[idx])
        return out

    def to_messages(self, source: str = "terrestrial") -> list[AISMessage]:
        """Expand to message objects (small batches only)."""
        return [AISMessage(mmsi=int(self.mmsi[i]), t=float(self.t[i]),
                           lat=float(self.lat[i]), lon=float(self.lon[i]),
                           sog=float(self.sog[i]), cog=float(self.cog[i]),
                           source=source)
                for i in range(len(self))]


class FleetEngine:
    """Vectorised simulation of an entire fleet.

    Typical use::

        engine = FleetEngine(FleetConfig(n_vessels=500, bbox=PAPER_EVAL_BBOX))
        batch = engine.run_collect()          # whole stream as arrays
        for tick_batch in engine.stream():    # or lazily, tick by tick
            ...
    """

    def __init__(self, config: FleetConfig) -> None:
        if config.n_vessels <= 0:
            raise ValueError("n_vessels must be positive")
        self.config = config
        self._rng = random.Random(config.seed)
        self._np_rng = np.random.default_rng(config.seed)
        self._build_fleet()

    # -- fleet construction --------------------------------------------------

    def _candidate_ports(self) -> list[Port]:
        if self.config.bbox is None:
            return list(PORTS)
        ports = ports_in_bbox(self.config.bbox)
        if len(ports) < 2:
            raise ValueError("bounding box contains fewer than two ports")
        return ports

    def _build_fleet(self) -> None:
        cfg = self.config
        ports = self._candidate_ports()
        weights = [p.weight for p in ports]

        self.statics: list[VesselStatics] = []
        waypoint_arrays: list[np.ndarray] = []
        for i in range(cfg.n_vessels):
            statics = random_statics(self._rng, cfg.base_mmsi + i)
            self.statics.append(statics)
            origin, dest = self._rng.choices(ports, weights=weights, k=2)
            while dest.name == origin.name:
                dest = self._rng.choices(ports, weights=weights, k=1)[0]
            gc_km = haversine_m(origin.lat, origin.lon,
                                dest.lat, dest.lon) / 1_000.0
            n_wp = int(np.clip(gc_km / cfg.waypoint_spacing_km, 8, 96))
            # Curvature amplitudes scale with route length so short hops do
            # not loop wildly while ocean passages keep realistic sweeps.
            route = make_route(
                origin, dest, self._rng, n_waypoints=n_wp,
                corridor_amplitude_m=min(25_000.0, gc_km * 1_000.0 * 0.05),
                voyage_amplitude_m=min(6_000.0, gc_km * 1_000.0 * 0.015))
            waypoint_arrays.append(np.asarray(route.waypoints, dtype=float))

        n = cfg.n_vessels
        # Ragged waypoints flattened with offsets for vectorised lookup.
        counts = np.array([len(w) for w in waypoint_arrays])
        self._wp_offsets = np.concatenate([[0], np.cumsum(counts)])
        flat = np.concatenate(waypoint_arrays, axis=0)
        self._wp_lat = flat[:, 0].copy()
        self._wp_lon = flat[:, 1].copy()

        progress = self._np_rng.uniform(0.05, 0.7, size=n)
        start_idx = (progress * (counts - 1)).astype(np.int64)
        start_idx = np.minimum(start_idx, counts - 2)
        self._wp_idx = start_idx + 1
        abs_start = self._wp_offsets[:-1] + start_idx
        self.lat = self._wp_lat[abs_start].copy()
        self.lon = self._wp_lon[abs_start].copy()
        self._counts = counts

        self.cruise_kn = np.array([s.cruise_speed_kn for s in self.statics])
        self.turn_rate = np.array([s.max_turn_rate_deg_s for s in self.statics])
        self.speed_kn = self.cruise_kn.copy()
        tgt = self._wp_offsets[:-1] + self._wp_idx
        self.heading = self._bearing(self.lat, self.lon,
                                     self._wp_lat[tgt], self._wp_lon[tgt])
        self.active = np.ones(n, dtype=bool)
        self.start_t = self._np_rng.uniform(0.0, cfg.start_window_s, size=n) \
            if cfg.start_window_s > 0 else np.zeros(n)
        self.next_report_t = self.start_t.copy()
        self.satellite = self._np_rng.random(n) < cfg.satellite_fraction
        # Current/leeway drift velocity (east, north) per vessel, m/s.
        self.drift_e = self._np_rng.normal(0.0, cfg.drift_sd_mps, size=n)
        self.drift_n = self._np_rng.normal(0.0, cfg.drift_sd_mps, size=n)

    # -- vectorised geodesy ---------------------------------------------------

    @staticmethod
    def _bearing(lat1, lon1, lat2, lon2):
        lat1r, lon1r = np.radians(lat1), np.radians(lon1)
        lat2r, lon2r = np.radians(lat2), np.radians(lon2)
        dlon = lon2r - lon1r
        y = np.sin(dlon) * np.cos(lat2r)
        x = np.cos(lat1r) * np.sin(lat2r) - np.sin(lat1r) * np.cos(lat2r) * np.cos(dlon)
        return np.degrees(np.arctan2(y, x)) % 360.0

    @staticmethod
    def _advance(lat, lon, bearing, dist_m):
        latr, lonr = np.radians(lat), np.radians(lon)
        brg = np.radians(bearing)
        delta = dist_m / EARTH_RADIUS_M
        lat2 = np.arcsin(np.sin(latr) * np.cos(delta) +
                         np.cos(latr) * np.sin(delta) * np.cos(brg))
        lon2 = lonr + np.arctan2(np.sin(brg) * np.sin(delta) * np.cos(latr),
                                 np.cos(delta) - np.sin(latr) * np.sin(lat2))
        return np.degrees(lat2), (np.degrees(lon2) + 180.0) % 360.0 - 180.0

    @staticmethod
    def _haversine(lat1, lon1, lat2, lon2):
        lat1r, lon1r = np.radians(lat1), np.radians(lon1)
        lat2r, lon2r = np.radians(lat2), np.radians(lon2)
        a = (np.sin((lat2r - lat1r) / 2) ** 2 +
             np.cos(lat1r) * np.cos(lat2r) * np.sin((lon2r - lon1r) / 2) ** 2)
        return 2 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0, 1)))

    # -- stepping ------------------------------------------------------------

    def _step(self, t: float) -> None:
        cfg = self.config
        dt = cfg.tick_s
        live = self.active & (self.start_t <= t)
        if not live.any():
            return
        tgt = self._wp_offsets[:-1] + np.minimum(self._wp_idx, self._counts - 1)
        tlat, tlon = self._wp_lat[tgt], self._wp_lon[tgt]
        dist = self._haversine(self.lat, self.lon, tlat, tlon)

        capture = np.maximum(300.0, self.speed_kn * KNOTS_TO_MPS * dt * 2.0)
        arrived = live & (dist < capture)
        if arrived.any():
            self._wp_idx[arrived] += 1
            done = arrived & (self._wp_idx >= self._counts)
            if done.any():
                self.active[done] = False
                self.speed_kn[done] = 0.0
                live = live & ~done
            tgt = self._wp_offsets[:-1] + np.minimum(self._wp_idx, self._counts - 1)
            tlat, tlon = self._wp_lat[tgt], self._wp_lon[tgt]

        desired = self._bearing(self.lat, self.lon, tlat, tlon)
        diff = (desired - self.heading + 180.0) % 360.0 - 180.0
        max_turn = self.turn_rate * dt
        turn = np.clip(diff, -max_turn, max_turn)
        wobble = self._np_rng.normal(
            0.0, cfg.heading_wobble * np.sqrt(dt), size=self.heading.shape)
        self.heading = np.where(
            live, (self.heading + turn + wobble) % 360.0, self.heading)

        pull = 0.02 * (self.cruise_kn - self.speed_kn)
        noise = self._np_rng.normal(0.0, 0.06 * np.sqrt(dt), size=self.speed_kn.shape)
        self.speed_kn = np.where(
            live, np.maximum(0.5, self.speed_kn + pull * dt + noise),
            self.speed_kn)

        new_lat, new_lon = self._advance(self.lat, self.lon, self.heading,
                                         self.speed_kn * KNOTS_TO_MPS * dt)
        # OU update of the drift velocity, then apply its displacement.
        if cfg.drift_sd_mps > 0.0:
            decay = np.exp(-dt / cfg.drift_tau_s)
            kick = cfg.drift_sd_mps * np.sqrt(1.0 - decay ** 2)
            self.drift_e = (self.drift_e * decay +
                            self._np_rng.normal(0.0, kick, size=self.drift_e.shape))
            self.drift_n = (self.drift_n * decay +
                            self._np_rng.normal(0.0, kick, size=self.drift_n.shape))
            dnorth = self.drift_n * dt
            deast = self.drift_e * dt
            new_lat = new_lat + dnorth / METERS_PER_DEG_LAT
            new_lon = new_lon + deast / (
                METERS_PER_DEG_LAT * np.maximum(
                    np.cos(np.radians(new_lat)), 0.05))
        self.lat = np.where(live, new_lat, self.lat)
        self.lon = np.where(live, new_lon, self.lon)

    def _report(self, t: float) -> MessageBatch:
        cfg = self.config
        due = self.active & (self.start_t <= t) & (self.next_report_t <= t)
        # Satellite-pass gating: messages outside a pass window are lost but
        # the transponder still reschedules (it broadcast into the void).
        if due.any():
            interval = np.select(
                [self.speed_kn > 23.0, self.speed_kn > 14.0],
                [np.full_like(self.speed_kn, 2.0),
                 np.full_like(self.speed_kn, 6.0)],
                default=10.0)
            interval = np.maximum(interval, cfg.tick_s)
            self.next_report_t = np.where(due, t + interval, self.next_report_t)

        idx = np.flatnonzero(due)
        if idx.size == 0:
            return MessageBatch.empty()

        sat = self.satellite[idx]
        phase = t % cfg.satellite_pass_period_s
        if phase > cfg.satellite_pass_duration_s:
            idx = idx[~sat]
        received = self._np_rng.random(idx.size) <= cfg.coverage
        idx = idx[received]
        if idx.size == 0:
            return MessageBatch.empty()

        jitter = self._np_rng.uniform(0.0, cfg.jitter_s, size=idx.size)
        sog = np.maximum(0.0, self.speed_kn[idx] + self._np_rng.normal(
            0.0, cfg.sog_noise_kn, size=idx.size))
        cog = (self.heading[idx] + self._np_rng.normal(
            0.0, cfg.cog_noise_deg, size=idx.size)) % 360.0
        return MessageBatch(
            mmsi=np.array([self.statics[i].mmsi for i in idx], dtype=np.int64),
            t=np.full(idx.size, t) + jitter,
            lat=self.lat[idx].copy(), lon=self.lon[idx].copy(),
            sog=sog, cog=cog)

    # -- public API -----------------------------------------------------------

    def stream(self):
        """Yield one :class:`MessageBatch` per tick (possibly empty)."""
        t = 0.0
        while t <= self.config.duration_s:
            self._step(t)
            yield self._report(t)
            t += self.config.tick_s

    def run_collect(self) -> MessageBatch:
        """Run the full configured duration and return one time-sorted batch."""
        return MessageBatch.concat([b for b in self.stream() if len(b)]) \
            .sorted_by_time()
