"""Event-driven per-vessel scenario simulator.

This engine simulates a modest number of vessels with full per-vessel detail:
waypoint following with turn-rate limits, speed noise, SOLAS-like adaptive
AIS reporting, channel irregularity (drops, jitter, duplicates, satellite
gaps) and deliberate transmitter switch-offs. It produces both

* the observable, irregular **AIS message stream** the platform ingests, and
* the dense **ground-truth tracks** evaluation compares against.

The vectorised :mod:`repro.ais.fleet` engine trades this per-vessel richness
for throughput; both emit the same :class:`~repro.ais.message.AISMessage`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.ais.message import AISMessage, NavigationStatus
from repro.ais.routes import Route
from repro.ais.vessel import VesselStatics
from repro.geo.constants import KNOTS_TO_MPS, METERS_PER_DEG_LAT
from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.geo.track import Position


def solas_reporting_interval_s(sog_kn: float, turning: bool = False,
                               anchored: bool = False) -> float:
    """Nominal Class-A AIS reporting interval per SOLAS/ITU-R M.1371.

    Anchored/moored vessels report every 3 minutes; under way the interval
    shrinks with speed, and halves (to a floor of ~3.3 s) while the vessel is
    changing course.
    """
    if anchored:
        return 180.0
    if sog_kn > 23.0:
        base = 2.0
    elif sog_kn > 14.0:
        base = 6.0
    else:
        base = 10.0
    if turning and sog_kn <= 14.0:
        return 10.0 / 3.0
    if turning:
        return max(base / 2.0, 2.0)
    return base


@dataclass
class ChannelModel:
    """Stochastic model of the AIS reception chain.

    ``coverage`` is the probability a broadcast is received at all;
    ``jitter_s`` bounds uniform receiver-timestamp noise; ``duplicate_prob``
    models overlapping receiver footprints; satellite passes are modelled as
    alternating visibility windows that gate reception for vessels flagged
    as satellite-tracked.
    """

    coverage: float = 0.92
    jitter_s: float = 1.5
    duplicate_prob: float = 0.03
    satellite_pass_period_s: float = 5_400.0   #: one pass every ~90 min
    satellite_pass_duration_s: float = 900.0   #: ~15 min of visibility

    def deliver(self, msg: AISMessage, rng: random.Random) -> list[AISMessage]:
        """Messages actually reaching the ingestion layer for one broadcast."""
        if msg.source == "satellite":
            phase = msg.t % self.satellite_pass_period_s
            if phase > self.satellite_pass_duration_s:
                return []
        if rng.random() > self.coverage:
            return []
        received = [msg.with_time(msg.t + rng.uniform(0.0, self.jitter_s))]
        if rng.random() < self.duplicate_prob:
            received.append(msg.with_time(msg.t + rng.uniform(0.0, self.jitter_s)))
        return received


@dataclass
class VesselAgent:
    """One simulated vessel: kinematic state plus transponder behaviour."""

    statics: VesselStatics
    route: Route
    start_time: float = 0.0
    #: Fraction of route already covered at start (vessels mid-voyage).
    start_progress: float = 0.0
    #: [(t_off, t_on)] windows during which the transponder is silent.
    switch_off_windows: tuple[tuple[float, float], ...] = ()
    #: Whether this vessel is observed via satellite (open sea) rather than
    #: terrestrial receivers.
    satellite: bool = False
    speed_noise_kn: float = 0.6
    sog_sensor_noise_kn: float = 0.05
    cog_sensor_noise_deg: float = 0.3
    #: Unpredictable heading random walk (deg per sqrt-second), matching the
    #: fleet engine's irreducible-uncertainty model.
    heading_wobble: float = 0.10
    #: Current/leeway drift: stationary std (m/s) and correlation time of an
    #: OU velocity added to every displacement (see FleetConfig.drift_sd_mps).
    drift_sd_mps: float = 0.20
    drift_tau_s: float = 1_200.0

    lat: float = field(init=False)
    lon: float = field(init=False)
    heading: float = field(init=False)
    speed_kn: float = field(init=False)
    waypoint_idx: int = field(init=False)
    finished: bool = field(init=False, default=False)
    _turning: bool = field(init=False, default=False)
    _next_report_t: float = field(init=False)

    _drift_e: float = field(init=False, default=0.0)
    _drift_n: float = field(init=False, default=0.0)
    _drift_seeded: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        wps = self.route.waypoints
        start_idx = int(self.start_progress * (len(wps) - 1))
        start_idx = min(start_idx, len(wps) - 2)
        self.lat, self.lon = wps[start_idx]
        self.waypoint_idx = start_idx + 1
        target = wps[self.waypoint_idx]
        self.heading = initial_bearing_deg(self.lat, self.lon, *target)
        self.speed_kn = self.statics.cruise_speed_kn
        self._next_report_t = self.start_time

    # -- kinematics --------------------------------------------------------

    def step(self, t: float, dt: float, rng: random.Random) -> None:
        """Advance the vessel by ``dt`` seconds ending at absolute time ``t``."""
        if self.finished or t < self.start_time:
            return
        wps = self.route.waypoints
        target = wps[self.waypoint_idx]
        dist_to_wp = haversine_m(self.lat, self.lon, *target)

        # Waypoint capture radius scales with speed so fast vessels do not
        # orbit a waypoint they cannot turn into.
        capture = max(300.0, self.speed_kn * KNOTS_TO_MPS * dt * 2.0)
        if dist_to_wp < capture:
            self.waypoint_idx += 1
            if self.waypoint_idx >= len(wps):
                self.finished = True
                self.speed_kn = 0.0
                return
            target = wps[self.waypoint_idx]

        desired = initial_bearing_deg(self.lat, self.lon, *target)
        diff = (desired - self.heading + 180.0) % 360.0 - 180.0
        max_turn = self.statics.max_turn_rate_deg_s * dt
        turn = max(-max_turn, min(max_turn, diff))
        self._turning = abs(turn) > 0.05 * dt
        wobble = rng.gauss(0.0, self.heading_wobble * (dt ** 0.5))
        self.heading = (self.heading + turn + wobble) % 360.0

        # Ornstein-Uhlenbeck style speed noise around the cruise speed.
        pull = 0.02 * (self.statics.cruise_speed_kn - self.speed_kn)
        self.speed_kn = max(0.5, self.speed_kn + pull * dt +
                            rng.gauss(0.0, self.speed_noise_kn) * (dt ** 0.5) * 0.1)

        self.lat, self.lon = destination_point(
            self.lat, self.lon, self.heading,
            self.speed_kn * KNOTS_TO_MPS * dt)

        if self.drift_sd_mps > 0.0:
            if not self._drift_seeded:
                self._drift_e = rng.gauss(0.0, self.drift_sd_mps)
                self._drift_n = rng.gauss(0.0, self.drift_sd_mps)
                self._drift_seeded = True
            decay = math.exp(-dt / self.drift_tau_s)
            kick = self.drift_sd_mps * math.sqrt(1.0 - decay ** 2)
            self._drift_e = self._drift_e * decay + rng.gauss(0.0, kick)
            self._drift_n = self._drift_n * decay + rng.gauss(0.0, kick)
            self.lat += self._drift_n * dt / METERS_PER_DEG_LAT
            self.lon += (self._drift_e * dt /
                         (METERS_PER_DEG_LAT *
                          max(math.cos(math.radians(self.lat)), 0.05)))

    # -- transponder ---------------------------------------------------------

    def _is_switched_off(self, t: float) -> bool:
        return any(t_off <= t < t_on for t_off, t_on in self.switch_off_windows)

    def maybe_broadcast(self, t: float, rng: random.Random) -> AISMessage | None:
        """The AIS position report broadcast at time ``t``, if one is due.

        Sensor noise is applied to SOG/COG here (the broadcast values), never
        to the ground-truth kinematic state.
        """
        if self.finished or t < self.start_time or t < self._next_report_t:
            return None
        interval = solas_reporting_interval_s(self.speed_kn, self._turning)
        self._next_report_t = t + interval
        if self._is_switched_off(t):
            return None
        sog = max(0.0, self.speed_kn + rng.gauss(0.0, self.sog_sensor_noise_kn))
        cog = (self.heading + rng.gauss(0.0, self.cog_sensor_noise_deg)) % 360.0
        return AISMessage(
            mmsi=self.statics.mmsi, t=t, lat=self.lat, lon=self.lon,
            sog=sog, cog=cog, heading=int(self.heading) % 360,
            status=NavigationStatus.UNDER_WAY,
            source="satellite" if self.satellite else "terrestrial")

    def true_position(self, t: float) -> Position:
        """Ground-truth position snapshot at the current state."""
        return Position(t=t, lat=self.lat, lon=self.lon,
                        sog=self.speed_kn, cog=self.heading)


@dataclass
class SimulationResult:
    """Output of a scenario run: the observable stream plus ground truth."""

    messages: list[AISMessage]
    truth: dict[int, list[Position]]  #: mmsi -> dense track at tick rate

    def messages_for(self, mmsi: int) -> list[AISMessage]:
        return [m for m in self.messages if m.mmsi == mmsi]


class ScenarioSimulator:
    """Run a set of :class:`VesselAgent` forward and collect the AIS stream.

    The simulator ticks every ``dt_s`` seconds; ground truth is recorded each
    tick, broadcasts happen at each agent's SOLAS schedule and pass through
    the :class:`ChannelModel`. Output messages are sorted by receiver time,
    as the platform would see them from its stream broker.
    """

    def __init__(self, agents: list[VesselAgent],
                 channel: ChannelModel | None = None,
                 dt_s: float = 10.0, seed: int = 0) -> None:
        if not agents:
            raise ValueError("need at least one vessel agent")
        mmsis = [a.statics.mmsi for a in agents]
        if len(set(mmsis)) != len(mmsis):
            raise ValueError("duplicate MMSIs in scenario")
        self._agents = agents
        self._channel = channel or ChannelModel()
        self._dt = float(dt_s)
        self._rng = random.Random(seed)

    def run(self, duration_s: float) -> SimulationResult:
        """Simulate ``duration_s`` seconds from t=0."""
        messages: list[AISMessage] = []
        truth: dict[int, list[Position]] = {a.statics.mmsi: [] for a in self._agents}
        t = 0.0
        while t <= duration_s:
            for agent in self._agents:
                agent.step(t, self._dt, self._rng)
                if not agent.finished and t >= agent.start_time:
                    truth[agent.statics.mmsi].append(agent.true_position(t))
                broadcast = agent.maybe_broadcast(t, self._rng)
                if broadcast is not None:
                    messages.extend(self._channel.deliver(broadcast, self._rng))
            t += self._dt
        messages.sort(key=lambda m: m.t)
        return SimulationResult(messages=messages, truth=truth)
