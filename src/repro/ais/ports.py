"""A catalogue of real-world ports used to lay out synthetic routes.

Coordinates are approximate harbour-entrance positions. The catalogue spans
the paper's evaluation regions (Europe and adjacent seas, with the Aegean
well represented for the collision dataset) plus enough world coverage for
the global scalability stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.bbox import BoundingBox


@dataclass(frozen=True)
class Port:
    """A named port with harbour coordinates and a coarse region tag."""

    name: str
    lat: float
    lon: float
    region: str
    #: Relative traffic weight used when sampling origin/destination pairs.
    weight: float = 1.0


PORTS: tuple[Port, ...] = (
    # --- Aegean & East Mediterranean -------------------------------------
    Port("Piraeus", 37.942, 23.646, "aegean", 3.0),
    Port("Thessaloniki", 40.632, 22.935, "aegean", 1.5),
    Port("Heraklion", 35.345, 25.145, "aegean", 1.0),
    Port("Ermoupolis", 37.444, 24.941, "aegean", 0.6),
    Port("Izmir", 38.440, 27.140, "aegean", 1.2),
    Port("Istanbul", 41.015, 28.955, "aegean", 2.5),
    Port("Rhodes", 36.451, 28.227, "aegean", 0.6),
    Port("Chania", 35.519, 24.018, "aegean", 0.5),
    Port("Kavala", 40.934, 24.409, "aegean", 0.5),
    Port("Mytilene", 39.108, 26.555, "aegean", 0.5),
    Port("Limassol", 34.650, 33.030, "eastmed", 1.2),
    Port("Port Said", 31.265, 32.302, "eastmed", 2.5),
    Port("Haifa", 32.820, 35.000, "eastmed", 1.0),
    # --- Central & West Mediterranean ------------------------------------
    Port("Valletta", 35.897, 14.512, "med", 1.0),
    Port("Genoa", 44.403, 8.924, "med", 1.8),
    Port("Marseille", 43.330, 5.350, "med", 1.8),
    Port("Barcelona", 41.350, 2.160, "med", 1.8),
    Port("Valencia", 39.450, -0.320, "med", 1.6),
    Port("Algeciras", 36.130, -5.430, "med", 2.0),
    Port("Naples", 40.840, 14.260, "med", 1.2),
    Port("Tunis", 36.820, 10.300, "med", 0.8),
    Port("Alexandria", 31.190, 29.870, "med", 1.5),
    # --- Atlantic Europe ---------------------------------------------------
    Port("Lisbon", 38.700, -9.160, "atlantic", 1.2),
    Port("Leixoes", 41.185, -8.700, "atlantic", 0.8),
    Port("Bilbao", 43.350, -3.040, "atlantic", 0.8),
    Port("Le Havre", 49.480, 0.110, "atlantic", 1.8),
    Port("Southampton", 50.900, -1.400, "atlantic", 1.6),
    Port("Dublin", 53.345, -6.200, "atlantic", 0.8),
    Port("Bordeaux", 45.570, -1.060, "atlantic", 0.6),
    # --- North Sea & Baltic -------------------------------------------------
    Port("Rotterdam", 51.950, 4.050, "northsea", 3.0),
    Port("Antwerp", 51.280, 4.300, "northsea", 2.5),
    Port("Hamburg", 53.870, 8.710, "northsea", 2.2),
    Port("Felixstowe", 51.950, 1.310, "northsea", 1.5),
    Port("Bremerhaven", 53.560, 8.550, "northsea", 1.4),
    Port("Gothenburg", 57.690, 11.850, "baltic", 1.0),
    Port("Copenhagen", 55.700, 12.600, "baltic", 0.9),
    Port("Gdansk", 54.400, 18.680, "baltic", 1.0),
    Port("Stockholm", 59.320, 18.100, "baltic", 0.8),
    Port("Helsinki", 60.150, 24.960, "baltic", 0.8),
    Port("St Petersburg", 59.880, 30.200, "baltic", 1.2),
    Port("Riga", 57.050, 24.030, "baltic", 0.6),
    # --- Norwegian / Barents -------------------------------------------------
    Port("Bergen", 60.400, 5.300, "norwegian", 0.8),
    Port("Narvik", 68.430, 17.400, "norwegian", 0.5),
    Port("Murmansk", 68.970, 33.050, "barents", 0.6),
    # --- Black Sea ------------------------------------------------------------
    Port("Constanta", 44.160, 28.660, "blacksea", 1.0),
    Port("Odessa", 46.490, 30.740, "blacksea", 1.0),
    Port("Novorossiysk", 44.720, 37.800, "blacksea", 1.0),
    # --- Red Sea & Persian Gulf -----------------------------------------------
    Port("Jeddah", 21.480, 39.170, "redsea", 1.5),
    Port("Suez", 29.930, 32.560, "redsea", 1.8),
    Port("Djibouti", 11.600, 43.140, "redsea", 0.8),
    Port("Jebel Ali", 25.010, 55.060, "gulf", 2.0),
    Port("Ras Tanura", 26.640, 50.160, "gulf", 1.2),
    Port("Bandar Abbas", 27.150, 56.210, "gulf", 1.0),
    # --- Caspian ---------------------------------------------------------------
    Port("Baku", 40.370, 49.870, "caspian", 0.6),
    Port("Aktau", 43.620, 51.220, "caspian", 0.4),
    # --- World (scalability stream) --------------------------------------------
    Port("New York", 40.500, -73.900, "world", 2.0),
    Port("Houston", 29.300, -94.700, "world", 1.8),
    Port("Santos", -24.040, -46.300, "world", 1.5),
    Port("Cape Town", -33.900, 18.430, "world", 1.0),
    Port("Lagos", 6.400, 3.400, "world", 1.0),
    Port("Mumbai", 18.920, 72.830, "world", 1.6),
    Port("Colombo", 6.950, 79.840, "world", 1.4),
    Port("Singapore", 1.260, 103.840, "world", 3.0),
    Port("Hong Kong", 22.280, 114.160, "world", 2.2),
    Port("Shanghai", 31.000, 122.000, "world", 3.0),
    Port("Busan", 35.050, 129.050, "world", 2.0),
    Port("Tokyo", 35.500, 139.900, "world", 1.8),
    Port("Sydney", -33.950, 151.230, "world", 1.0),
    Port("Los Angeles", 33.700, -118.250, "world", 2.0),
    Port("Vancouver", 49.280, -123.160, "world", 1.2),
    Port("Panama Colon", 9.380, -79.900, "world", 1.8),
)


def ports_in_bbox(bbox: BoundingBox) -> list[Port]:
    """All catalogue ports inside ``bbox``."""
    return [p for p in PORTS if bbox.contains(p.lat, p.lon)]


def ports_in_region(region: str) -> list[Port]:
    """All catalogue ports tagged with ``region``."""
    return [p for p in PORTS if p.region == region]
