"""Curved waypoint routes between ports.

Real vessel paths between two ports are not great circles: traffic separation
schemes, coastlines and weather bend them. The long-term forecasting model
(EnvClus*) exists precisely because of that structure. The synthetic route
generator reproduces the property that matters to every consumer: routes
between the same port pair share a common curved corridor, with per-voyage
lateral variation inside the corridor.

A route is built by bending the great circle with a smooth lateral offset
profile (sum of half-sine modes whose amplitudes are deterministic per port
pair) plus a smaller per-voyage random profile.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field

from repro.ais.ports import Port
from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg


@dataclass(frozen=True)
class Route:
    """A polyline route with the ports it connects."""

    origin: Port
    destination: Port
    waypoints: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    @property
    def length_m(self) -> float:
        total = 0.0
        for (lat1, lon1), (lat2, lon2) in zip(self.waypoints, self.waypoints[1:]):
            total += haversine_m(lat1, lon1, lat2, lon2)
        return total


def _corridor_seed(origin: Port, destination: Port) -> int:
    """Deterministic seed shared by all voyages on one port pair, so the
    corridor shape is a property of the pair (as in historical AIS data)."""
    key = f"{origin.name}->{destination.name}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


def make_route(origin: Port, destination: Port, rng: random.Random,
               n_waypoints: int = 24, corridor_amplitude_m: float = 25_000.0,
               voyage_amplitude_m: float = 6_000.0) -> Route:
    """Build one voyage's route from ``origin`` to ``destination``.

    The route interpolates the great circle at ``n_waypoints`` points and
    displaces each laterally by

    * a *corridor* profile — deterministic for the port pair (2 half-sine
      modes, amplitude ``corridor_amplitude_m``), and
    * a *voyage* profile — drawn from ``rng`` per call, amplitude
      ``voyage_amplitude_m`` — modelling individual routing decisions.

    Endpoints are never displaced (vessels do depart/arrive at the ports).
    """
    if n_waypoints < 2:
        raise ValueError(f"need at least 2 waypoints, got {n_waypoints}")
    total = haversine_m(origin.lat, origin.lon, destination.lat, destination.lon)
    if total <= 0.0:
        raise ValueError("origin and destination coincide")

    pair_rng = random.Random(_corridor_seed(origin, destination))
    corridor_modes = [(pair_rng.uniform(-1.0, 1.0), k + 1) for k in range(2)]
    voyage_modes = [(rng.uniform(-1.0, 1.0), k + 1) for k in range(3)]

    waypoints: list[tuple[float, float]] = []
    for i in range(n_waypoints):
        frac = i / (n_waypoints - 1)
        lat, lon = destination_point(
            origin.lat, origin.lon,
            initial_bearing_deg(origin.lat, origin.lon,
                                destination.lat, destination.lon),
            total * frac)
        offset = 0.0
        for amp, k in corridor_modes:
            offset += corridor_amplitude_m * amp * math.sin(math.pi * k * frac)
        for amp, k in voyage_modes:
            offset += voyage_amplitude_m * amp * math.sin(math.pi * k * frac)
        # Taper ensures endpoints stay pinned even after mode summation.
        offset *= math.sin(math.pi * frac)
        if abs(offset) > 0.0:
            heading = initial_bearing_deg(lat, lon,
                                          destination.lat, destination.lon)
            side = 90.0 if offset >= 0 else -90.0
            lat, lon = destination_point(lat, lon, heading + side, abs(offset))
        waypoints.append((lat, lon))

    # Snap exact endpoints (floating point drift from the projections).
    waypoints[0] = (origin.lat, origin.lon)
    waypoints[-1] = (destination.lat, destination.lon)
    return Route(origin=origin, destination=destination,
                 waypoints=tuple(waypoints))
