"""AIS substrate: message model, codec, synthetic fleet and datasets.

The paper's platform consumes the MarineTraffic/Kpler real-time AIS feed
(terrestrial receivers + satellite + third parties). That feed is proprietary,
so this package provides the closest synthetic equivalent:

* :mod:`repro.ais.message` — AIS position/static reports and an AIVDM-style
  NMEA codec (6-bit ASCII armouring, checksums), so the ingestion path parses
  real-looking sentences rather than convenient Python objects.
* :mod:`repro.ais.vessel` — vessel static data (MMSI, type, dimensions,
  draught, DWT) with realistic distributions per vessel class.
* :mod:`repro.ais.ports` — a catalogue of real-world port coordinates used to
  lay out routes.
* :mod:`repro.ais.routes` — curved waypoint routes between ports.
* :mod:`repro.ais.simulator` — an event-driven per-vessel scenario simulator
  (used for the Aegean collision dataset and the examples) with SOLAS-like
  adaptive reporting and channel irregularity.
* :mod:`repro.ais.fleet` — a vectorised fleet-scale kinematics engine used to
  generate the 24-hour European dataset (Table 1) and the global scalability
  stream (Figure 6).
* :mod:`repro.ais.preprocessing` — the 30-second downsampling, trajectory
  segmentation and fixed-tensor construction of Section 4.2.
* :mod:`repro.ais.datasets` — the experiment dataset builders.
"""

from repro.ais.message import (
    AISMessage,
    NavigationStatus,
    StaticReport,
    decode_nmea,
    encode_nmea,
)
from repro.ais.vessel import VesselStatics, VesselType, random_statics
from repro.ais.ports import PORTS, Port, ports_in_bbox
from repro.ais.routes import Route, make_route
from repro.ais.simulator import (
    ChannelModel,
    ScenarioSimulator,
    VesselAgent,
    solas_reporting_interval_s,
)
from repro.ais.fleet import FleetConfig, FleetEngine

__all__ = [
    "AISMessage",
    "ChannelModel",
    "FleetConfig",
    "FleetEngine",
    "NavigationStatus",
    "PORTS",
    "Port",
    "Route",
    "ScenarioSimulator",
    "StaticReport",
    "VesselAgent",
    "VesselStatics",
    "VesselType",
    "decode_nmea",
    "encode_nmea",
    "make_route",
    "ports_in_bbox",
    "random_statics",
    "solas_reporting_interval_s",
]
