"""Stream preprocessing: downsampling, segmentation, fixed tensors.

Implements Section 4.2's data pipeline:

* aggregate raw AIS transmissions at a **minimum 30-second downsampling
  rate** (transmissions closer together than that are merged into the first),
* segment each vessel's trajectory into windows of **20 past spatiotemporal
  displacements** (21 consecutive fixes) followed by a **30-minute target
  horizon**, discarding windows broken by reception gaps,
* interpolate the target horizon at six 5-minute marks and express it as six
  ``(Δlat, Δlon)`` transitions — the fixed output tensor of Figure 3.

Everything here is pure array manipulation: no model code, no simulator code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ais.fleet import MessageBatch

#: Number of input displacement steps (Figure 3: 20 past displacements).
INPUT_STEPS = 20
#: Number of forecast transitions (Figure 3: six 5-minute intervals).
OUTPUT_STEPS = 6
#: Forecast sampling interval in seconds.
OUTPUT_INTERVAL_S = 300.0
#: Forecast horizon in seconds (30 minutes).
HORIZON_S = OUTPUT_STEPS * OUTPUT_INTERVAL_S
#: The paper's minimum downsampling rate for aggregated transmissions.
MIN_DOWNSAMPLE_S = 30.0


@dataclass
class SegmentDataset:
    """Fixed-size training/evaluation tensors plus per-segment anchor state.

    ``x``        — ``(n, INPUT_STEPS, 3)`` input displacements
                   ``(Δlat deg, Δlon deg, Δt s)``.
    ``y``        — ``(n, OUTPUT_STEPS, 2)`` target transitions
                   ``(Δlat deg, Δlon deg)`` between consecutive 5-min marks.
    ``anchor``   — ``(n, 5)`` state at the forecast origin:
                   ``(t, lat, lon, sog kn, cog deg)`` — what the linear
                   kinematic baseline (and denormalisation) needs.
    ``mmsi``     — ``(n,)`` vessel of each segment.
    """

    x: np.ndarray
    y: np.ndarray
    anchor: np.ndarray
    mmsi: np.ndarray

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, idx: np.ndarray) -> "SegmentDataset":
        return SegmentDataset(x=self.x[idx], y=self.y[idx],
                              anchor=self.anchor[idx], mmsi=self.mmsi[idx])

    def target_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Ground-truth absolute positions at the six horizon marks.

        Returns ``(lat, lon)`` arrays of shape ``(n, OUTPUT_STEPS)`` obtained
        by cumulatively summing the target transitions from the anchor.
        """
        lat0 = self.anchor[:, 1:2]
        lon0 = self.anchor[:, 2:3]
        lat = lat0 + np.cumsum(self.y[:, :, 0], axis=1)
        lon = lon0 + np.cumsum(self.y[:, :, 1], axis=1)
        return lat, lon

    @staticmethod
    def concat(parts: list["SegmentDataset"]) -> "SegmentDataset":
        if not parts:
            return SegmentDataset(x=np.zeros((0, INPUT_STEPS, 3)),
                                  y=np.zeros((0, OUTPUT_STEPS, 2)),
                                  anchor=np.zeros((0, 5)),
                                  mmsi=np.zeros(0, dtype=np.int64))
        return SegmentDataset(
            x=np.concatenate([p.x for p in parts]),
            y=np.concatenate([p.y for p in parts]),
            anchor=np.concatenate([p.anchor for p in parts]),
            mmsi=np.concatenate([p.mmsi for p in parts]))


def downsample_arrays(t: np.ndarray, min_interval_s: float = MIN_DOWNSAMPLE_S
                      ) -> np.ndarray:
    """Indices of fixes kept by the minimum-interval downsampling rule.

    Equivalent to :func:`repro.geo.track.downsample_track` but on a raw
    timestamp array; ``t`` must be sorted ascending.
    """
    if t.size == 0:
        return np.zeros(0, dtype=np.int64)
    kept = [0]
    last = t[0]
    for i in range(1, t.size):
        if t[i] - last >= min_interval_s:
            kept.append(i)
            last = t[i]
    return np.asarray(kept, dtype=np.int64)


def _interp_positions(t: np.ndarray, lat: np.ndarray, lon: np.ndarray,
                      query_t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Linear (in lat/lon) interpolation of a track at ``query_t``.

    Adequate for the ≤5-minute inter-fix spans of a downsampled dense track;
    the paper likewise interpolates AIS transitions onto the 5-minute grid.
    """
    return np.interp(query_t, t, lat), np.interp(query_t, t, lon)


def segment_vessel(t: np.ndarray, lat: np.ndarray, lon: np.ndarray,
                   sog: np.ndarray, cog: np.ndarray, mmsi: int,
                   max_input_gap_s: float = 600.0,
                   max_target_gap_s: float = 900.0,
                   stride: int = 5,
                   input_steps: int = INPUT_STEPS) -> SegmentDataset:
    """Cut one vessel's downsampled track into fixed-size segments.

    A window is valid when its ``input_steps`` input displacements each span
    at most ``max_input_gap_s`` and the 30-minute target horizon contains no
    reception gap longer than ``max_target_gap_s``. ``stride`` controls
    anchor spacing (in fixes) to bound inter-segment correlation.
    ``input_steps`` defaults to the paper's fixed 20 (exposed for the
    input-window ablation study).
    """
    n = t.size
    need = input_steps + 1
    xs, ys, anchors = [], [], []
    i = need - 1
    while i < n:
        t_in = t[i - input_steps:i + 1]
        gaps = np.diff(t_in)
        if np.any(gaps > max_input_gap_s) or np.any(gaps <= 0):
            i += stride
            continue
        t_end = t[i] + HORIZON_S
        j = int(np.searchsorted(t, t_end))
        if j >= n:
            break  # not enough future data for any later anchor either
        future_t = t[i:j + 1]
        if np.any(np.diff(future_t) > max_target_gap_s):
            i += stride
            continue

        dlat = np.diff(lat[i - input_steps:i + 1])
        dlon = np.diff(lon[i - input_steps:i + 1])
        xs.append(np.stack([dlat, dlon, gaps], axis=1))

        marks = t[i] + OUTPUT_INTERVAL_S * np.arange(1, OUTPUT_STEPS + 1)
        mlat, mlon = _interp_positions(t, lat, lon, marks)
        tr_lat = np.diff(np.concatenate([[lat[i]], mlat]))
        tr_lon = np.diff(np.concatenate([[lon[i]], mlon]))
        ys.append(np.stack([tr_lat, tr_lon], axis=1))
        anchors.append((t[i], lat[i], lon[i], sog[i], cog[i]))
        i += stride

    if not xs:
        empty = SegmentDataset.concat([])
        if input_steps != INPUT_STEPS:
            empty.x = np.zeros((0, input_steps, 3))
        return empty
    return SegmentDataset(
        x=np.asarray(xs), y=np.asarray(ys),
        anchor=np.asarray(anchors),
        mmsi=np.full(len(xs), mmsi, dtype=np.int64))


def build_segments(batch: MessageBatch,
                   min_interval_s: float = MIN_DOWNSAMPLE_S,
                   max_input_gap_s: float = 600.0,
                   max_target_gap_s: float = 900.0,
                   stride: int = 5,
                   input_steps: int = INPUT_STEPS) -> SegmentDataset:
    """Downsample and segment an entire message batch (all vessels)."""
    parts = []
    for mmsi, vb in batch.per_vessel().items():
        keep = downsample_arrays(vb.t, min_interval_s)
        if keep.size < input_steps + 2:
            continue
        parts.append(segment_vessel(
            vb.t[keep], vb.lat[keep], vb.lon[keep],
            vb.sog[keep], vb.cog[keep], mmsi,
            max_input_gap_s=max_input_gap_s,
            max_target_gap_s=max_target_gap_s, stride=stride,
            input_steps=input_steps))
    return SegmentDataset.concat([p for p in parts if len(p)])


def train_val_test_split(dataset: SegmentDataset, seed: int = 0,
                         fractions: tuple[float, float, float] = (0.5, 0.25, 0.25)
                         ) -> tuple[SegmentDataset, SegmentDataset, SegmentDataset]:
    """Shuffle segments and split 50/25/25 as in Section 6.1."""
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {fractions}")
    n = len(dataset)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_train = int(n * fractions[0])
    n_val = int(n * fractions[1])
    return (dataset.subset(order[:n_train]),
            dataset.subset(order[n_train:n_train + n_val]),
            dataset.subset(order[n_train + n_val:]))


def sampling_interval_stats(batch: MessageBatch,
                            min_interval_s: float = MIN_DOWNSAMPLE_S
                            ) -> tuple[float, float]:
    """Mean and std of inter-fix intervals after downsampling, dataset-wide.

    The paper reports 78.6 s mean / 418.3 s std for its 24-hour stream; this
    is the diagnostic used to calibrate the synthetic channel model.
    """
    gaps = []
    for vb in batch.per_vessel().values():
        keep = downsample_arrays(vb.t, min_interval_s)
        if keep.size >= 2:
            gaps.append(np.diff(vb.t[keep]))
    if not gaps:
        return float("nan"), float("nan")
    allg = np.concatenate(gaps)
    return float(allg.mean()), float(allg.std())
