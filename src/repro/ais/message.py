"""AIS message types and an AIVDM-style NMEA codec.

Real AIS transponders broadcast binary payloads that reach shore armoured as
6-bit ASCII inside ``!AIVDM`` NMEA 0183 sentences. The platform's ingestion
services must therefore *parse* sentences, not receive Python objects. This
module implements the two message classes the system consumes:

* **position reports** (ITU-R M.1371 type 1, 168 bits): MMSI, navigation
  status, SOG, COG, lat/lon at 1/600000 degree resolution, heading,
* **static & voyage reports** (type 5, abridged): MMSI, name, ship type,
  dimensions, draught.

The bit layouts follow the standard closely enough that values survive a
round trip with the standard's quantisation (0.1 kn, 0.1°, 1/600000°) —
tests assert exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class NavigationStatus(enum.IntEnum):
    """Subset of ITU-R M.1371 navigation status codes used by the simulator."""

    UNDER_WAY = 0
    AT_ANCHOR = 1
    NOT_UNDER_COMMAND = 2
    RESTRICTED_MANEUVERABILITY = 3
    MOORED = 5
    FISHING = 7
    UNDEFINED = 15


@dataclass(frozen=True)
class AISMessage:
    """A decoded AIS position report.

    ``t`` is the receiver epoch timestamp in seconds (the stream time used by
    the platform); the on-air payload itself only carries the UTC second
    within the minute, as in the real system.
    """

    mmsi: int
    t: float
    lat: float
    lon: float
    sog: float  #: speed over ground, knots
    cog: float  #: course over ground, degrees
    heading: int | None = None
    status: NavigationStatus = NavigationStatus.UNDER_WAY
    source: str = "terrestrial"  #: "terrestrial" | "satellite"

    def with_time(self, t: float) -> "AISMessage":
        """Copy of this message re-stamped at receiver time ``t``."""
        return replace(self, t=t)


@dataclass(frozen=True)
class StaticReport:
    """A decoded AIS static & voyage report (abridged type 5)."""

    mmsi: int
    t: float
    name: str
    ship_type: int
    to_bow: int
    to_stern: int
    to_port: int
    to_starboard: int
    draught: float  #: metres

    @property
    def length(self) -> int:
        return self.to_bow + self.to_stern

    @property
    def beam(self) -> int:
        return self.to_port + self.to_starboard


# --------------------------------------------------------------------------
# Bit-level plumbing
# --------------------------------------------------------------------------

class _BitWriter:
    """Append-only big-endian bit buffer."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, width: int) -> None:
        if value < 0:
            value &= (1 << width) - 1  # two's complement
        if value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self._bits.append((value >> i) & 1)

    def write_text(self, text: str, width_chars: int) -> None:
        """Write 6-bit ASCII text, padded with ``@`` (0) to ``width_chars``."""
        padded = text.upper().ljust(width_chars, "@")[:width_chars]
        for ch in padded:
            code = ord(ch)
            if 64 <= code <= 95:       # '@'..'_' -> 0..31
                six = code - 64
            elif 32 <= code <= 63:     # ' '..'?' -> 32..63
                six = code
            else:
                six = 0
            self.write(six, 6)

    def bits(self) -> list[int]:
        return list(self._bits)


class _BitReader:
    """Sequential big-endian bit reader."""

    def __init__(self, bits: list[int]) -> None:
        self._bits = bits
        self._pos = 0

    def read(self, width: int, signed: bool = False) -> int:
        if self._pos + width > len(self._bits):
            raise ValueError("payload truncated")
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        if signed and value >= (1 << (width - 1)):
            value -= 1 << width
        return value

    def read_text(self, width_chars: int) -> str:
        chars = []
        for _ in range(width_chars):
            six = self.read(6)
            if six < 32:
                chars.append(chr(six + 64))
            else:
                chars.append(chr(six))
        return "".join(chars).replace("@", "").rstrip()


def _bits_to_sixbit_ascii(bits: list[int]) -> str:
    """Armour a bit list as the 6-bit ASCII used in AIVDM payloads."""
    if len(bits) % 6:
        bits = bits + [0] * (6 - len(bits) % 6)
    chars = []
    for i in range(0, len(bits), 6):
        v = 0
        for b in bits[i:i + 6]:
            v = (v << 1) | b
        v += 48
        if v > 87:
            v += 8
        chars.append(chr(v))
    return "".join(chars)


def _sixbit_ascii_to_bits(payload: str) -> list[int]:
    bits: list[int] = []
    for ch in payload:
        v = ord(ch) - 48
        if v > 40:
            v -= 8
        if not 0 <= v < 64:
            raise ValueError(f"invalid 6-bit ASCII character {ch!r}")
        for i in range(5, -1, -1):
            bits.append((v >> i) & 1)
    return bits


def _nmea_checksum(body: str) -> int:
    cs = 0
    for ch in body:
        cs ^= ord(ch)
    return cs


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------

_LATLON_SCALE = 600_000.0  # 1/10000 arc-minute, per ITU-R M.1371


def _encode_position_bits(msg: AISMessage) -> list[int]:
    w = _BitWriter()
    w.write(1, 6)                       # message type 1
    w.write(0, 2)                       # repeat indicator
    w.write(msg.mmsi, 30)
    w.write(int(msg.status), 4)
    w.write(128, 8)                     # rate of turn: not available
    sog = min(int(round(msg.sog * 10.0)), 1022)
    w.write(max(sog, 0), 10)
    w.write(1, 1)                       # position accuracy: high
    w.write(int(round(msg.lon * _LATLON_SCALE)), 28)
    w.write(int(round(msg.lat * _LATLON_SCALE)), 27)
    w.write(int(round(msg.cog * 10.0)) % 3600, 12)
    heading = 511 if msg.heading is None else int(msg.heading) % 360
    w.write(heading, 9)
    w.write(int(msg.t) % 60, 6)         # UTC second
    w.write(0, 2)                       # maneuver indicator
    w.write(0, 3)                       # spare
    w.write(0, 1)                       # RAIM
    w.write(0, 19)                      # radio status
    return w.bits()


def _encode_static_bits(rep: StaticReport) -> list[int]:
    w = _BitWriter()
    w.write(5, 6)                       # message type 5
    w.write(0, 2)
    w.write(rep.mmsi, 30)
    w.write(0, 2)                       # AIS version
    w.write(0, 30)                      # IMO number (unused)
    w.write_text("", 7)                 # call sign
    w.write_text(rep.name, 20)
    w.write(rep.ship_type, 8)
    w.write(min(rep.to_bow, 511), 9)
    w.write(min(rep.to_stern, 511), 9)
    w.write(min(rep.to_port, 63), 6)
    w.write(min(rep.to_starboard, 63), 6)
    w.write(int(round(rep.draught * 10.0)) & 0xFF, 8)
    return w.bits()


def encode_nmea(msg: AISMessage | StaticReport, channel: str = "A") -> str:
    """Encode a message as a single ``!AIVDM`` NMEA sentence."""
    if isinstance(msg, AISMessage):
        bits = _encode_position_bits(msg)
    elif isinstance(msg, StaticReport):
        bits = _encode_static_bits(msg)
    else:
        raise TypeError(f"cannot encode {type(msg).__name__}")
    payload = _bits_to_sixbit_ascii(bits)
    body = f"AIVDM,1,1,,{channel},{payload},0"
    return f"!{body}*{_nmea_checksum(body):02X}"


# --------------------------------------------------------------------------
# Decoding
# --------------------------------------------------------------------------

def decode_nmea(sentence: str, t: float = 0.0) -> AISMessage | StaticReport:
    """Decode an ``!AIVDM`` sentence produced by :func:`encode_nmea`.

    ``t`` supplies the receiver timestamp (the payload only carries the UTC
    second, which is validated against ``t`` when decoding position reports).
    Raises :class:`ValueError` on framing, checksum or payload errors.
    """
    sentence = sentence.strip()
    if not sentence.startswith("!"):
        raise ValueError("NMEA sentence must start with '!'")
    try:
        body, checksum_text = sentence[1:].rsplit("*", 1)
    except ValueError as exc:
        raise ValueError("NMEA sentence missing checksum") from exc
    if _nmea_checksum(body) != int(checksum_text, 16):
        raise ValueError("NMEA checksum mismatch")
    fields = body.split(",")
    if len(fields) != 7 or fields[0] != "AIVDM":
        raise ValueError(f"not an AIVDM sentence: {sentence!r}")
    payload = fields[5]

    r = _BitReader(_sixbit_ascii_to_bits(payload))
    msg_type = r.read(6)
    if msg_type == 1:
        return _decode_position(r, t)
    if msg_type == 5:
        return _decode_static(r, t)
    raise ValueError(f"unsupported AIS message type {msg_type}")


def _decode_position(r: _BitReader, t: float) -> AISMessage:
    r.read(2)                           # repeat
    mmsi = r.read(30)
    status = NavigationStatus(r.read(4))
    r.read(8)                           # rate of turn
    sog = r.read(10) / 10.0
    r.read(1)                           # accuracy
    lon = r.read(28, signed=True) / _LATLON_SCALE
    lat = r.read(27, signed=True) / _LATLON_SCALE
    cog = r.read(12) / 10.0
    heading_raw = r.read(9)
    heading = None if heading_raw == 511 else heading_raw
    r.read(6)                           # UTC second
    return AISMessage(mmsi=mmsi, t=t, lat=lat, lon=lon, sog=sog, cog=cog,
                      heading=heading, status=status)


def _decode_static(r: _BitReader, t: float) -> StaticReport:
    r.read(2)
    mmsi = r.read(30)
    r.read(2)                           # AIS version
    r.read(30)                          # IMO
    r.read_text(7)                      # call sign
    name = r.read_text(20)
    ship_type = r.read(8)
    to_bow = r.read(9)
    to_stern = r.read(9)
    to_port = r.read(6)
    to_starboard = r.read(6)
    draught = r.read(8) / 10.0
    return StaticReport(mmsi=mmsi, t=t, name=name, ship_type=ship_type,
                        to_bow=to_bow, to_stern=to_stern, to_port=to_port,
                        to_starboard=to_starboard, draught=draught)
