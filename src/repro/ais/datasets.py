"""Experiment dataset builders (Tables 1-2, Figure 6) with disk caching.

Each builder maps a paper dataset onto its synthetic equivalent:

* :func:`table1_dataset` — the 24-hour European-area AIS stream of Section
  6.1, segmented into fixed tensors and split 50/25/25.
* :func:`proximity_scenario` — the synthetic Aegean vessel-proximity dataset
  of Section 6.2 ([2]: 213 vessels, 237 proximity events), built from
  deliberately converging vessel pairs plus background traffic, with dense
  ground truth and labelled events.
* :func:`scalability_fleet_config` — the global stream configuration used
  for the Figure 6 run, with vessel count scaled to the host.

Builders cache derived tensors under ``.repro_cache/`` keyed by a hash of
their parameters, because dataset generation is the slowest part of the
benchmark suite.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ais.fleet import FleetConfig, FleetEngine, MessageBatch
from repro.ais.ports import Port
from repro.ais.preprocessing import (
    SegmentDataset,
    build_segments,
    train_val_test_split,
)
from repro.ais.routes import Route
from repro.ais.simulator import (
    ChannelModel,
    ScenarioSimulator,
    SimulationResult,
    VesselAgent,
)
from repro.ais.vessel import VesselType, random_statics
from repro.geo.bbox import AEGEAN_BBOX, PAPER_EVAL_BBOX, BoundingBox
from repro.geo.constants import KNOTS_TO_MPS
from repro.geo.geodesy import destination_point, haversine_m

#: Default cache directory (repo-local, ignored by packaging).
CACHE_DIR = Path(".repro_cache")


def _cache_key(name: str, params: dict) -> Path:
    digest = hashlib.sha256(
        json.dumps(params, sort_keys=True).encode()).hexdigest()[:16]
    return CACHE_DIR / f"{name}-{digest}.npz"


# ---------------------------------------------------------------------------
# Table 1: the 24-hour European stream
# ---------------------------------------------------------------------------

def table1_stream(n_vessels: int = 400, duration_s: float = 24 * 3600.0,
                  seed: int = 7, bbox: BoundingBox = PAPER_EVAL_BBOX
                  ) -> MessageBatch:
    """Generate the raw (already channel-degraded) Table 1 message stream."""
    config = FleetConfig(n_vessels=n_vessels, duration_s=duration_s,
                         tick_s=30.0, seed=seed, bbox=bbox,
                         satellite_fraction=0.25, coverage=0.94)
    return FleetEngine(config).run_collect()


def table1_dataset(n_vessels: int = 400, duration_s: float = 24 * 3600.0,
                   seed: int = 7, cache: bool = True
                   ) -> tuple[SegmentDataset, SegmentDataset, SegmentDataset]:
    """Train/val/test segment tensors for the S-VRF evaluation (Table 1)."""
    params = {"n_vessels": n_vessels, "duration_s": duration_s, "seed": seed,
              "v": 2}
    path = _cache_key("table1", params)
    if cache and path.exists():
        data = np.load(path)
        full = SegmentDataset(x=data["x"], y=data["y"],
                              anchor=data["anchor"], mmsi=data["mmsi"])
    else:
        batch = table1_stream(n_vessels=n_vessels, duration_s=duration_s,
                              seed=seed)
        full = build_segments(batch)
        if cache:
            CACHE_DIR.mkdir(exist_ok=True)
            np.savez_compressed(path, x=full.x, y=full.y,
                                anchor=full.anchor, mmsi=full.mmsi)
    return train_val_test_split(full, seed=seed)


# ---------------------------------------------------------------------------
# Table 2: the Aegean proximity-event scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProximityEvent:
    """A ground-truth close-proximity episode between two vessels."""

    mmsi_a: int
    mmsi_b: int
    t_start: float       #: first instant within the proximity threshold
    t_closest: float     #: instant of minimum separation
    min_distance_m: float

    @property
    def pair(self) -> tuple[int, int]:
        return tuple(sorted((self.mmsi_a, self.mmsi_b)))


@dataclass
class ProximityScenario:
    """The full Table 2 evaluation scenario."""

    result: SimulationResult
    events: list[ProximityEvent]
    proximity_threshold_m: float
    duration_s: float

    @property
    def n_vessels(self) -> int:
        return len(self.result.truth)

    @property
    def n_messages(self) -> int:
        return len(self.result.messages)

    def events_with_lead_under(self, lead_s: float) -> list[ProximityEvent]:
        """Events whose closest approach happens within ``lead_s`` seconds of
        the *last AIS message* either vessel sent before the approach —
        the paper's "come into close proximity in less than N minutes"
        sub-dataset rule."""
        out = []
        by_mmsi: dict[int, list[float]] = {}
        for m in self.result.messages:
            by_mmsi.setdefault(m.mmsi, []).append(m.t)
        for ev in self.events:
            lead = None
            for mmsi in (ev.mmsi_a, ev.mmsi_b):
                times = [t for t in by_mmsi.get(mmsi, []) if t < ev.t_closest]
                if times:
                    cand = ev.t_closest - max(times)
                    lead = cand if lead is None else min(lead, cand)
            if lead is not None and lead < lead_s:
                out.append(ev)
        return out


def _extract_events(result: SimulationResult, threshold_m: float,
                    dt_s: float) -> list[ProximityEvent]:
    """Scan dense ground truth for proximity episodes between all pairs."""
    mmsis = sorted(result.truth)
    # Build aligned time-indexed arrays per vessel.
    tracks = {}
    for mmsi in mmsis:
        tr = result.truth[mmsi]
        if tr:
            tracks[mmsi] = (np.array([p.t for p in tr]),
                            np.array([p.lat for p in tr]),
                            np.array([p.lon for p in tr]))
    events: list[ProximityEvent] = []
    for i, ma in enumerate(mmsis):
        if ma not in tracks:
            continue
        ta, lata, lona = tracks[ma]
        for mb in mmsis[i + 1:]:
            if mb not in tracks:
                continue
            tb, latb, lonb = tracks[mb]
            t0, t1 = max(ta[0], tb[0]), min(ta[-1], tb[-1])
            if t1 <= t0:
                continue
            grid = np.arange(t0, t1, dt_s)
            if grid.size == 0:
                continue
            la = np.interp(grid, ta, lata)
            lo = np.interp(grid, ta, lona)
            lb = np.interp(grid, tb, latb)
            lob = np.interp(grid, tb, lonb)
            d = haversine_m(la, lo, lb, lob)
            close = d < threshold_m
            if not np.any(close):
                continue
            # Split contiguous runs of closeness into distinct events.
            idx = np.flatnonzero(close)
            run_starts = [idx[0]]
            for a, b in zip(idx, idx[1:]):
                if b != a + 1:
                    run_starts.append(b)
            run_ends = [a for a, b in zip(idx, idx[1:]) if b != a + 1] + [idx[-1]]
            for s, e in zip(run_starts, run_ends):
                seg = slice(s, e + 1)
                k = s + int(np.argmin(d[seg]))
                events.append(ProximityEvent(
                    mmsi_a=ma, mmsi_b=mb, t_start=float(grid[s]),
                    t_closest=float(grid[k]),
                    min_distance_m=float(d[k])))
    return events


def _arc_approach_waypoints(aim: tuple[float, float], final_course: float,
                            speed_mps: float, approach_s: float,
                            turn_rate_deg_min: float,
                            step_s: float = 120.0) -> list[tuple[float, float]]:
    """Waypoints of a constant-curvature arc ending at ``aim`` with
    ``final_course``, traced backwards for ``approach_s`` seconds.

    Real converging vessels rarely hold a perfectly straight collision
    course: they approach on gently curving paths (traffic lanes, coastal
    contours, gradual course corrections). Sustained curvature is exactly
    what instantaneous-course dead reckoning misses and what a sequence
    model can learn to extrapolate — the behavioural contrast Table 2
    measures.
    """
    waypoints = [aim]
    lat, lon = aim
    tau = 0.0
    while tau < approach_s:
        step = min(step_s, approach_s - tau)
        heading_at_tau = final_course - turn_rate_deg_min * (tau / 60.0)
        lat, lon = destination_point(lat, lon,
                                     (heading_at_tau + 180.0) % 360.0,
                                     speed_mps * step)
        waypoints.append((lat, lon))
        tau += step
    waypoints.reverse()
    return waypoints


def _converging_pair(rng: random.Random, mmsi_a: int, mmsi_b: int,
                     meet_t: float, miss_distance_m: float,
                     max_turn_rate_deg_min: float = 1.5
                     ) -> tuple[VesselAgent, VesselAgent]:
    """Two vessels arranged to pass within ``miss_distance_m`` at ``meet_t``.

    Each vessel approaches the meeting point on a constant-curvature arc
    (signed turn rate up to ``max_turn_rate_deg_min``); a zero rate is a
    straight approach, the common case, while stronger curvature creates
    the encounters that defeat linear extrapolation at long leads.
    """
    lat_m, lon_m = AEGEAN_BBOX.sample(rng)
    # Keep meeting points away from the box edge.
    lat_m = min(max(lat_m, AEGEAN_BBOX.lat_min + 0.5), AEGEAN_BBOX.lat_max - 0.5)
    lon_m = min(max(lon_m, AEGEAN_BBOX.lon_min + 0.5), AEGEAN_BBOX.lon_max - 0.5)

    theta = rng.uniform(0.0, 360.0)
    sep = rng.uniform(60.0, 180.0)
    agents = []
    for k, (mmsi, brg_from_meet) in enumerate(
            [(mmsi_a, theta), (mmsi_b, (theta + sep) % 360.0)]):
        statics = random_statics(rng, mmsi,
                                 vessel_type=rng.choice([VesselType.CARGO,
                                                         VesselType.PASSENGER,
                                                         VesselType.TANKER]))
        speed_mps = statics.cruise_speed_kn * KNOTS_TO_MPS
        # Offset the actual aim point so minimum separation ~ miss distance.
        aim = destination_point(lat_m, lon_m, (brg_from_meet + 90.0) % 360.0,
                                (miss_distance_m / 2.0) * (1 if k == 0 else -1))
        final_course = (brg_from_meet + 180.0) % 360.0
        turn_rate = rng.uniform(-max_turn_rate_deg_min,
                                max_turn_rate_deg_min)
        waypoints = _arc_approach_waypoints(aim, final_course, speed_mps,
                                            approach_s=meet_t,
                                            turn_rate_deg_min=turn_rate)
        beyond = destination_point(aim[0], aim[1], final_course,
                                   speed_mps * 1_800.0)
        waypoints.append(beyond)

        origin = Port(f"virtual-{mmsi}-o", waypoints[0][0], waypoints[0][1],
                      "aegean")
        dest = Port(f"virtual-{mmsi}-d", beyond[0], beyond[1], "aegean")
        route = Route(origin=origin, destination=dest,
                      waypoints=tuple(waypoints))
        agents.append(VesselAgent(statics=statics, route=route,
                                  start_time=0.0))
    return agents[0], agents[1]


def _background_agent(rng: random.Random, mmsi: int) -> VesselAgent:
    """A vessel on a straight transit that should not meet anyone."""
    statics = random_statics(rng, mmsi)
    lat, lon = AEGEAN_BBOX.sample(rng)
    brg = rng.uniform(0.0, 360.0)
    speed_mps = statics.cruise_speed_kn * KNOTS_TO_MPS
    end = destination_point(lat, lon, brg, speed_mps * 7_200.0)
    route = Route(origin=Port(f"bg-{mmsi}-o", lat, lon, "aegean"),
                  destination=Port(f"bg-{mmsi}-d", end[0], end[1], "aegean"),
                  waypoints=((lat, lon), end))
    return VesselAgent(statics=statics, route=route, start_time=0.0)


def proximity_scenario(n_event_pairs: int = 80, n_near_miss_pairs: int = 18,
                       n_background: int = 17, duration_s: float = 7_200.0,
                       proximity_threshold_m: float = 500.0,
                       max_turn_rate_deg_min: float = 1.5, seed: int = 11
                       ) -> ProximityScenario:
    """Build the Table 2 evaluation scenario.

    ``n_event_pairs`` pairs are steered to pass inside the proximity
    threshold; ``n_near_miss_pairs`` pass just outside it (the false-positive
    bait); ``n_background`` vessels transit without encounters. Events are
    extracted from the dense ground truth afterwards, so the labels are
    exact regardless of how the stochastic kinematics play out.
    """
    rng = random.Random(seed)
    agents: list[VesselAgent] = []
    mmsi = 240_000_000
    for i in range(n_event_pairs):
        # Encounters happen only after every vessel has a full forecasting
        # history window (the paper's vessels stream continuously).
        meet_t = rng.uniform(2_400.0, duration_s - 900.0)
        a, b = _converging_pair(rng, mmsi, mmsi + 1, meet_t,
                                miss_distance_m=rng.uniform(50.0, 350.0),
                                max_turn_rate_deg_min=max_turn_rate_deg_min)
        agents.extend([a, b])
        mmsi += 2
    for i in range(n_near_miss_pairs):
        meet_t = rng.uniform(2_400.0, duration_s - 900.0)
        a, b = _converging_pair(rng, mmsi, mmsi + 1, meet_t,
                                miss_distance_m=rng.uniform(
                                    proximity_threshold_m * 1.3,
                                    proximity_threshold_m * 3.0),
                                max_turn_rate_deg_min=max_turn_rate_deg_min)
        agents.extend([a, b])
        mmsi += 2
    for _ in range(n_background):
        agents.append(_background_agent(rng, mmsi))
        mmsi += 1

    channel = ChannelModel(coverage=0.97, jitter_s=1.0, duplicate_prob=0.01)
    sim = ScenarioSimulator(agents, channel=channel, dt_s=10.0, seed=seed)
    result = sim.run(duration_s)
    events = _extract_events(result, proximity_threshold_m, dt_s=10.0)
    return ProximityScenario(result=result, events=events,
                             proximity_threshold_m=proximity_threshold_m,
                             duration_s=duration_s)


# ---------------------------------------------------------------------------
# Figure 6: the global scalability stream
# ---------------------------------------------------------------------------

def scalability_fleet_config(n_vessels: int = 20_000,
                             duration_s: float = 2 * 3600.0,
                             seed: int = 3) -> FleetConfig:
    """Global-fleet stream for the scalability run.

    Vessels first appear over the run's opening phase (``start_window_s``
    covers 30% of it), reproducing the paper's growing distinct-MMSI count
    followed by a long stable state; the paper's
    170K vessels / 72 h are scaled to the host (documented in
    EXPERIMENTS.md).
    """
    return FleetConfig(n_vessels=n_vessels, duration_s=duration_s,
                       tick_s=30.0, seed=seed, bbox=None,
                       start_window_s=duration_s * 0.3,
                       satellite_fraction=0.35, coverage=0.95)
