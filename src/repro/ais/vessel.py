"""Vessel static data with realistic per-class distributions.

Both forecasting models consume vessel-specific features (type, dimensions,
draught, DWT — Section 4 of the paper); the simulator also derives cruise
speeds and manoeuvring behaviour from the vessel class.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.ais.message import StaticReport


class VesselType(enum.Enum):
    """Coarse vessel classes with their AIS ship-type code range."""

    CARGO = 70
    TANKER = 80
    PASSENGER = 60
    FISHING = 30
    TUG = 52
    HIGH_SPEED_CRAFT = 40
    PLEASURE = 37

    @property
    def ais_code(self) -> int:
        return self.value


#: Per-class (cruise speed knots (mean, sd), length m (mean, sd),
#: draught m (mean, sd), max turn rate deg/s) parameters.
_CLASS_PROFILES: dict[VesselType, tuple[tuple[float, float],
                                        tuple[float, float],
                                        tuple[float, float], float]] = {
    VesselType.CARGO: ((13.0, 2.0), (190.0, 60.0), (10.0, 2.5), 0.35),
    VesselType.TANKER: ((11.5, 1.5), (230.0, 70.0), (12.5, 3.0), 0.25),
    VesselType.PASSENGER: ((17.0, 3.0), (140.0, 60.0), (6.0, 1.5), 0.6),
    VesselType.FISHING: ((8.0, 2.0), (28.0, 10.0), (4.0, 1.0), 1.5),
    VesselType.TUG: ((9.0, 2.0), (30.0, 8.0), (4.5, 1.0), 1.2),
    VesselType.HIGH_SPEED_CRAFT: ((28.0, 5.0), (60.0, 20.0), (2.8, 0.8), 1.0),
    VesselType.PLEASURE: ((10.0, 4.0), (18.0, 8.0), (2.2, 0.6), 2.0),
}

#: Global fleet mix used when sampling without an explicit type (roughly the
#: AIS traffic composition MarineTraffic reports: mostly cargo/tanker).
_FLEET_MIX: tuple[tuple[VesselType, float], ...] = (
    (VesselType.CARGO, 0.38),
    (VesselType.TANKER, 0.22),
    (VesselType.FISHING, 0.16),
    (VesselType.PASSENGER, 0.10),
    (VesselType.TUG, 0.06),
    (VesselType.HIGH_SPEED_CRAFT, 0.04),
    (VesselType.PLEASURE, 0.04),
)

_NAME_PREFIXES = ("SEA", "OCEAN", "NORDIC", "AEGEAN", "ATLANTIC", "BALTIC",
                  "IONIAN", "PACIFIC", "POLAR", "DELTA", "ASTRA", "MERIDIAN")
_NAME_SUFFIXES = ("SPIRIT", "TRADER", "PIONEER", "STAR", "WAVE", "HORIZON",
                  "GLORY", "EXPRESS", "CARRIER", "VOYAGER", "DAWN", "CREST")


@dataclass(frozen=True)
class VesselStatics:
    """Static vessel attributes, the per-actor cached state of Section 3."""

    mmsi: int
    name: str
    vessel_type: VesselType
    length_m: float
    beam_m: float
    draught_m: float
    dwt: float           #: deadweight tonnage
    cruise_speed_kn: float
    max_turn_rate_deg_s: float

    def to_static_report(self, t: float = 0.0) -> StaticReport:
        """The AIS type-5 report a transponder would broadcast."""
        to_bow = int(self.length_m * 0.5)
        to_stern = int(self.length_m - to_bow)
        to_port = int(self.beam_m * 0.5)
        to_starboard = int(max(self.beam_m - to_port, 0))
        return StaticReport(mmsi=self.mmsi, t=t, name=self.name,
                            ship_type=self.vessel_type.ais_code,
                            to_bow=to_bow, to_stern=to_stern,
                            to_port=to_port, to_starboard=to_starboard,
                            draught=round(min(self.draught_m, 25.5), 1))

    def feature_vector(self) -> list[float]:
        """Numeric features consumed by the forecasting models."""
        return [float(self.vessel_type.ais_code), self.length_m, self.beam_m,
                self.draught_m, self.dwt, self.cruise_speed_kn]


def _sample_type(rng: random.Random) -> VesselType:
    u = rng.random()
    acc = 0.0
    for vtype, p in _FLEET_MIX:
        acc += p
        if u <= acc:
            return vtype
    return _FLEET_MIX[-1][0]


def random_statics(rng: random.Random, mmsi: int,
                   vessel_type: VesselType | None = None) -> VesselStatics:
    """Sample plausible statics for one vessel.

    MMSIs are caller-assigned (they partition the actor space, so collisions
    must be impossible by construction, not by luck).
    """
    vtype = vessel_type or _sample_type(rng)
    (spd_mu, spd_sd), (len_mu, len_sd), (drg_mu, drg_sd), turn = _CLASS_PROFILES[vtype]
    length = max(10.0, rng.gauss(len_mu, len_sd))
    beam = max(3.0, length / rng.uniform(5.5, 7.5))
    draught = max(1.0, rng.gauss(drg_mu, drg_sd))
    # Crude DWT from hull volume; only used as a model feature.
    dwt = max(50.0, 0.55 * length * beam * draught)
    cruise = max(4.0, rng.gauss(spd_mu, spd_sd))
    name = (f"{rng.choice(_NAME_PREFIXES)} {rng.choice(_NAME_SUFFIXES)} "
            f"{rng.randint(1, 99)}")
    return VesselStatics(mmsi=mmsi, name=name, vessel_type=vtype,
                         length_m=length, beam_m=beam, draught_m=draught,
                         dwt=dwt, cruise_speed_kn=cruise,
                         max_turn_rate_deg_s=turn)
