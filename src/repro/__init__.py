"""Reproduction of *A Scalable System for Maritime Route and Event Forecasting*
(EDBT 2024).

The package is organised bottom-up:

``repro.geo``
    WGS84 geodesy primitives (distances, bearings, destination points).
``repro.hexgrid``
    A hierarchical hexagonal spatial index playing the role of Uber H3.
``repro.ais``
    AIS message model, synthetic global fleet simulator and dataset builders.
``repro.streams``
    An in-memory partitioned log broker playing the role of Apache Kafka.
``repro.kvstore``
    An in-memory key-value store playing the role of Redis.
``repro.actors``
    An actor runtime (mailboxes, supervision, routing) playing the role of Akka.
``repro.ml``
    A from-scratch numpy neural-network stack (LSTM/BiLSTM with manual BPTT).
``repro.models``
    The paper's forecasting models: the linear kinematic baseline, the
    short-term BiLSTM model (S-VRF) and the EnvClus*-style long-term model
    (L-VRF) with Patterns-of-Life statistics.
``repro.events``
    Maritime event functions: proximity detection, AIS switch-off detection,
    collision forecasting and vessel traffic flow forecasting (VTFF).
``repro.platform``
    The integrated digital-twin platform: vessel / cell / collision / writer
    actors, stream ingestion and the middleware API.
``repro.evaluation``
    Metrics and the drivers that regenerate Table 1, Table 2 and Figure 6.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
