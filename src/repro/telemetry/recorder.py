"""Per-message processing-time metrics (the Figure 6 series).

Figure 6 of the paper plots *average processing time against the number of
distinct vessels (actors) active in the system*, smoothed with a moving
window of 100 actors. :class:`MetricsRecorder` captures exactly the samples
that plot needs: for every processed message, the actor count at that moment
and the wall time the delivery took (including any actor spawn it
triggered, which is what produces the paper's initialisation spike).

Samples are recorded by whichever dispatcher runs the delivery — the
deterministic loop and the threaded worker pool both feed the same
recorder, so a short lock keeps the two sample arrays in step when worker
threads record concurrently.

Historically this lived in ``repro.actors.metrics``; that module remains a
re-export shim. The general-purpose registry (counters/gauges/histograms)
lives in :mod:`repro.telemetry.registry` — this recorder stays separate
because Figure 6 needs the *raw* sample pairs, not summaries.
"""

from __future__ import annotations

import threading
from array import array

import numpy as np


class MetricsRecorder:
    """Compact append-only store of (actor_count, processing_seconds)."""

    def __init__(self) -> None:
        self._actor_counts = array("q")
        self._durations = array("d")
        self._lock = threading.Lock()

    def record(self, actor_count: int, duration_s: float) -> None:
        with self._lock:
            self._actor_counts.append(actor_count)
            self._durations.append(duration_s)

    def __len__(self) -> int:
        with self._lock:
            return len(self._durations)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(actor_counts, durations_s)`` as numpy arrays."""
        with self._lock:
            counts = np.frombuffer(self._actor_counts, dtype=np.int64).copy()
            durations = np.frombuffer(self._durations,
                                      dtype=np.float64).copy()
        return counts, durations

    def total_time_s(self) -> float:
        with self._lock:
            return float(sum(self._durations))

    def snapshot(self) -> dict:
        """Summary statistics for the writer/telemetry path.

        Machine-readable (plain floats/ints only): sample count, total and
        mean processing seconds, latency percentiles in milliseconds, and
        the peak actor count observed — the per-node payload aggregated by
        the distributed Figure 6 driver.
        """
        counts, durations = self.as_arrays()
        if durations.size == 0:
            return {"samples": 0, "total_s": 0.0, "mean_ms": 0.0,
                    "p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
                    "peak_actor_count": 0}
        ms = durations * 1e3
        return {
            "samples": int(durations.size),
            "total_s": float(durations.sum()),
            "mean_ms": float(ms.mean()),
            "p50_ms": float(np.percentile(ms, 50)),
            "p99_ms": float(np.percentile(ms, 99)),
            "max_ms": float(ms.max()),
            "peak_actor_count": int(counts.max()),
        }

    def curve_by_actor_count(self, window_actors: int = 100
                             ) -> tuple[np.ndarray, np.ndarray]:
        """Figure 6's series: mean processing time per actor-count bucket,
        smoothed over a ``window_actors``-wide moving window.

        Samples are grouped by the actor count at processing time; bucket
        means are then smoothed with a centred moving average spanning
        ``window_actors`` distinct actor counts.
        """
        counts, durations = self.as_arrays()
        if counts.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        uniq, inverse = np.unique(counts, return_inverse=True)
        sums = np.bincount(inverse, weights=durations)
        ns = np.bincount(inverse)
        means = sums / ns
        smoothed = MovingAverage.smooth(means, window=max(1, window_actors))
        return uniq, smoothed


class MovingAverage:
    """Centred moving-average smoothing used by the Figure 6 plot."""

    @staticmethod
    def smooth(values: np.ndarray, window: int) -> np.ndarray:
        if window <= 1 or values.size == 0:
            return values.astype(float, copy=True)
        window = min(window, values.size)
        kernel = np.ones(window) / window
        padded = np.concatenate([
            np.full(window // 2, values[0]),
            values.astype(float),
            np.full(window - 1 - window // 2, values[-1])])
        return np.convolve(padded, kernel, mode="valid")
