"""Cross-node trace propagation for the message pipeline.

A *trace* follows one sampled AIS position through the platform: the
ingestion service assigns a ``trace_id`` derived from the broker record's
``(partition, offset)`` identity, and the id rides every message the
report causes — on :class:`~repro.actors.actor.Envelope` inside a node and
on :class:`~repro.cluster.protocol.WireEnvelope` across nodes (the wire
codec carries it on both the struct fast path and the pickle fallback).

Propagation is implicit: the runtime keeps the *current* trace in a
thread-local while a traced message is being processed, and
``ActorRef.tell`` stamps outgoing envelopes from it — so actor code (the
vessel fan-out, the cell alert paths) needs no signature changes.

Each node appends *hops* to its :class:`TraceLog`; hop timestamps come
from the node's injectable clock, so under ``repro.sim``'s virtual clock
traces are byte-for-byte deterministic per seed.
:func:`merge_traces` stitches per-node snapshots into cluster-wide hop
sequences, and :func:`complete_traces` selects those that tell the full
ingest -> forecast -> event story across at least two nodes.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

#: Stage recorded by the ingestion service when it assigns a trace.
STAGE_INGEST = "ingest"

_current = threading.local()


def current_trace() -> int | None:
    """The trace id of the message being processed on this thread."""
    return getattr(_current, "trace_id", None)


def set_current_trace(trace_id: int | None) -> None:
    _current.trace_id = trace_id


def clear_current_trace() -> None:
    _current.trace_id = None


class TraceLog:
    """One node's bounded store of trace hops.

    A hop records where (``node``), what (``stage`` — the actor entity
    that processed the message, or ``"ingest"``), and when (``t`` from the
    injectable clock), plus the queue and processing delay the runtime
    measured. ``seq`` is a per-node monotonic tiebreaker so merged hop
    orders stay stable when virtual time stands still.
    """

    def __init__(self, node_id: str = "local",
                 clock: Callable[[], float] = time.monotonic,
                 max_traces: int = 256, max_hops_per_trace: int = 64) -> None:
        self.node_id = node_id
        self.clock = clock
        self.max_traces = max_traces
        self.max_hops_per_trace = max_hops_per_trace
        self._lock = threading.Lock()
        self._traces: "OrderedDict[int, list[dict]]" = OrderedDict()
        self.hops_recorded = 0
        self.hops_dropped = 0
        self._seq = 0

    def record(self, trace_id: int, stage: str,
               queue_s: float | None = None,
               proc_s: float | None = None) -> None:
        hop = {"stage": stage, "node": self.node_id, "t": self.clock()}
        if queue_s is not None:
            hop["queue_s"] = queue_s
        if proc_s is not None:
            hop["proc_s"] = proc_s
        with self._lock:
            hops = self._traces.get(trace_id)
            if hops is None:
                if len(self._traces) >= self.max_traces:
                    # Evict the oldest trace: recent traces diagnose the
                    # current state; the registry keeps the aggregates.
                    self._traces.popitem(last=False)
                hops = self._traces[trace_id] = []
            if len(hops) >= self.max_hops_per_trace:
                self.hops_dropped += 1
                return
            hop["seq"] = self._seq
            self._seq += 1
            hops.append(hop)
            self.hops_recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def snapshot(self) -> dict:
        """``{trace_id(str): [hop, ...]}`` — JSON-able (string keys, plain
        dict hops), hop lists copied."""
        with self._lock:
            return {str(trace_id): [dict(hop) for hop in hops]
                    for trace_id, hops in self._traces.items()}


def merge_traces(per_node: dict[str, dict]) -> dict[int, list[dict]]:
    """Stitch per-node :meth:`TraceLog.snapshot` payloads into cluster-wide
    traces.

    Hops of one trace are ordered by ``(t, stage_rank, node, seq)``:
    timestamps first (they share one cluster clock in deterministic runs),
    then pipeline stage order so simultaneous virtual-time hops still read
    ingest -> vessel -> cells -> writer.
    """
    stage_rank = {STAGE_INGEST: 0, "vessel": 1, "cell": 2, "collision": 2,
                  "vtff": 3, "writer": 4}
    merged: dict[int, list[dict]] = {}
    for node_id in sorted(per_node):
        for trace_key, hops in per_node[node_id].items():
            trace_id = int(trace_key)
            merged.setdefault(trace_id, []).extend(hops)
    for hops in merged.values():
        hops.sort(key=lambda hop: (hop["t"],
                                   stage_rank.get(hop["stage"], 9),
                                   hop["node"], hop.get("seq", 0)))
    return merged


def is_complete(hops: list[dict], min_nodes: int = 2) -> bool:
    """Whether a merged hop list tells the whole pipeline story: an ingest
    hop, a vessel (forecast) hop and a cell/collision (event) hop, spread
    over at least ``min_nodes`` nodes, with non-decreasing timestamps."""
    stages = {hop["stage"] for hop in hops}
    if STAGE_INGEST not in stages or "vessel" not in stages:
        return False
    if not stages & {"cell", "collision"}:
        return False
    if len({hop["node"] for hop in hops}) < min_nodes:
        return False
    times = [hop["t"] for hop in hops]
    return all(a <= b for a, b in zip(times, times[1:]))


def complete_traces(merged: dict[int, list[dict]],
                    min_nodes: int = 2) -> dict[int, list[dict]]:
    """The subset of :func:`merge_traces` output satisfying
    :func:`is_complete`."""
    return {trace_id: hops for trace_id, hops in merged.items()
            if is_complete(hops, min_nodes=min_nodes)}
