"""End-to-end telemetry: the metrics registry and trace propagation.

The package has three parts:

* :mod:`~repro.telemetry.registry` — process-wide counters, gauges and
  bounded-reservoir histograms with label support and JSON /
  Prometheus-style snapshots,
* :mod:`~repro.telemetry.trace` — the ``trace_id`` mechanism that follows
  one sampled AIS position ingest -> vessel actor -> forecast fan-out ->
  cell/collision actor -> writer across cluster nodes,
* :mod:`~repro.telemetry.recorder` — the Figure 6 per-message sample
  recorder (absorbed from ``repro.actors.metrics``, which re-exports it).

:class:`Telemetry` bundles one node's registry, trace log and clock, and
pre-resolves the hot actor-dispatch instruments so the dispatch loop pays
one dict lookup per batch, not per message. Everything timestamps through
the injectable ``clock`` — never wall time directly — so telemetry under
``repro.sim`` is deterministic per seed (enforced by the AST wall-clock
audit).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.telemetry.recorder import MetricsRecorder, MovingAverage
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import (
    STAGE_INGEST,
    TraceLog,
    clear_current_trace,
    complete_traces,
    current_trace,
    is_complete,
    merge_traces,
    set_current_trace,
)


class Telemetry:
    """One node's telemetry bundle: registry + trace log + clock."""

    def __init__(self, node_id: str = "local",
                 clock: Callable[[], float] = time.monotonic,
                 trace_sample_every: int = 64,
                 dispatch_sample_every: int = 8,
                 max_traces: int = 256,
                 reservoir_size: int = 512) -> None:
        if trace_sample_every < 1:
            raise ValueError("trace_sample_every must be >= 1")
        if dispatch_sample_every < 1:
            raise ValueError("dispatch_sample_every must be >= 1")
        self.node_id = node_id
        self.clock = clock
        self.trace_sample_every = trace_sample_every
        self.dispatch_sample_every = dispatch_sample_every
        self._batch_seq = 0
        self.registry = MetricsRegistry(reservoir_size=reservoir_size)
        self.traces = TraceLog(node_id, clock=clock, max_traces=max_traces)
        # Hot actor-dispatch instruments, resolved once.
        self.mailbox_depth = self.registry.histogram("actor_mailbox_depth")
        self.queue_delay = self.registry.histogram(
            "actor_queue_delay_seconds")
        self._entity_instruments: dict[str, tuple[Counter, Histogram]] = {}

    def sample_batch(self) -> bool:
        """Whether this mailbox batch gets depth/timing histograms.

        Every ``dispatch_sample_every``-th batch is sampled (message
        counters stay exact regardless) — with mailbox batches averaging
        a handful of messages, per-batch observation would otherwise cost
        a locked histogram update per message. The increment is
        unsynchronised: a lost update under threaded dispatch merely
        shifts the sampling phase, while deterministic mode (where the
        sim-determinism guarantee lives) is single-threaded.
        """
        self._batch_seq += 1
        return self._batch_seq % self.dispatch_sample_every == 0

    def entity_instruments(self, entity: str) -> tuple[Counter, Histogram]:
        """Per-entity ``(messages counter, processing-seconds histogram)``,
        cached so the dispatch loop resolves labels once per entity."""
        cached = self._entity_instruments.get(entity)
        if cached is None:
            cached = (
                self.registry.counter("actor_messages_total",
                                      {"entity": entity}),
                self.registry.histogram("actor_processing_seconds",
                                        {"entity": entity}),
            )
            self._entity_instruments[entity] = cached
        return cached

    def processing_ms_total(self) -> float:
        """Sampled actor processing time recorded so far across all entity
        types, in milliseconds — the busy-time signal of the cluster's
        :class:`~repro.cluster.protocol.LoadReport`. Histograms sample one
        batch in ``dispatch_sample_every``, so this is a proportional load
        measure, not an exact CPU total; load reports diff consecutive
        readings into per-window deltas."""
        total = 0.0
        for _counter, histogram in self._entity_instruments.values():
            total += histogram.sum
        return total * 1000.0

    def snapshot(self) -> dict:
        """This node's full telemetry state, JSON-able."""
        return {
            "node": self.node_id,
            "metrics": self.registry.snapshot(),
            "traces": self.traces.snapshot(),
        }


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "MovingAverage",
    "STAGE_INGEST",
    "Telemetry",
    "TraceLog",
    "clear_current_trace",
    "complete_traces",
    "current_trace",
    "is_complete",
    "merge_traces",
    "set_current_trace",
]
