"""The process-wide metrics registry: counters, gauges, histograms.

Instruments are identified by ``(name, labels)`` and created on first use;
repeated lookups return the same instrument, so hot paths resolve once and
hold the reference. Three snapshot-friendly properties shape the design:

* **Thread safety** — the registry map and every histogram carry their own
  lock; counter/gauge updates are a single locked assignment. Snapshots
  never observe a torn value.
* **Bounded memory** — histograms keep exact ``count``/``sum``/``min``/
  ``max`` plus a fixed-size reservoir for percentile estimates. Reservoir
  replacement uses Vitter's Algorithm R driven by a private deterministic
  generator seeded from the instrument identity, so a given observation
  sequence always yields the same reservoir — the property the sim layer's
  telemetry-determinism test pins.
* **Machine-readable output** — :meth:`MetricsRegistry.snapshot` returns a
  plain JSON-able dict (sorted keys);
  :meth:`MetricsRegistry.render_prometheus` renders the same data in
  Prometheus text exposition style for eyeballing or scraping.

No code here may read the ``time`` module: telemetry timestamps come from
the owner's injectable clock (see :mod:`repro.telemetry.trace`), which the
AST wall-clock audit in ``tests/cluster/test_virtual_clock.py`` enforces.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Sequence


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down — set directly or computed at
    snapshot time by a callback (``fn``), which costs the hot path
    nothing."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Histogram:
    """Exact count/sum/min/max plus a bounded reservoir of samples.

    Percentiles are estimated from the reservoir; with fewer observations
    than ``reservoir_size`` they are exact. Replacement is Algorithm R on
    a deterministic linear-congruential stream seeded from the instrument
    identity — identical observation sequences produce identical
    reservoirs (and therefore identical snapshots), which keeps telemetry
    reproducible under ``repro.sim``.
    """

    __slots__ = ("_lock", "_reservoir", "_size", "_rng_state",
                 "count", "sum", "min", "max")

    def __init__(self, seed: int = 0, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self._lock = threading.Lock()
        self._reservoir: list[float] = []
        self._size = reservoir_size
        # Any seed works; mix in a constant so seed=0 is not a fixpoint.
        self._rng_state = (seed ^ 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _next_rand(self, bound: int) -> int:
        # 64-bit LCG (Knuth MMIX constants): private, deterministic, and
        # decoupled from the global `random` module by construction.
        self._rng_state = (self._rng_state * 6364136223846793005
                           + 1442695040888963407) & ((1 << 64) - 1)
        return (self._rng_state >> 16) % bound

    def _observe_locked(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._size:
            self._reservoir.append(value)
        else:
            slot = self._next_rand(self.count)
            if slot < self._size:
                self._reservoir[slot] = value

    def observe(self, value: float) -> None:
        with self._lock:
            self._observe_locked(float(value))

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations under one lock acquisition — the
        actor dispatch loop flushes once per mailbox batch, not per
        message. Equivalent to ``observe`` called in order."""
        with self._lock:
            for value in values:
                self._observe_locked(float(value))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), linearly interpolated over the
        reservoir; 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            samples = sorted(self._reservoir)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        rank = (len(samples) - 1) * q / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def summary(self, percentiles: Sequence[float] = (50.0, 90.0, 99.0)
                ) -> dict:
        with self._lock:
            count = self.count
            total = self.sum
            lo = self.min
            hi = self.max
        out = {
            "count": count,
            "sum": total,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "mean": total / count if count else 0.0,
        }
        for q in percentiles:
            out[f"p{q:g}"] = self.percentile(q)
        return out


class MetricsRegistry:
    """Registry of named instruments with optional labels."""

    def __init__(self, reservoir_size: int = 512) -> None:
        self._lock = threading.Lock()
        self._reservoir_size = reservoir_size
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- instrument lookup ---------------------------------------------------------

    def counter(self, name: str, labels: dict[str, str] | None = None
                ) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            return instrument

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              fn: Callable[[], float] | None = None) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(fn=fn)
            elif fn is not None:
                instrument._fn = fn
            return instrument

    def histogram(self, name: str, labels: dict[str, str] | None = None
                  ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                digest = hashlib.blake2b(
                    repr(key).encode(), digest_size=8).digest()
                instrument = self._histograms[key] = Histogram(
                    seed=int.from_bytes(digest, "big"),
                    reservoir_size=self._reservoir_size)
            return instrument

    # -- snapshots -----------------------------------------------------------------

    def _items(self, table: dict) -> list[tuple[str, Any]]:
        with self._lock:
            entries = list(table.items())
        return sorted((_render_name(name, labels), instrument)
                      for (name, labels), instrument in entries)

    def snapshot(self) -> dict:
        """All instruments as one JSON-able dict (sorted keys)."""
        return {
            "counters": {key: instrument.value for key, instrument
                         in self._items(self._counters)},
            "gauges": {key: instrument.value for key, instrument
                       in self._items(self._gauges)},
            "histograms": {key: instrument.summary() for key, instrument
                           in self._items(self._histograms)},
        }

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of the current snapshot."""
        lines: list[str] = []
        for key, counter in self._items(self._counters):
            lines.append(f"{key} {counter.value:g}")
        for key, gauge in self._items(self._gauges):
            lines.append(f"{key} {gauge.value:g}")
        for key, histogram in self._items(self._histograms):
            name, sep, labels = key.partition("{")
            suffix = (sep + labels) if sep else ""
            summary = histogram.summary()
            lines.append(f"{name}_count{suffix} {summary['count']:g}")
            lines.append(f"{name}_sum{suffix} {summary['sum']:g}")
            for stat in ("p50", "p90", "p99"):
                lines.append(f"{name}_{stat}{suffix} {summary[stat]:g}")
        return "\n".join(lines) + ("\n" if lines else "")
