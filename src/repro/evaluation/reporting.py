"""Plain-text rendering of the reproduced tables and figure series.

Benchmarks print these so a run's output can be compared line by line with
the paper's tables.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figure6 import Figure6Result
from repro.evaluation.table1 import Table1Result
from repro.evaluation.table2 import Table2Result


def format_table1(result: Table1Result) -> str:
    """Render Table 1: ADE per prediction horizon."""
    lines = [
        "Table 1: S-VRF performance (ADE in metres per prediction horizon)",
        f"{'horizon':>10} {'Linear Kinematic':>18} {'S-VRF':>10} "
        f"{'Difference %':>13}",
    ]
    for h, lin, svrf, diff in zip(result.horizons_min, result.linear_ade_m,
                                  result.svrf_ade_m,
                                  result.difference_pct()):
        lines.append(f"{f't = {h}min':>10} {lin:>18.1f} {svrf:>10.1f} "
                     f"{diff:>+13.1f}")
    lines.append(f"{'Mean ADE':>10} {result.linear_mean_ade_m:>18.1f} "
                 f"{result.svrf_mean_ade_m:>10.1f} "
                 f"{result.mean_difference_pct:>+13.1f}")
    return "\n".join(lines)


def format_table2(result: Table2Result) -> str:
    """Render Table 2: collision forecasting evaluation."""
    lines = [
        "Table 2: Evaluation of vessel collision forecasting",
        f"{'Dataset':<15} {'Model':<17} {'Thr(min)':>8} {'Events':>7} "
        f"{'TP':>5} {'FP':>5} {'FN':>5} {'Prec':>6} {'Rec':>6} "
        f"{'F1':>6} {'Acc':>6}",
    ]
    for row in result.rows:
        c = row.counts
        lines.append(
            f"{row.dataset:<15} {row.model:<17} "
            f"{row.temporal_threshold_min:>8.0f} {row.total_events:>7} "
            f"{c.tp:>5} {c.fp:>5} {c.fn:>5} {c.precision:>6.2f} "
            f"{c.recall:>6.2f} {c.f1:>6.2f} {c.accuracy:>6.2f}")
    return "\n".join(lines)


def format_figure6(result: Figure6Result, n_points: int = 20) -> str:
    """Render the Figure 6 series as a downsampled text table plus an
    ASCII sparkline of processing time vs actor count."""
    counts = result.actor_counts
    times = result.avg_processing_time_s
    if counts.size == 0:
        return "Figure 6: no samples recorded"
    idx = np.linspace(0, counts.size - 1, min(n_points, counts.size))
    idx = np.unique(idx.astype(int))
    lines = [
        "Figure 6: average processing time vs number of vessel actors",
        f"  vessels tracked: {result.total_vessels}, messages: "
        f"{result.total_messages}, wall time: {result.wall_time_s:.1f}s, "
        f"throughput: {result.throughput_msgs_per_s:.0f} msg/s",
        f"  peak {result.peak_time_s * 1e3:.2f} ms at "
        f"{result.peak_actor_count} actors; plateau "
        f"{result.plateau_mean_s() * 1e3:.3f} ms",
        f"{'actors':>10} {'avg time (ms)':>14}",
    ]
    for i in idx:
        lines.append(f"{counts[i]:>10} {times[i] * 1e3:>14.3f}")
    lines.append("  " + sparkline(times))
    return "\n".join(lines)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """A one-line ASCII chart of a series."""
    if values.size == 0:
        return ""
    blocks = " .:-=+*#%@"
    idx = np.linspace(0, values.size - 1, min(width, values.size)).astype(int)
    sampled = values[idx]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    chars = [blocks[int((v - lo) / span * (len(blocks) - 1))]
             for v in sampled]
    return "".join(chars)
