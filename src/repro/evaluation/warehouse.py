"""Warehouse benchmark: compaction throughput + OLAP query latency.

``run_warehouse_bench`` synthesizes a seeded multi-day traffic journal
(the writer pool's exact op shapes: ``hmset vessel:{mmsi}`` per kept fix,
``rpush events:{kind}`` per detected event) through a journaled
:class:`~repro.kvstore.KeyValueStore`, compacts it into a fresh
:class:`~repro.warehouse.Warehouse`, then times the OLAP query surface —
bbox heatmap, k-ring heatmap, per-cell event-rate time series,
port-congestion trend, vessel-history scan — over repeated runs for
p50/p99. The CI gate leg (``examples/run_bench_gate.py``) replays this
exact workload and enforces a compaction-throughput floor and query p99
ceilings against the recorded ``BENCH_warehouse.json``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.kvstore.persistence import StorePersistence
from repro.kvstore.store import KeyValueStore
from repro.warehouse import Warehouse, WarehouseCompactor, WarehouseQueries
from repro.warehouse.warehouse import DAY_S

#: The synthetic fleet sails the Aegean box the examples use.
AREA = BoundingBox(lat_min=36.0, lat_max=39.0, lon_min=23.0, lon_max=26.0)


@dataclass
class WarehouseBenchResult:
    """Everything ``BENCH_warehouse.json`` records."""

    vessels: int
    days: int
    fixes_per_day: int
    seed: int
    resolution: int
    journal_ops: int
    position_rows: int
    event_rows: int
    generate_seconds: float
    compaction: dict = field(default_factory=dict)
    queries: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "workload": {
                "vessels": self.vessels,
                "days": self.days,
                "fixes_per_day": self.fixes_per_day,
                "seed": self.seed,
                "resolution": self.resolution,
            },
            "journal_ops": self.journal_ops,
            "position_rows": self.position_rows,
            "event_rows": self.event_rows,
            "generate_seconds": round(self.generate_seconds, 3),
            "compaction": self.compaction,
            "queries": self.queries,
        }


def generate_traffic_journal(store: KeyValueStore, vessels: int, days: int,
                             fixes_per_day: int, seed: int,
                             event_every: int = 40) -> tuple[int, int]:
    """Journal a seeded fleet's kept fixes + events through ``store``
    (the writer pool's op shapes). Returns (position_rows, event_rows)."""
    rng = random.Random(seed)
    lat_span = AREA.lat_max - AREA.lat_min
    lon_span = AREA.lon_max - AREA.lon_min
    lat = [AREA.lat_min + rng.random() * lat_span for _ in range(vessels)]
    lon = [AREA.lon_min + rng.random() * lon_span for _ in range(vessels)]
    cog = [rng.random() * 360.0 for _ in range(vessels)]
    step_s = DAY_S / fixes_per_day
    positions = events = 0
    for day in range(days):
        for fix in range(fixes_per_day):
            t = day * DAY_S + fix * step_s
            for i in range(vessels):
                # A bounded heading-noise walk keeps traffic clumpy enough
                # for realistic partition skew without drifting offshore.
                cog[i] = (cog[i] + rng.uniform(-20.0, 20.0)) % 360.0
                sog = 4.0 + rng.random() * 14.0
                dist_deg = sog * step_s / (3600.0 * 60.0)
                lat[i] += dist_deg * math.cos(math.radians(cog[i]))
                lon[i] += dist_deg * math.sin(math.radians(cog[i]))
                if not AREA.lat_min < lat[i] < AREA.lat_max:
                    lat[i] = min(max(lat[i], AREA.lat_min), AREA.lat_max)
                    cog[i] = (cog[i] + 180.0) % 360.0
                if not AREA.lon_min < lon[i] < AREA.lon_max:
                    lon[i] = min(max(lon[i], AREA.lon_min), AREA.lon_max)
                    cog[i] = (cog[i] + 180.0) % 360.0
                mmsi = 200_000_000 + i
                store.hmset(f"vessel:{mmsi}", {
                    "t": t, "lat": lat[i], "lon": lon[i],
                    "sog": sog, "cog": cog[i]}, t)
                positions += 1
                if positions % event_every == 0:
                    other = 200_000_000 + rng.randrange(vessels)
                    store.rpush("events:proximity", {
                        "mmsi_a": mmsi, "mmsi_b": other, "t": t,
                        "distance_m": rng.random() * 500.0,
                        "lat": lat[i], "lon": lon[i]}, now=t)
                    events += 1
    return positions, events


def _latency_ms(samples: list[float]) -> dict:
    array = np.asarray(samples) * 1_000.0
    return {
        "runs": len(samples),
        "p50_ms": round(float(np.percentile(array, 50)), 3),
        "p99_ms": round(float(np.percentile(array, 99)), 3),
        "mean_ms": round(float(array.mean()), 3),
    }


def run_warehouse_bench(vessels: int = 120, days: int = 7,
                        fixes_per_day: int = 288, seed: int = 11,
                        resolution: int = 6, batch_rows: int = 65_536,
                        query_repeats: int = 30, directory: str | None = None,
                        clock: Callable[[], float] = time.perf_counter,
                        ) -> WarehouseBenchResult:
    """The full bench: journal -> compaction timing -> query timing."""
    import tempfile

    if directory is None:
        directory = tempfile.mkdtemp(prefix="warehouse-bench-")
    import os

    kv_dir = os.path.join(directory, "kv")
    wh_dir = os.path.join(directory, "warehouse")

    # compact_every_ops=0: the bench owns the journal; the store must not
    # fold it into a snapshot behind the compactor's back.
    persistence = StorePersistence(kv_dir, compact_every_ops=0)
    store = KeyValueStore(persistence=persistence)
    start = clock()
    position_rows, event_rows = generate_traffic_journal(
        store, vessels, days, fixes_per_day, seed)
    generate_seconds = clock() - start

    warehouse = Warehouse(wh_dir, resolution=resolution)
    compactor = WarehouseCompactor(warehouse, batch_rows=batch_rows)
    start = clock()
    stats = compactor.compact_persistence(persistence)
    compact_seconds = clock() - start
    rows = stats["rows"]
    result = WarehouseBenchResult(
        vessels=vessels, days=days, fixes_per_day=fixes_per_day, seed=seed,
        resolution=resolution, journal_ops=stats["ops_scanned"],
        position_rows=position_rows, event_rows=event_rows,
        generate_seconds=generate_seconds)
    result.compaction = {
        "seconds": round(compact_seconds, 3),
        "rows": rows,
        "rows_per_s": round(rows / compact_seconds, 1),
        "segments_written": stats["segments_written"],
        "commits": stats["commits"],
        "positions_partitions": warehouse.partition_count("positions"),
        "events_partitions": warehouse.partition_count("events"),
    }

    queries = WarehouseQueries(warehouse)
    horizon = days * DAY_S
    event_cells = [cell for cell, _day, _meta in warehouse.partitions("events")]
    # A 1°x1° area of interest: the realistic OLAP shape (pruning bites),
    # unlike a full-area scan that would just read every segment.
    aoi = BoundingBox(lat_min=37.0, lat_max=38.0, lon_min=24.0, lon_max=25.0)
    bench_queries: dict[str, Callable[[], object]] = {
        "heatmap_bbox": lambda: queries.heatmap(
            bbox=aoi, t0=0.0, t1=horizon),
        "heatmap_kring": lambda: queries.kring_heatmap(
            (AREA.lat_min + AREA.lat_max) / 2.0,
            (AREA.lon_min + AREA.lon_max) / 2.0, 5, t0=0.0, t1=horizon),
        "event_timeseries": lambda: queries.cell_event_rate(
            event_cells, 0.0, horizon, 3_600.0),
        "congestion_trend": lambda: queries.congestion_trend(
            0.0, horizon, 6 * 3_600.0, bbox=aoi),
        "vessel_history": lambda: queries.vessel_history(200_000_000),
    }
    for name, run in bench_queries.items():
        samples = []
        for _ in range(query_repeats):
            start = clock()
            run()
            samples.append(clock() - start)
        result.queries[name] = _latency_ms(samples)
    result.queries["pruning"] = {
        "partitions_scanned": queries.partitions_scanned,
        "partitions_pruned": queries.partitions_pruned,
        "rows_scanned": queries.rows_scanned,
    }
    persistence.close()
    return result
