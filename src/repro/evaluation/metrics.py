"""Evaluation metrics: displacement errors and detection counts."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geodesy import haversine_m


def displacement_errors_m(pred_lat: np.ndarray, pred_lon: np.ndarray,
                          true_lat: np.ndarray, true_lon: np.ndarray
                          ) -> np.ndarray:
    """Great-circle displacement error per segment per horizon, metres.

    All inputs are ``(n, horizons)`` arrays.
    """
    if pred_lat.shape != true_lat.shape:
        raise ValueError(
            f"shape mismatch: {pred_lat.shape} vs {true_lat.shape}")
    return haversine_m(pred_lat, pred_lon, true_lat, true_lon)


def ade_per_horizon(errors_m: np.ndarray) -> np.ndarray:
    """Average displacement error at each horizon (the Table 1 rows)."""
    return errors_m.mean(axis=0)


@dataclass
class DetectionCounts:
    """Confusion counts for event forecasting (no true negatives exist in
    the open-world setting, as in the paper's Table 2)."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        """Event-level accuracy without true negatives:
        ``TP / (TP + FP + FN)`` (Jaccard/critical-success index).

        Note: the paper's Table 2 "Accuracy" column numerically tracks its
        recall column (its TN-free accuracy definition is not spelled out);
        EXPERIMENTS.md reports both this index and recall for comparison.
        """
        denom = self.tp + self.fp + self.fn
        return self.tp / denom if denom else 0.0

    def merged(self, other: "DetectionCounts") -> "DetectionCounts":
        return DetectionCounts(tp=self.tp + other.tp, fp=self.fp + other.fp,
                               fn=self.fn + other.fn)
