"""Table 1: S-VRF vs the linear kinematic model, ADE per horizon.

Protocol (Section 6.1): a 24-hour European-area AIS stream is downsampled
at 30 s, segmented into fixed tensors (20 input displacements, 6 interpol-
ated 5-minute targets), shuffled and split 50/25/25; both models predict
the six horizons on the test split and the Average Displacement Error in
metres is reported per horizon plus the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ais.datasets import CACHE_DIR, table1_dataset
from repro.ais.preprocessing import OUTPUT_STEPS
from repro.evaluation.metrics import ade_per_horizon, displacement_errors_m
from repro.models import LinearKinematicModel, SVRFConfig, train_svrf


@dataclass
class Table1Result:
    """The reproduced Table 1."""

    horizons_min: list[int]
    linear_ade_m: list[float]
    svrf_ade_m: list[float]

    @property
    def linear_mean_ade_m(self) -> float:
        return float(np.mean(self.linear_ade_m))

    @property
    def svrf_mean_ade_m(self) -> float:
        return float(np.mean(self.svrf_ade_m))

    def difference_pct(self) -> list[float]:
        """Relative S-VRF improvement per horizon (negative = better)."""
        return [100.0 * (s - l) / l
                for s, l in zip(self.svrf_ade_m, self.linear_ade_m)]

    @property
    def mean_difference_pct(self) -> float:
        return 100.0 * (self.svrf_mean_ade_m - self.linear_mean_ade_m) \
            / self.linear_mean_ade_m

    def svrf_wins_all_horizons(self) -> bool:
        """The paper's headline claim: S-VRF outperforms the linear
        kinematic model at every prediction horizon."""
        return all(s < l for s, l in zip(self.svrf_ade_m, self.linear_ade_m))


def run_table1(n_vessels: int = 300, duration_s: float = 12 * 3600.0,
               seed: int = 7, epochs: int = 12,
               svrf_config: SVRFConfig | None = None,
               cache: bool = True, verbose: bool = False) -> Table1Result:
    """Regenerate Table 1 on the synthetic stream.

    Defaults are scaled to a single-core host (the paper used 14,895
    vessels over 24 h); pass larger ``n_vessels``/``duration_s`` to grow
    the dataset. Dataset tensors and the trained model are cached under
    ``.repro_cache/`` keyed by the run parameters.
    """
    train, val, test = table1_dataset(n_vessels=n_vessels,
                                      duration_s=duration_s, seed=seed,
                                      cache=cache)
    config = svrf_config or SVRFConfig(hidden=32, dense=48)
    cache_path: Path | None = None
    if cache:
        cache_path = CACHE_DIR / (
            f"svrf-{n_vessels}-{int(duration_s)}-{seed}-"
            f"{config.hidden}-{config.dense}-{epochs}.npz")
    model = train_svrf(train, val, config, epochs=epochs, lr=3e-3,
                       cache_path=cache_path, verbose=verbose)

    true_lat, true_lon = test.target_positions()
    lin_lat, lin_lon = LinearKinematicModel().predict_positions(test.anchor,
                                                                test.x)
    svrf_lat, svrf_lon = model.predict_positions(test.anchor, test.x)

    linear_ade = ade_per_horizon(
        displacement_errors_m(lin_lat, lin_lon, true_lat, true_lon))
    svrf_ade = ade_per_horizon(
        displacement_errors_m(svrf_lat, svrf_lon, true_lat, true_lon))
    return Table1Result(
        horizons_min=[5 * (k + 1) for k in range(OUTPUT_STEPS)],
        linear_ade_m=[float(v) for v in linear_ade],
        svrf_ade_m=[float(v) for v in svrf_ade])
