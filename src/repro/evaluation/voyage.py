"""Voyage benchmark: plan-vs-actual fuel across replanning cadences.

The Voyage_Optimization exemplar's experiment B, reproduced over the
synthetic forecast-issuing weather field: a small fleet of fixed routes is
sailed by the :func:`~repro.models.voyage.simulate_voyage` twin at several
rolling-horizon replanning cadences (plus the plan-once baseline), under
several weather seeds. Every plan only ever sees *forecasts* — degraded
toward climatology with lead time — while the twin burns fuel through the
*actual* field, so the per-cadence totals measure exactly what staleness
costs: the less often you replan, the older the product your speed and
storm-dodging choices came from.

``BENCH_voyage.json`` records the sweep; the ``voyage_gate`` CI leg
re-runs a smoke-scaled subset and enforces that the 6 h cadence still
beats no-replanning by the recorded margin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.models.fuel import FuelModel
from repro.models.voyage import Waypoint, simulate_voyage
from repro.weather.forecast import ForecastingWeatherField

#: The sweep's cadence axis: label -> replan cadence in seconds
#: (None = plan once at departure, the no-replanning baseline).
DEFAULT_CADENCES: dict[str, float | None] = {
    "none": None,
    "1h": 3_600.0,
    "3h": 10_800.0,
    "6h": 21_600.0,
    "12h": 43_200.0,
}

#: Four multi-day routes criss-crossing the western/central Med box the
#: synthetic field is calibrated for — long enough (3-4 days at 12 kn)
#: that the plan-once baseline's later legs run on badly stale products.
DEFAULT_ROUTES: tuple[tuple[Waypoint, tuple[Waypoint, ...]], ...] = (
    (Waypoint(34.0, 4.0),
     (Waypoint(36.5, 9.0), Waypoint(39.0, 14.0), Waypoint(42.0, 19.0))),
    (Waypoint(44.0, 20.0),
     (Waypoint(41.0, 15.0), Waypoint(38.0, 10.0), Waypoint(35.0, 5.0))),
    (Waypoint(35.0, 18.0),
     (Waypoint(38.0, 14.0), Waypoint(41.0, 10.0), Waypoint(44.0, 6.0))),
    (Waypoint(42.0, 4.0),
     (Waypoint(40.0, 10.0), Waypoint(38.0, 15.0), Waypoint(36.0, 20.0))),
)

DEFAULT_SEEDS: tuple[int, ...] = (1, 2, 3, 4)


@dataclass
class VoyageBenchResult:
    """Everything ``BENCH_voyage.json`` records."""

    seeds: tuple[int, ...]
    routes: int
    update_cycle_s: float
    degradation_tau_s: float
    max_wind_mps: float
    deadline_days: float
    base_speed_kn: float
    per_cadence: dict = field(default_factory=dict)
    deltas_pct: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def to_json(self) -> dict:
        return {
            "workload": {
                "seeds": list(self.seeds),
                "routes": self.routes,
                "voyages": self.routes * len(self.seeds),
                "update_cycle_s": self.update_cycle_s,
                "degradation_tau_s": self.degradation_tau_s,
                "max_wind_mps": self.max_wind_mps,
                "deadline_days": self.deadline_days,
                "base_speed_kn": self.base_speed_kn,
            },
            "per_cadence": self.per_cadence,
            "deltas_pct": self.deltas_pct,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def _delta_pct(worse: float, better: float) -> float:
    """Fuel saved moving from ``worse`` to ``better``, as a percentage
    of ``worse`` (positive = ``better`` burned less)."""
    return 100.0 * (worse - better) / worse if worse else 0.0


def run_voyage_bench(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    cadences_s: dict[str, float | None] | None = None,
    routes: Sequence[tuple[Waypoint, tuple[Waypoint, ...]]] | None = None,
    update_cycle_s: float = 21_600.0,
    degradation_tau_s: float = 43_200.0,
    max_wind_mps: float = 26.0,
    deadline_days: float = 9.0,
    base_speed_kn: float = 12.0,
    fuel_model: FuelModel | None = None,
    sample_step_s: float = 3_600.0,
    clock: Callable[[], float] = time.perf_counter,
) -> VoyageBenchResult:
    """Sweep the plan-vs-actual fuel totals across replanning cadences.

    Deterministic for fixed arguments — the twin and the planner never
    touch the wall clock (``clock`` only stamps the elapsed time the
    report records).
    """
    cadences = DEFAULT_CADENCES if cadences_s is None else cadences_s
    route_list = DEFAULT_ROUTES if routes is None else tuple(routes)
    model = fuel_model or FuelModel()
    deadline_t = deadline_days * 86_400.0
    t0 = clock()
    per_cadence: dict[str, dict] = {}
    for label, cadence in cadences.items():
        planned = actual = 0.0
        replans = diversions = 0
        arrivals: list[float] = []
        for seed in seeds:
            weather = ForecastingWeatherField(
                seed=seed, update_cycle_s=update_cycle_s,
                degradation_tau_s=degradation_tau_s,
                max_wind_mps=max_wind_mps)
            for origin, waypoints in route_list:
                outcome = simulate_voyage(
                    weather, model, origin, waypoints,
                    depart_t=0.0, deadline_t=deadline_t,
                    base_speed_kn=base_speed_kn, cadence_s=cadence,
                    sample_step_s=sample_step_s)
                planned += outcome.planned_fuel_kg
                actual += outcome.actual_fuel_kg
                replans += outcome.replans
                diversions += outcome.diversions
                arrivals.append(outcome.arrival_t)
        per_cadence[label] = {
            "cadence_s": cadence,
            "planned_fuel_kg": round(planned, 1),
            "actual_fuel_kg": round(actual, 1),
            "replans": replans,
            "diversions": diversions,
            "mean_arrival_h": round(
                sum(arrivals) / len(arrivals) / 3600.0, 2),
        }
    deltas: dict[str, float] = {}
    fuels = {label: row["actual_fuel_kg"]
             for label, row in per_cadence.items()}
    if "none" in fuels and "6h" in fuels:
        deltas["6h_vs_none"] = round(
            _delta_pct(fuels["none"], fuels["6h"]), 3)
    if "1h" in fuels and "6h" in fuels:
        # The exemplar's headline: ~6 h replanning captures nearly all of
        # the 1 h cadence's benefit at a fraction of the planning work.
        deltas["6h_vs_1h"] = round(_delta_pct(fuels["1h"], fuels["6h"]), 3)
    if "none" in fuels and "12h" in fuels:
        deltas["12h_vs_none"] = round(
            _delta_pct(fuels["none"], fuels["12h"]), 3)
    return VoyageBenchResult(
        seeds=tuple(seeds),
        routes=len(route_list),
        update_cycle_s=update_cycle_s,
        degradation_tau_s=degradation_tau_s,
        max_wind_mps=max_wind_mps,
        deadline_days=deadline_days,
        base_speed_kn=base_speed_kn,
        per_cadence=per_cadence,
        deltas_pct=deltas,
        elapsed_seconds=clock() - t0,
    )
