"""Evaluation drivers regenerating the paper's Tables 1-2 and Figure 6.

* :mod:`repro.evaluation.metrics` — displacement errors and detection
  metrics,
* :mod:`repro.evaluation.table1` — S-VRF vs linear kinematic ADE per
  prediction horizon (Table 1),
* :mod:`repro.evaluation.table2` — collision forecasting
  precision/recall/F1/accuracy over the Aegean proximity scenario (Table 2),
* :mod:`repro.evaluation.figure6` — processing time vs number of actors on
  the global stream (Figure 6),
* :mod:`repro.evaluation.reporting` — plain-text table/series rendering so
  benchmarks print the same rows the paper reports,
* :mod:`repro.evaluation.warehouse` — compaction throughput and OLAP query
  latency over the historical warehouse (BENCH_warehouse.json),
* :mod:`repro.evaluation.voyage` — plan-vs-actual fuel across replanning
  cadences over the forecast-issuing weather field (BENCH_voyage.json).
"""

from repro.evaluation.metrics import (
    DetectionCounts,
    ade_per_horizon,
    displacement_errors_m,
)
from repro.evaluation.table1 import Table1Result, run_table1
from repro.evaluation.table2 import Table2Result, Table2Row, run_table2
from repro.evaluation.voyage import (
    VoyageBenchResult,
    run_voyage_bench,
)
from repro.evaluation.warehouse import (
    WarehouseBenchResult,
    generate_traffic_journal,
    run_warehouse_bench,
)
from repro.evaluation.figure6 import (
    Figure6ClusterResult,
    Figure6Result,
    ScalingCurveResult,
    ScalingPoint,
    run_figure6,
    run_figure6_cluster,
    run_scaling_curve,
    run_scaling_point,
    seeded_svrf_forecaster,
)

__all__ = [
    "DetectionCounts",
    "Figure6ClusterResult",
    "Figure6Result",
    "ScalingCurveResult",
    "ScalingPoint",
    "Table1Result",
    "Table2Result",
    "Table2Row",
    "VoyageBenchResult",
    "WarehouseBenchResult",
    "ade_per_horizon",
    "displacement_errors_m",
    "generate_traffic_journal",
    "run_figure6",
    "run_figure6_cluster",
    "run_scaling_curve",
    "run_scaling_point",
    "run_table1",
    "run_table2",
    "run_voyage_bench",
    "run_warehouse_bench",
    "seeded_svrf_forecaster",
]
