"""Table 2: vessel collision forecasting evaluation.

The paper evaluates on a synthetic Aegean proximity dataset [2] (213
vessels, 237 proximity events) with two sub-datasets: vessels coming into
close proximity in less than 2 minutes (Sub A) and in less than 5 minutes
(Sub B). For each row, collision forecasting runs with the stated temporal
difference threshold using either the linear kinematic model or S-VRF, and
TP/FP/FN with precision, recall, F1 and accuracy are reported.

Reproduction protocol (the paper does not spell out its cutoff mechanics;
this is the natural per-event reading, documented in DESIGN.md):

* every ground-truth event is evaluated at a **cutoff time** a sampled
  *lead* before its closest approach — under 2 min for Sub A, under 5 min
  for Sub B, and up to 10 min for "All events";
* each involved vessel's history is truncated at the cutoff, downsampled at
  30 s and fed to the model; the two forecast trajectories are checked with
  the paper's temporal-then-spatial intersection test (the row's temporal
  difference threshold, the scenario's proximity distance threshold);
* an intersection is a TP, a miss an FN;
* false positives come from the scenario's *near-miss* pairs (converging
  but passing outside the proximity threshold) evaluated identically: a
  forecast intersection for a pair that never comes close is an FP.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.ais.datasets import ProximityEvent, ProximityScenario
from repro.ais.preprocessing import downsample_arrays
from repro.events.collision import trajectories_intersect
from repro.evaluation.metrics import DetectionCounts
from repro.geo.track import Position
from repro.models.base import RouteForecaster


@dataclass
class Table2Row:
    """One evaluated configuration (dataset x model x threshold)."""

    dataset: str
    model: str
    temporal_threshold_min: float
    total_events: int
    counts: DetectionCounts

    @property
    def tp(self) -> int:
        return self.counts.tp

    @property
    def fp(self) -> int:
        return self.counts.fp

    @property
    def fn(self) -> int:
        return self.counts.fn


@dataclass
class Table2Result:
    """The reproduced Table 2."""

    rows: list[Table2Row]

    def row(self, dataset: str, model: str, threshold_min: float
            ) -> Table2Row:
        for r in self.rows:
            if (r.dataset == dataset and r.model == model
                    and r.temporal_threshold_min == threshold_min):
                return r
        raise KeyError((dataset, model, threshold_min))

    def svrf_recall_wins(self) -> bool:
        """The paper's headline: S-VRF achieves recall at least matching
        the linear kinematic model in every configuration."""
        ok = True
        for r in self.rows:
            if r.model != "S-VRF":
                continue
            linear = self.row(r.dataset, "Linear Kinematic",
                              r.temporal_threshold_min)
            ok = ok and (r.counts.recall >= linear.counts.recall - 1e-9)
        return ok

    def linear_more_false_negatives(self) -> bool:
        """Paper: the kinematic model produces more FNs, S-VRF more FPs."""
        ok = True
        for r in self.rows:
            if r.model != "S-VRF":
                continue
            linear = self.row(r.dataset, "Linear Kinematic",
                              r.temporal_threshold_min)
            ok = ok and (linear.counts.fn >= r.counts.fn)
        return ok


def _vessel_history(scenario: ProximityScenario, mmsi: int, cutoff_t: float,
                    downsample_s: float = 30.0) -> list[Position]:
    """A vessel's downsampled observed fixes up to the cutoff."""
    msgs = [m for m in scenario.result.messages
            if m.mmsi == mmsi and m.t <= cutoff_t]
    if not msgs:
        return []
    t = np.array([m.t for m in msgs])
    keep = downsample_arrays(t, downsample_s)
    return [Position(t=msgs[i].t, lat=msgs[i].lat, lon=msgs[i].lon,
                     sog=msgs[i].sog, cog=msgs[i].cog) for i in keep]


def _forecast_pair(scenario: ProximityScenario, forecaster: RouteForecaster,
                   mmsi_a: int, mmsi_b: int, cutoff_t: float):
    """Forecast trajectories for both vessels at the cutoff, or ``None``
    when a history is too short for the model."""
    min_history = getattr(forecaster, "min_history", 1)
    out = []
    for mmsi in (mmsi_a, mmsi_b):
        history = _vessel_history(scenario, mmsi, cutoff_t)
        if len(history) < min_history:
            return None
        out.append(forecaster.forecast(mmsi, history))
    return out


def train_table2_model(seed: int = 7, epochs: int = 20,
                       training_scenario_seeds: tuple[int, ...] = (95, 96, 97),
                       cache: bool = True):
    """Train the S-VRF model used for collision forecasting.

    The paper trains S-VRF on the full MarineTraffic European stream, which
    naturally contains manoeuvre-dense coastal traffic alongside open-water
    transits. The synthetic equivalent mixes the Table 1 fleet segments
    with segments from independent proximity scenarios (different seeds
    from the evaluation scenario, so train/test stay disjoint).
    """
    import numpy as np

    from repro.ais.datasets import (
        CACHE_DIR,
        proximity_scenario,
        table1_dataset,
    )
    from repro.ais.fleet import MessageBatch
    from repro.ais.preprocessing import SegmentDataset, build_segments
    from repro.models import SVRFConfig, train_svrf

    train, val, _ = table1_dataset(n_vessels=150, duration_s=8 * 3600.0,
                                   seed=seed, cache=cache)
    parts = [train]
    for scen_seed in training_scenario_seeds:
        scen = proximity_scenario(seed=scen_seed)
        msgs = scen.result.messages
        batch = MessageBatch(
            mmsi=np.array([m.mmsi for m in msgs], dtype=np.int64),
            t=np.array([m.t for m in msgs]),
            lat=np.array([m.lat for m in msgs]),
            lon=np.array([m.lon for m in msgs]),
            sog=np.array([m.sog for m in msgs]),
            cog=np.array([m.cog for m in msgs]))
        parts.append(build_segments(batch, stride=1))
    mixed = SegmentDataset.concat(parts)
    config = SVRFConfig(hidden=48, dense=64)
    cache_path = None
    if cache:
        scen_key = "-".join(str(s) for s in training_scenario_seeds)
        cache_path = CACHE_DIR / f"svrf-table2-{seed}-{epochs}-{scen_key}.npz"
    return train_svrf(mixed, val, config, epochs=epochs, lr=3e-3,
                      cache_path=cache_path)


def assign_event_leads(events: list[ProximityEvent], seed: int,
                       max_lead_s: float = 1_200.0,
                       min_lead_s: float = 30.0) -> dict[ProximityEvent, float]:
    """Assign each event its evaluation lead (forecast-to-event time).

    Leads are drawn once per event (square-root skew towards short leads,
    which is what a stream of continuously re-forecast encounters looks
    like) and shared by every model/threshold configuration. Sub-dataset A
    is then the events with lead < 2 min and Sub-dataset B those with
    lead < 5 min, mirroring the paper's "come into close proximity in less
    than N minutes" selections.
    """
    rng = random.Random(seed)
    leads = {}
    for event in events:
        u = rng.random()
        leads[event] = min_lead_s + (max_lead_s - min_lead_s) * u * u
    return leads


def _evaluate_events(scenario: ProximityScenario,
                     forecaster: RouteForecaster,
                     events: list[ProximityEvent],
                     leads: dict[ProximityEvent, float],
                     temporal_threshold_s: float) -> DetectionCounts:
    counts = DetectionCounts()
    for event in events:
        cutoff = event.t_closest - leads[event]
        pair = _forecast_pair(scenario, forecaster,
                              event.mmsi_a, event.mmsi_b, cutoff)
        if pair is None:
            counts.fn += 1  # no forecast available -> event missed
            continue
        hit = trajectories_intersect(
            pair[0], pair[1],
            temporal_threshold_s=temporal_threshold_s,
            spatial_threshold_m=scenario.proximity_threshold_m)
        if hit is None:
            counts.fn += 1
        else:
            counts.tp += 1
    return counts


def _evaluate_false_positives(scenario: ProximityScenario,
                              forecaster: RouteForecaster,
                              temporal_threshold_s: float,
                              rng: random.Random,
                              n_samples_per_pair: int = 2) -> int:
    """Evaluate never-close pairs; forecast intersections are FPs."""
    event_pairs = {e.pair for e in scenario.events}
    # Candidate non-event pairs: consecutive-MMSI pairs (the scenario
    # builder creates converging/near-miss pairs with adjacent MMSIs).
    mmsis = sorted(scenario.result.truth)
    candidates = [(a, b) for a, b in zip(mmsis, mmsis[1:])
                  if (a, b) not in event_pairs and a % 2 == 0]
    fp = 0
    for a, b in candidates:
        for _ in range(n_samples_per_pair):
            cutoff = rng.uniform(scenario.duration_s * 0.4,
                                 scenario.duration_s * 0.8)
            pair = _forecast_pair(scenario, forecaster, a, b, cutoff)
            if pair is None:
                continue
            hit = trajectories_intersect(
                pair[0], pair[1],
                temporal_threshold_s=temporal_threshold_s,
                spatial_threshold_m=scenario.proximity_threshold_m)
            if hit is not None:
                fp += 1
                break  # one FP per pair, like one logged event per pair
    return fp


def run_table2(scenario: ProximityScenario,
               svrf_forecaster: RouteForecaster,
               linear_forecaster: RouteForecaster | None = None,
               seed: int = 17) -> Table2Result:
    """Regenerate Table 2 over a proximity scenario.

    Eight configurations, as in the paper: {All events x {2, 5} min,
    Sub A x 2 min, Sub B x 5 min} x {Linear Kinematic, S-VRF}. Per-event
    leads are assigned once (seeded) and shared by all configurations, so
    the sub-datasets are genuine subsets of "All events".
    """
    from repro.models.kinematic import LinearKinematicModel
    linear = linear_forecaster or LinearKinematicModel()
    events = scenario.events
    leads = assign_event_leads(events, seed=seed)

    sub_a = [e for e in events if leads[e] < 120.0]
    sub_b = [e for e in events if leads[e] < 300.0]
    specs = [
        ("All Events", 2.0, events),
        ("All Events", 5.0, events),
        ("Sub dataset A", 2.0, sub_a),
        ("Sub dataset B", 5.0, sub_b),
    ]
    rows = []
    for model_name, forecaster in [("Linear Kinematic", linear),
                                   ("S-VRF", svrf_forecaster)]:
        for dataset, threshold_min, evs in specs:
            counts = _evaluate_events(scenario, forecaster, evs, leads,
                                      threshold_min * 60.0)
            counts.fp = _evaluate_false_positives(
                scenario, forecaster, threshold_min * 60.0,
                random.Random(seed + int(threshold_min)))
            rows.append(Table2Row(dataset=dataset, model=model_name,
                                  temporal_threshold_min=threshold_min,
                                  total_events=len(evs), counts=counts))
    return Table2Result(rows=rows)
