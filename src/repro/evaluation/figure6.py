"""Figure 6: average processing time vs number of active actors.

Protocol (Section 6.3): the platform ingests the global real-time stream
with the short-term forecasting model mounted as the typical workload;
per-message processing time is recorded together with the number of
distinct MMSIs (vessel actors) active at that moment, and plotted as a
moving-window average over 100 actors. The paper's run covered 72 hours and
170K vessels on a 12-core VM; this driver scales the stream to the host
(the curve *shape* — an initialisation spike while the actor population
grows, then a stable low plateau — is the reproduced claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry import MetricsRecorder
from repro.ais.datasets import scalability_fleet_config
from repro.ais.fleet import FleetEngine
from repro.models.base import RouteForecaster
from repro.platform import Platform, PlatformConfig


@dataclass
class Figure6Result:
    """The reproduced Figure 6 series plus run diagnostics."""

    actor_counts: np.ndarray          #: distinct vessel actors (x axis)
    avg_processing_time_s: np.ndarray  #: smoothed mean per-message time
    total_messages: int
    total_vessels: int
    wall_time_s: float

    @property
    def peak_time_s(self) -> float:
        return float(self.avg_processing_time_s.max())

    @property
    def peak_actor_count(self) -> int:
        return int(self.actor_counts[int(self.avg_processing_time_s.argmax())])

    def plateau_mean_s(self, tail_fraction: float = 0.5) -> float:
        """Mean processing time over the last ``tail_fraction`` of the
        actor-count range (the stable state)."""
        start = int(len(self.avg_processing_time_s) * (1.0 - tail_fraction))
        return float(self.avg_processing_time_s[start:].mean())

    def has_warmup_transient(self, init_fraction: float = 0.4) -> bool:
        """Whether the curve changes materially during the initialisation
        phase (low actor counts) before settling.

        The paper reports a *downward* transient (expensive actor creation
        on the JVM); our runtime shows an *upward* one (cheap Python actor
        spawn, the forecast dominating once history windows fill) — both
        are the same phenomenon: a warm-up phase ending in a stable state.
        EXPERIMENTS.md discusses the sign difference.
        """
        n = self.avg_processing_time_s.size
        if n < 4:
            return False
        head = self.avg_processing_time_s[:max(1, int(n * init_fraction))]
        plateau = self.plateau_mean_s()
        change = abs(float(head[0]) - plateau) / max(plateau, 1e-12)
        return change > 0.15

    def plateau_is_stable(self, tail_fraction: float = 0.5,
                          tolerance: float = 0.35) -> bool:
        """The scalability claim: once warmed up, per-message processing
        time no longer grows with the number of actors (within
        ``tolerance`` relative variation over the plateau)."""
        n = self.avg_processing_time_s.size
        if n < 4:
            return False
        tail = self.avg_processing_time_s[int(n * (1.0 - tail_fraction)):]
        mean = float(tail.mean())
        if mean <= 0:
            return False
        return float(tail.max() - tail.min()) / mean <= tolerance

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.total_messages / self.wall_time_s if self.wall_time_s else 0.0


def run_figure6(forecaster: RouteForecaster, n_vessels: int = 3_000,
                duration_s: float = 3_600.0, seed: int = 3,
                window_actors: int = 100,
                platform_config: PlatformConfig | None = None
                ) -> Figure6Result:
    """Regenerate the Figure 6 measurement on a scaled global stream.

    The stream is generated tick by tick and fed through the full platform
    (vessel actors -> forecasts -> cell/collision/flow/writer actors) with
    metrics recording enabled; vessels first appear throughout the run so
    the actor population grows exactly as the paper's x axis does.
    """
    import time

    config = platform_config or PlatformConfig(record_metrics=True)
    if not config.record_metrics:
        raise ValueError("Figure 6 needs record_metrics=True")
    platform = Platform(forecaster=forecaster, config=config)
    engine = FleetEngine(scalability_fleet_config(
        n_vessels=n_vessels, duration_s=duration_s, seed=seed))

    total = 0
    start = time.perf_counter()
    last_housekeeping = 0.0
    for tick in engine.stream():
        if len(tick):
            platform.publish_batch(tick)
            total += platform.process_available()
            now = platform.system.now
            if now - last_housekeeping > 1_800.0:
                platform.housekeeping()
                last_housekeeping = now
    wall = time.perf_counter() - start

    counts, times = platform.system.metrics.curve_by_actor_count(
        window_actors=window_actors)
    return Figure6Result(actor_counts=counts, avg_processing_time_s=times,
                         total_messages=total,
                         total_vessels=platform.vessel_count,
                         wall_time_s=wall)


@dataclass
class Figure6ClusterResult:
    """The distributed Figure 6 measurement: one series per node plus the
    cluster-wide roll-up, comparable against a single-node baseline."""

    num_nodes: int
    total_messages: int
    total_vessels: int
    wall_time_s: float
    #: ``node_id -> MetricsRecorder.snapshot()`` (per-message latency).
    per_node: dict
    #: Figure 6 curve over the *cluster-wide* actor count, merged from all
    #: nodes' samples.
    actor_counts: np.ndarray
    avg_processing_time_s: np.ndarray
    #: node_id -> number of vessel actors hosted there at the end.
    vessel_distribution: dict
    #: node_id -> transport counters (frames/bytes/batches) at shutdown.
    transport_stats: dict | None = None
    #: Cluster-wide telemetry snapshot (``LoopbackCluster.telemetry_snapshot``)
    #: when the run had ``record_telemetry=True``; ``None`` otherwise.
    telemetry: dict | None = None

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.total_messages / self.wall_time_s if self.wall_time_s else 0.0

    def combined_snapshot(self) -> dict:
        """Cluster-wide latency summary (sample-weighted merge)."""
        merged: dict[str, float] = {"samples": 0, "total_s": 0.0}
        p50s, p99s, weights = [], [], []
        for snap in self.per_node.values():
            n = snap.get("samples", 0)
            if not n:
                continue
            merged["samples"] += n
            merged["total_s"] += snap["total_s"]
            p50s.append(snap["p50_ms"])
            p99s.append(snap["p99_ms"])
            weights.append(n)
        if merged["samples"]:
            merged["mean_ms"] = merged["total_s"] / merged["samples"] * 1e3
            merged["p50_ms"] = float(np.average(p50s, weights=weights))
            merged["p99_ms"] = float(np.average(p99s, weights=weights))
        else:
            merged.update(mean_ms=0.0, p50_ms=0.0, p99_ms=0.0)
        merged["msgs_per_s"] = self.throughput_msgs_per_s
        return merged


def seeded_svrf_forecaster():
    """An S-VRF model with seeded weights and identity-ish scalers.

    Matmul cost does not depend on the weight values, so this is the
    same-architecture forward the trained platform runs — without CI
    training a model to time one. Used as the compute-heavy workload of
    the N-node scaling curve (~100-200 us of model compute per kept fix,
    an order of magnitude over the seed's per-message routing cost, so
    distributing vessel actors actually moves the critical path).
    """
    from repro.ml import StandardScaler
    from repro.models.svrf import SVRFConfig, SVRFModel

    model = SVRFModel(SVRFConfig(seed=0))
    model.x_scaler = StandardScaler.from_state(
        {"mean": np.zeros(3), "std": np.ones(3)})
    out = model.config.output_steps * 2
    model.y_scaler = StandardScaler.from_state(
        {"mean": np.zeros(out), "std": np.full(out, 1e-3)})
    model.trained = True
    return model


@dataclass
class ScalingPoint:
    """One cluster size on the scaling curve."""

    num_nodes: int
    messages: int
    #: node_id -> seconds of attributed work (dispatch + ingest + flush).
    busy_s: dict
    vessel_distribution: dict
    forecast_batches: int

    @property
    def critical_path_s(self) -> float:
        """The longest single node's busy time — what wall time would be
        if every node ran on its own core."""
        return max(self.busy_s.values()) if self.busy_s else 0.0

    @property
    def throughput_msgs_per_s(self) -> float:
        critical = self.critical_path_s
        return self.messages / critical if critical else 0.0


@dataclass
class ScalingCurveResult:
    """Critical-path throughput at each cluster size (same workload)."""

    points: list[ScalingPoint]

    def point(self, num_nodes: int) -> ScalingPoint:
        for point in self.points:
            if point.num_nodes == num_nodes:
                return point
        raise KeyError(f"no scaling point for {num_nodes} nodes")

    def speedup(self, base_nodes: int, scaled_nodes: int) -> float:
        """Throughput ratio of ``scaled_nodes`` over ``base_nodes``."""
        base = self.point(base_nodes).throughput_msgs_per_s
        if not base:
            return 0.0
        return self.point(scaled_nodes).throughput_msgs_per_s / base

    def as_report(self) -> dict:
        """JSON-able summary for BENCH_cluster.json."""
        return {
            "points": [{
                "num_nodes": p.num_nodes,
                "messages": p.messages,
                "critical_path_s": p.critical_path_s,
                "msgs_per_s": p.throughput_msgs_per_s,
                "busy_s": dict(sorted(p.busy_s.items())),
                "vessel_distribution": dict(
                    sorted(p.vessel_distribution.items())),
                "forecast_batches": p.forecast_batches,
            } for p in self.points],
        }


def _pump_attributed(cluster, busy: dict, max_rounds: int = 100_000) -> int:
    """Pump the loopback cluster to quiescence, charging each node's
    dispatcher time to ``busy[node_id]``. Rounds where a node processed
    nothing are not charged (empty ``run_until_idle`` polls are harness
    overhead, not node work)."""
    import time

    total = 0
    for _ in range(max_rounds):
        frames = cluster.hub.pump()
        processed = 0
        for node in cluster.nodes:
            start = time.perf_counter()
            n = node.system.run_until_idle()
            if n:
                busy[node.node_id] += time.perf_counter() - start
            processed += n
        total += processed
        if frames == 0 and processed == 0 and cluster.hub.pending == 0:
            return total
    raise RuntimeError("cluster did not reach quiescence while measuring")


def run_scaling_point(num_nodes: int, n_vessels: int, duration_s: float,
                      seed: int = 3, forecaster_factory=None,
                      cluster_config=None,
                      platform_config: PlatformConfig | None = None
                      ) -> ScalingPoint:
    """Run the scaling workload on an ``num_nodes``-node loopback cluster
    with per-node busy-time attribution.

    The loopback cluster is single-threaded, so wall time cannot show
    multi-node speedup on one core; instead every unit of work is timed
    and charged to the node that performed it (the seed's ingest polls,
    each node's dispatcher runs — which include the pooled S-VRF batch
    forwards its vessel actors trigger — and each node's explicit flush).
    Throughput is then messages over the *critical path*: the busiest
    single node, i.e. what a one-core-per-node deployment would wait for.
    Control-plane ticks (heartbeats, rebalancing) are deliberately not
    run mid-measurement — the rebalance sim campaign covers that loop.
    """
    import time

    from repro.ais.datasets import scalability_fleet_config
    from repro.ais.fleet import FleetEngine
    from repro.platform.distributed import LoopbackCluster

    factory = forecaster_factory or seeded_svrf_forecaster
    cluster = LoopbackCluster(num_nodes=num_nodes,
                              forecaster_factory=factory,
                              config=platform_config,
                              cluster_config=cluster_config)
    seed_platform = cluster.seed
    seed_id = seed_platform.node.node_id
    busy = {node.node_id: 0.0 for node in cluster.nodes}
    engine = FleetEngine(scalability_fleet_config(
        n_vessels=n_vessels, duration_s=duration_s, seed=seed))

    total = 0
    for tick in engine.stream():
        if not len(tick):
            continue
        start = time.perf_counter()
        seed_platform.publish_batch(tick)
        dispatched = seed_platform.ingestion.poll_once()
        busy[seed_id] += time.perf_counter() - start
        total += dispatched
        while dispatched or seed_platform.ingestion.lag:
            _pump_attributed(cluster, busy)
            start = time.perf_counter()
            dispatched = seed_platform.ingestion.poll_once()
            busy[seed_id] += time.perf_counter() - start
            total += dispatched
    _pump_attributed(cluster, busy)
    # Final flush: pooled forecast batches (the S-VRF forwards), then the
    # writer micro-batches — each charged to the node that executes it.
    for platform in cluster.platforms:
        start = time.perf_counter()
        platform.flush_forecasts()
        busy[platform.node.node_id] += time.perf_counter() - start
    _pump_attributed(cluster, busy)
    for platform in cluster.platforms:
        start = time.perf_counter()
        platform.flush_writers()
        busy[platform.node.node_id] += time.perf_counter() - start
    _pump_attributed(cluster, busy)

    point = ScalingPoint(
        num_nodes=num_nodes, messages=total, busy_s=busy,
        vessel_distribution=cluster.vessel_distribution(),
        forecast_batches=sum(
            p.wiring.forecast_service.batches_executed
            for p in cluster.platforms
            if p.wiring.forecast_service is not None))
    cluster.shutdown()
    return point


def run_scaling_curve(node_counts=(1, 2, 4, 8), n_vessels: int = 96,
                      duration_s: float = 3_600.0, seed: int = 3,
                      forecaster_factory=None, cluster_config=None,
                      platform_config: PlatformConfig | None = None
                      ) -> ScalingCurveResult:
    """The N-node scaling curve: the same S-VRF-loaded workload at every
    cluster size in ``node_counts``, measured as critical-path throughput
    (see :func:`run_scaling_point`)."""
    return ScalingCurveResult(points=[
        run_scaling_point(n, n_vessels, duration_s, seed=seed,
                          forecaster_factory=forecaster_factory,
                          cluster_config=cluster_config,
                          platform_config=platform_config)
        for n in node_counts])


def run_figure6_cluster(forecaster_factory=None, n_vessels: int = 1_000,
                        duration_s: float = 1_800.0, num_nodes: int = 2,
                        seed: int = 3, window_actors: int = 100,
                        platform_config: PlatformConfig | None = None,
                        cluster_config=None) -> Figure6ClusterResult:
    """The Figure 6 measurement over a sharded multi-node cluster.

    Runs the same scaled global stream as :func:`run_figure6` through a
    deterministic :class:`~repro.platform.distributed.LoopbackCluster`:
    vessel actors spread over ``num_nodes`` nodes by consistent-hash
    sharding, the forecasting model mounted once per node, per-message
    processing time recorded on every node against the *cluster-wide*
    vessel-actor count. The loopback transport serializes every inter-node
    message exactly as TCP would, so the measured per-message cost includes
    the wire codec. Pass a ``cluster_config`` with
    ``transport_batching=True`` to measure the batched wire path against
    the default frame-per-message one.
    """
    import time

    from repro.ais.datasets import scalability_fleet_config
    from repro.ais.fleet import FleetEngine
    from repro.platform.distributed import LoopbackCluster

    config = platform_config or PlatformConfig()
    cluster = LoopbackCluster(num_nodes=num_nodes,
                              forecaster_factory=forecaster_factory,
                              config=config, cluster_config=cluster_config,
                              record_metrics=True)
    cluster.use_cluster_population()
    engine = FleetEngine(scalability_fleet_config(
        n_vessels=n_vessels, duration_s=duration_s, seed=seed))

    total = 0
    start = time.perf_counter()
    last_housekeeping = 0.0
    for tick in engine.stream():
        if len(tick):
            cluster.seed.publish_batch(tick)
            total += cluster.process_available()
            now = cluster.seed.system.now
            if now - last_housekeeping > 1_800.0:
                for platform in cluster.platforms:
                    platform.housekeeping()
                cluster.settle()
                last_housekeeping = now
    wall = time.perf_counter() - start

    # Merge every node's raw samples into one cluster-wide curve.
    all_counts, all_durations = [], []
    for platform in cluster.platforms:
        counts, durations = platform.system.metrics.as_arrays()
        all_counts.append(counts)
        all_durations.append(durations)
    merged = MetricsRecorder()
    merged._actor_counts.extend(np.concatenate(all_counts).tolist())
    merged._durations.extend(np.concatenate(all_durations).tolist())
    curve_x, curve_y = merged.curve_by_actor_count(
        window_actors=window_actors)

    telemetry = (cluster.telemetry_snapshot()
                 if config.record_telemetry else None)
    result = Figure6ClusterResult(
        num_nodes=num_nodes, total_messages=total,
        total_vessels=cluster.total_vessels, wall_time_s=wall,
        per_node=cluster.metrics_snapshots(),
        actor_counts=curve_x, avg_processing_time_s=curve_y,
        vessel_distribution=cluster.vessel_distribution(),
        transport_stats={n.node_id: n.transport.stats()
                         for n in cluster.nodes},
        telemetry=telemetry)
    cluster.shutdown()
    return result
