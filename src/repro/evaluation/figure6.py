"""Figure 6: average processing time vs number of active actors.

Protocol (Section 6.3): the platform ingests the global real-time stream
with the short-term forecasting model mounted as the typical workload;
per-message processing time is recorded together with the number of
distinct MMSIs (vessel actors) active at that moment, and plotted as a
moving-window average over 100 actors. The paper's run covered 72 hours and
170K vessels on a 12-core VM; this driver scales the stream to the host
(the curve *shape* — an initialisation spike while the actor population
grows, then a stable low plateau — is the reproduced claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ais.datasets import scalability_fleet_config
from repro.ais.fleet import FleetEngine
from repro.models.base import RouteForecaster
from repro.platform import Platform, PlatformConfig


@dataclass
class Figure6Result:
    """The reproduced Figure 6 series plus run diagnostics."""

    actor_counts: np.ndarray          #: distinct vessel actors (x axis)
    avg_processing_time_s: np.ndarray  #: smoothed mean per-message time
    total_messages: int
    total_vessels: int
    wall_time_s: float

    @property
    def peak_time_s(self) -> float:
        return float(self.avg_processing_time_s.max())

    @property
    def peak_actor_count(self) -> int:
        return int(self.actor_counts[int(self.avg_processing_time_s.argmax())])

    def plateau_mean_s(self, tail_fraction: float = 0.5) -> float:
        """Mean processing time over the last ``tail_fraction`` of the
        actor-count range (the stable state)."""
        start = int(len(self.avg_processing_time_s) * (1.0 - tail_fraction))
        return float(self.avg_processing_time_s[start:].mean())

    def has_warmup_transient(self, init_fraction: float = 0.4) -> bool:
        """Whether the curve changes materially during the initialisation
        phase (low actor counts) before settling.

        The paper reports a *downward* transient (expensive actor creation
        on the JVM); our runtime shows an *upward* one (cheap Python actor
        spawn, the forecast dominating once history windows fill) — both
        are the same phenomenon: a warm-up phase ending in a stable state.
        EXPERIMENTS.md discusses the sign difference.
        """
        n = self.avg_processing_time_s.size
        if n < 4:
            return False
        head = self.avg_processing_time_s[:max(1, int(n * init_fraction))]
        plateau = self.plateau_mean_s()
        change = abs(float(head[0]) - plateau) / max(plateau, 1e-12)
        return change > 0.15

    def plateau_is_stable(self, tail_fraction: float = 0.5,
                          tolerance: float = 0.35) -> bool:
        """The scalability claim: once warmed up, per-message processing
        time no longer grows with the number of actors (within
        ``tolerance`` relative variation over the plateau)."""
        n = self.avg_processing_time_s.size
        if n < 4:
            return False
        tail = self.avg_processing_time_s[int(n * (1.0 - tail_fraction)):]
        mean = float(tail.mean())
        if mean <= 0:
            return False
        return float(tail.max() - tail.min()) / mean <= tolerance

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.total_messages / self.wall_time_s if self.wall_time_s else 0.0


def run_figure6(forecaster: RouteForecaster, n_vessels: int = 3_000,
                duration_s: float = 3_600.0, seed: int = 3,
                window_actors: int = 100,
                platform_config: PlatformConfig | None = None
                ) -> Figure6Result:
    """Regenerate the Figure 6 measurement on a scaled global stream.

    The stream is generated tick by tick and fed through the full platform
    (vessel actors -> forecasts -> cell/collision/flow/writer actors) with
    metrics recording enabled; vessels first appear throughout the run so
    the actor population grows exactly as the paper's x axis does.
    """
    import time

    config = platform_config or PlatformConfig(record_metrics=True)
    if not config.record_metrics:
        raise ValueError("Figure 6 needs record_metrics=True")
    platform = Platform(forecaster=forecaster, config=config)
    engine = FleetEngine(scalability_fleet_config(
        n_vessels=n_vessels, duration_s=duration_s, seed=seed))

    total = 0
    start = time.perf_counter()
    last_housekeeping = 0.0
    for tick in engine.stream():
        if len(tick):
            platform.publish_batch(tick)
            total += platform.process_available()
            now = platform.system.now
            if now - last_housekeeping > 1_800.0:
                platform.housekeeping()
                last_housekeeping = now
    wall = time.perf_counter() - start

    counts, times = platform.system.metrics.curve_by_actor_count(
        window_actors=window_actors)
    return Figure6Result(actor_counts=counts, avg_processing_time_s=times,
                         total_messages=total,
                         total_vessels=platform.vessel_count,
                         wall_time_s=wall)
