"""A hierarchical hexagonal spatial index (the platform's H3 substitute).

The paper uses Uber's H3 index to route AIS positions and forecast points to
*cell actors* (proximity detection) and *collision actors* (collision
forecasting), and to rasterise traffic flow forecasts. What those components
need from the index is:

* a deterministic mapping from (lat, lon, resolution) to a compact cell id,
* hexagonal adjacency (k-ring neighbourhoods) for spatial dilation,
* a resolution hierarchy (parent/child) for coarsening,
* cell geometry (centre, boundary, edge length) for visualisation.

``repro.hexgrid`` provides all of that with an axial hexagonal lattice laid
over an equirectangular projection. Unlike true H3 it is not built on an
icosahedron, so cells distort towards the poles; resolutions are calibrated
so that edge lengths match H3's published values, which keeps event-detection
behaviour equivalent at the mid-latitudes the paper evaluates on.
"""

from repro.hexgrid.cell import (
    MAX_RESOLUTION,
    cell_resolution,
    cell_to_string,
    is_valid_cell,
    pack_cell,
    string_to_cell,
    unpack_cell,
)
from repro.hexgrid.index import (
    average_edge_length_m,
    cell_area_m2,
    cell_boundary,
    cell_to_latlng,
    cell_to_parent,
    grid_disk,
    grid_distance,
    grid_ring,
    latlng_to_cell,
    neighbors,
)

__all__ = [
    "MAX_RESOLUTION",
    "average_edge_length_m",
    "cell_area_m2",
    "cell_boundary",
    "cell_resolution",
    "cell_to_latlng",
    "cell_to_parent",
    "cell_to_string",
    "grid_disk",
    "grid_distance",
    "grid_ring",
    "is_valid_cell",
    "latlng_to_cell",
    "neighbors",
    "pack_cell",
    "string_to_cell",
    "unpack_cell",
]
