"""Cell id representation for the hexagonal index.

A cell is identified by its resolution and its axial lattice coordinates
``(q, r)``. Ids pack into a single non-negative 64-bit integer so they can be
used as actor routing keys, dict keys, Kafka-style message keys and KV-store
fields without any auxiliary structure:

.. code-block:: text

    bits 63..60  resolution (0..15)
    bits 59..30  q + OFFSET  (30 bits)
    bits 29..0   r + OFFSET  (30 bits)
"""

from __future__ import annotations

#: Finest supported resolution (mirrors H3's 16 resolution levels, 0..15).
MAX_RESOLUTION = 15

_COORD_BITS = 30
_OFFSET = 1 << (_COORD_BITS - 1)
_COORD_MASK = (1 << _COORD_BITS) - 1


def pack_cell(res: int, q: int, r: int) -> int:
    """Pack ``(res, q, r)`` into a 64-bit cell id."""
    if not 0 <= res <= MAX_RESOLUTION:
        raise ValueError(f"resolution must be in [0, {MAX_RESOLUTION}], got {res}")
    qo = q + _OFFSET
    ro = r + _OFFSET
    if not (0 <= qo <= _COORD_MASK and 0 <= ro <= _COORD_MASK):
        raise ValueError(f"axial coordinates out of range: q={q}, r={r}")
    return (res << (2 * _COORD_BITS)) | (qo << _COORD_BITS) | ro


def unpack_cell(cell: int) -> tuple[int, int, int]:
    """Unpack a cell id into ``(res, q, r)``."""
    if cell < 0:
        raise ValueError(f"cell ids are non-negative, got {cell}")
    res = cell >> (2 * _COORD_BITS)
    if res > MAX_RESOLUTION:
        raise ValueError(f"invalid cell id {cell}: resolution {res} out of range")
    q = ((cell >> _COORD_BITS) & _COORD_MASK) - _OFFSET
    r = (cell & _COORD_MASK) - _OFFSET
    return res, q, r


def cell_resolution(cell: int) -> int:
    """Resolution level encoded in a cell id."""
    return unpack_cell(cell)[0]


def is_valid_cell(cell: int) -> bool:
    """True if ``cell`` decodes to a structurally valid id."""
    try:
        unpack_cell(cell)
    except (ValueError, TypeError):
        return False
    return True


def cell_to_string(cell: int) -> str:
    """Hexadecimal string form of a cell id (H3-style presentation)."""
    res, q, r = unpack_cell(cell)  # validate before formatting
    del res, q, r
    return f"{cell:016x}"


def string_to_cell(text: str) -> int:
    """Parse the hexadecimal string form back into a cell id."""
    cell = int(text, 16)
    unpack_cell(cell)  # validate
    return cell
