"""Spatial operations on the hexagonal lattice.

The lattice uses pointy-top hexagons in an equirectangular plane where one
degree of latitude and one degree of longitude both map to
``METERS_PER_DEG_LAT`` metres. Edge lengths per resolution follow H3's
aperture-7 progression (each resolution shrinks edges by ``sqrt(7)``), so
resolution numbers are interchangeable with H3's in configuration.
"""

from __future__ import annotations

import math

from repro.geo.constants import METERS_PER_DEG_LAT
from repro.geo.geodesy import normalize_lon
from repro.hexgrid.cell import MAX_RESOLUTION, pack_cell, unpack_cell

_SQRT3 = math.sqrt(3.0)

#: Edge length (= circumradius) in projected metres per resolution.
#: Resolution 0 matches H3's ~1107.7 km average edge; each subsequent
#: resolution divides by sqrt(7) (aperture-7), as H3 does.
EDGE_LENGTHS_M: tuple[float, ...] = tuple(
    1_107_712.591 / math.sqrt(7.0) ** res for res in range(MAX_RESOLUTION + 1)
)


def average_edge_length_m(res: int) -> float:
    """Average hexagon edge length in metres at ``res``."""
    return EDGE_LENGTHS_M[res]


def cell_area_m2(res: int) -> float:
    """Area of one hexagon at ``res`` in projected square metres."""
    s = EDGE_LENGTHS_M[res]
    return 3.0 * _SQRT3 / 2.0 * s * s


def _project(lat: float, lon: float) -> tuple[float, float]:
    """Equirectangular projection to planar metres."""
    return (float(normalize_lon(lon)) * METERS_PER_DEG_LAT,
            lat * METERS_PER_DEG_LAT)


def _unproject(x: float, y: float) -> tuple[float, float]:
    return y / METERS_PER_DEG_LAT, float(normalize_lon(x / METERS_PER_DEG_LAT))


def _axial_round(qf: float, rf: float) -> tuple[int, int]:
    """Round fractional axial coordinates to the containing hexagon
    (via cube-coordinate rounding)."""
    xf, zf = qf, rf
    yf = -xf - zf
    rx, ry, rz = round(xf), round(yf), round(zf)
    dx, dy, dz = abs(rx - xf), abs(ry - yf), abs(rz - zf)
    if dx > dy and dx > dz:
        rx = -ry - rz
    elif dy > dz:
        ry = -rx - rz
    else:
        rz = -rx - ry
    return int(rx), int(rz)


def latlng_to_cell(lat: float, lon: float, res: int) -> int:
    """Cell id of the hexagon containing ``(lat, lon)`` at ``res``."""
    if not -90.0 <= lat <= 90.0:
        raise ValueError(f"latitude out of range: {lat}")
    s = EDGE_LENGTHS_M[res]
    x, y = _project(lat, lon)
    qf = (_SQRT3 / 3.0 * x - y / 3.0) / s
    rf = (2.0 / 3.0 * y) / s
    q, r = _axial_round(qf, rf)
    return pack_cell(res, q, r)


def cell_to_latlng(cell: int) -> tuple[float, float]:
    """Centre of a cell as ``(lat, lon)``."""
    res, q, r = unpack_cell(cell)
    s = EDGE_LENGTHS_M[res]
    x = s * _SQRT3 * (q + r / 2.0)
    y = s * 1.5 * r
    return _unproject(x, y)


def cell_boundary(cell: int) -> list[tuple[float, float]]:
    """The six corner vertices of a cell as ``[(lat, lon), ...]``."""
    res, q, r = unpack_cell(cell)
    s = EDGE_LENGTHS_M[res]
    cx = s * _SQRT3 * (q + r / 2.0)
    cy = s * 1.5 * r
    corners = []
    for k in range(6):
        ang = math.pi / 180.0 * (60.0 * k - 30.0)
        corners.append(_unproject(cx + s * math.cos(ang), cy + s * math.sin(ang)))
    return corners


#: Axial direction vectors of the six hexagon neighbours.
_NEIGHBOR_DIRS: tuple[tuple[int, int], ...] = (
    (1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1),
)


def neighbors(cell: int) -> list[int]:
    """The six cells sharing an edge with ``cell``."""
    res, q, r = unpack_cell(cell)
    return [pack_cell(res, q + dq, r + dr) for dq, dr in _NEIGHBOR_DIRS]


def grid_ring(cell: int, k: int) -> list[int]:
    """Cells exactly ``k`` steps away from ``cell`` (the hollow ring)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return [cell]
    res, q, r = unpack_cell(cell)
    ring = []
    # Walk to the ring start, then trace its six sides.
    cq, cr = q + k * _NEIGHBOR_DIRS[4][0], r + k * _NEIGHBOR_DIRS[4][1]
    for side in range(6):
        dq, dr = _NEIGHBOR_DIRS[side]
        for _ in range(k):
            ring.append(pack_cell(res, cq, cr))
            cq, cr = cq + dq, cr + dr
    return ring


def grid_disk(cell: int, k: int) -> list[int]:
    """All cells within grid distance ``k`` of ``cell`` (the filled disk).

    This is the fan-out set the platform uses when a forecast point must be
    shared with its cell actor *and* the neighbouring cell actors so that
    near-boundary encounters are not missed (paper, Section 5.2).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    disk = []
    for ring_k in range(k + 1):
        disk.extend(grid_ring(cell, ring_k))
    return disk


def grid_distance(cell_a: int, cell_b: int) -> int:
    """Hexagon-step distance between two cells of the same resolution."""
    res_a, qa, ra = unpack_cell(cell_a)
    res_b, qb, rb = unpack_cell(cell_b)
    if res_a != res_b:
        raise ValueError(
            f"cells have different resolutions: {res_a} vs {res_b}")
    dq, dr = qa - qb, ra - rb
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def cell_to_parent(cell: int, parent_res: int | None = None) -> int:
    """The cell at ``parent_res`` (default: one level coarser) whose hexagon
    contains this cell's centre.

    Because the lattice is not perfectly aperture-aligned the containment is
    centre-based rather than exact nesting — sufficient for the hierarchical
    coarsening used by traffic-flow aggregation.
    """
    res = unpack_cell(cell)[0]
    if parent_res is None:
        parent_res = res - 1
    if not 0 <= parent_res <= res:
        raise ValueError(
            f"parent resolution must be in [0, {res}], got {parent_res}")
    if parent_res == res:
        return cell
    lat, lon = cell_to_latlng(cell)
    return latlng_to_cell(lat, lon, parent_res)
