"""Platform configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformConfig:
    """Tunables of the integrated platform.

    Defaults mirror the paper's deployment: 30-second downsampling before
    the forecasting model, H3 resolution 8 (~461 m edges) for event cells,
    one neighbour ring of forecast fan-out, and a 2-minute temporal
    threshold for collision intersection.
    """

    #: Minimum seconds between fixes kept by a vessel actor (Section 4.2).
    downsample_s: float = 30.0
    #: Hex resolution of proximity cell actors.
    proximity_resolution: int = 8
    #: Hex resolution of collision cell actors.
    collision_resolution: int = 8
    #: Rings of neighbouring cells that receive forecast positions
    #: ("the respective cell ... and each n+1 nearest cell", Section 5.2).
    collision_neighbor_rings: int = 1
    #: Temporal intersection threshold for collision forecasting, seconds.
    collision_temporal_threshold_s: float = 120.0
    #: Spatial intersection threshold for collision forecasting, metres.
    collision_spatial_threshold_m: float = 500.0
    #: Proximity event distance threshold, metres.
    proximity_threshold_m: float = 500.0
    #: Suppress duplicate events of the same pair for this long, seconds.
    event_debounce_s: float = 900.0
    #: Hex resolution of traffic-flow cells.
    flow_resolution: int = 6
    #: Traffic-flow window length, seconds.
    flow_window_s: float = 300.0
    #: Run the forecasting model on every n-th kept fix (1 = every fix).
    forecast_every_n: int = 1
    #: Forecast newly appeared vessels before their 20-displacement window
    #: fills by zero-padding the input (the original model's "variable
    #: filling" [4]). Requires at least ``min_forecast_fixes`` fixes.
    pad_short_histories: bool = True
    min_forecast_fixes: int = 2
    #: Pool per-vessel forecast requests into fleet-wide batched model
    #: passes through the node's :class:`ForecastService` (used whenever
    #: the mounted forecaster implements ``forecast_batch``; per-vessel
    #: results are bitwise identical to unbatched inference).
    forecast_batching: bool = True
    #: Execute the pending pooled batch once it holds this many vessels
    #: (mirrors ``writer_batch_max_ops``).
    forecast_batch_max: int = 256
    #: Execute a partial pooled batch after this much virtual time
    #: (mirrors ``writer_batch_linger_s``). 0 disables the timer.
    forecast_linger_s: float = 0.5
    #: Silence watchdog settings (switch-off detection).
    switchoff_gap_factor: float = 20.0
    switchoff_min_gap_s: float = 900.0
    #: Broker topic carrying inbound AIS position reports.
    ais_topic: str = "ais.positions"
    #: Number of partitions for the AIS topic.
    ais_partitions: int = 8
    #: Record per-message processing metrics (Figure 6 instrumentation).
    record_metrics: bool = False
    #: Attach the :mod:`repro.telemetry` registry + trace log to every
    #: node: dispatch histograms, transport batch metrics, membership
    #: gauges and sampled cross-node traces (see OBSERVABILITY.md).
    record_telemetry: bool = False
    #: Trace every n-th ingested AIS record (1 = every record). Sampling
    #: keys off the broker offset, so the traced set is deterministic.
    trace_sample_every: int = 64
    #: Publish dedicated output streams (the paper's future-work item:
    #: "leverage Kafka topics to produce streams of dedicated system, model
    #: and actor-based outputs"). When enabled the writer actor mirrors
    #: vessel states to ``out.vessel.states`` and events to
    #: ``out.events.{kind}`` on the broker, for external consumers.
    output_topics: bool = False
    output_state_topic: str = "out.vessel.states"
    output_event_topic_prefix: str = "out.events"
    #: Writer shards per node (the paper's single writer is pool size 1;
    #: states route by MMSI, events by pair/kind — see writer_actor.py).
    writer_pool_size: int = 2
    #: Flush a writer shard once its pending batch reaches this many KV
    #: operations (mirrors ``BatchingTransport.max_batch_msgs``).
    writer_batch_max_ops: int = 64
    #: Flush a partial writer batch after this much virtual time
    #: (mirrors ``BatchingTransport.linger_s``). 0 disables the timer.
    writer_batch_linger_s: float = 0.5
    #: Hard cap on each writer shard's event-dedup map; oldest entries are
    #: evicted past this (debounce-expired entries go first).
    event_dedup_max: int = 4096
    #: Publish every writer flush batch on pub/sub channel ``repl:flush``
    #: so ``repro.serving`` read replicas can follow the primary without
    #: touching its store (see SERVING.md). Off by default: the serving
    #: tier opts in.
    serving_replica_feed: bool = False
    #: Bound on a replica feed subscription created via
    #: :meth:`Platform.subscribe_replication` (drop-oldest past this).
    serving_feed_maxlen: int = 10_000
    #: Enable the voyage-optimization subsystem: a per-node weather field
    #: issuing forecasts on an update cycle, a fuel model, and the pooled
    #: :class:`~repro.platform.route_optimizer.RouteOptimizerService`
    #: replanning assigned voyages on a rolling horizon (see VOYAGE.md).
    voyage_optimization: bool = False
    #: Seed of the node's :class:`ForecastingWeatherField` (truth +
    #: climatology). Identical on every node by construction.
    weather_seed: int = 0
    #: Forecast product update cycle (the exemplar's 6-hourly wind).
    weather_update_cycle_s: float = 21_600.0
    #: e-folding time of forecast degradation toward climatology.
    weather_degradation_tau_s: float = 43_200.0
    #: Peak wind the synthetic truth/climatology fields can produce.
    weather_max_wind_mps: float = 18.0
    #: Replan an assigned voyage when stream time crosses a multiple of
    #: this cadence (bucket-quantised, so the plan sequence is independent
    #: of batching, crashes and migrations).
    voyage_replan_cadence_s: float = 21_600.0
    #: Execute the pending pooled planning batch at this many vessels.
    voyage_batch_max: int = 64
    #: Execute a partial planning batch after this much virtual time.
    voyage_linger_s: float = 0.5
    #: Default commanded speed for assigned voyages, knots.
    voyage_base_speed_kn: float = 12.0
    #: Speed multipliers the planner may choose per leg.
    voyage_speed_candidates: tuple[float, ...] = (0.7, 0.85, 1.0, 1.15, 1.3)
    #: Dog-leg pivot offset as a fraction of the leg length (0 disables
    #: storm-dodging geometry).
    voyage_offset_fraction: float = 0.25
    #: Integration step when sampling weather along candidate legs.
    voyage_sample_step_s: float = 3_600.0
    #: Emit ``eta_breach`` when a plan's deadline slack falls below this.
    voyage_eta_breach_s: float = 1_800.0
    #: Emit ``route_divergence`` when a fix sits further than this from
    #: the planned track.
    voyage_divergence_m: float = 5_000.0

    def __post_init__(self) -> None:
        if self.downsample_s < 0:
            raise ValueError("downsample_s must be non-negative")
        if self.forecast_every_n < 1:
            raise ValueError("forecast_every_n must be >= 1")
        if self.trace_sample_every < 1:
            raise ValueError("trace_sample_every must be >= 1")
        if not 0 <= self.collision_neighbor_rings <= 3:
            raise ValueError("collision_neighbor_rings must be in [0, 3]")
        if self.forecast_batch_max < 1:
            raise ValueError("forecast_batch_max must be >= 1")
        if self.forecast_linger_s < 0:
            raise ValueError("forecast_linger_s must be non-negative")
        if self.writer_pool_size < 1:
            raise ValueError("writer_pool_size must be >= 1")
        if self.writer_batch_max_ops < 1:
            raise ValueError("writer_batch_max_ops must be >= 1")
        if self.writer_batch_linger_s < 0:
            raise ValueError("writer_batch_linger_s must be non-negative")
        if self.event_dedup_max < 1:
            raise ValueError("event_dedup_max must be >= 1")
        if self.serving_feed_maxlen < 1:
            raise ValueError("serving_feed_maxlen must be >= 1")
        if self.weather_update_cycle_s <= 0:
            raise ValueError("weather_update_cycle_s must be positive")
        if self.weather_degradation_tau_s <= 0:
            raise ValueError("weather_degradation_tau_s must be positive")
        if self.voyage_replan_cadence_s <= 0:
            raise ValueError("voyage_replan_cadence_s must be positive")
        if self.voyage_batch_max < 1:
            raise ValueError("voyage_batch_max must be >= 1")
        if self.voyage_linger_s < 0:
            raise ValueError("voyage_linger_s must be non-negative")
        if self.voyage_base_speed_kn <= 0:
            raise ValueError("voyage_base_speed_kn must be positive")
        if not self.voyage_speed_candidates or any(
                m <= 0 for m in self.voyage_speed_candidates):
            raise ValueError(
                "voyage_speed_candidates must be non-empty and positive")
        if self.voyage_offset_fraction < 0:
            raise ValueError("voyage_offset_fraction must be non-negative")
        if self.voyage_sample_step_s <= 0:
            raise ValueError("voyage_sample_step_s must be positive")
        if self.voyage_divergence_m <= 0:
            raise ValueError("voyage_divergence_m must be positive")
