"""The writer actors.

"The actor states are stored by the writer actor in a Redis database in
order to be visualized by the UI through a dedicated API ... In the context
of this work, a single writer actor has been defined to write all actor
outputs to the Redis database." (Section 3)

The paper acknowledges that single writer as a bottleneck; here the writer
is a **consistent-hash pool** (:class:`WriterPool`) of ``writer-{shard}``
actors. Updates route by MMSI and events by their pair/kind, so everything
that must be deduplicated or ordered per key lands on the same shard. Each
shard **micro-batches** its KV writes the way :class:`BatchingTransport`
batches frames: pending vessel states coalesce per MMSI (last write wins),
pending events queue up, and the batch flushes when it reaches
``writer_batch_max_ops`` pending KV operations, when the
``writer_batch_linger_s`` virtual-time linger expires, or on an explicit
:class:`~repro.platform.messages.WriterFlush`.

Key schema (consumed by :class:`repro.platform.api.MiddlewareAPI`):

* ``vessel:{mmsi}`` — hash with the vessel's latest state snapshot,
* ``vessels:last_seen`` — zset of MMSIs scored by last message time,
* ``events:{kind}`` — list of event payload dicts (most recent last),
* ``events:all`` — zset of ``{kind}:{shard}:{n}`` ids scored by time,
* pub/sub channel ``events:{kind}`` for live UI notifications.

Pub/sub notification and the optional output topics fire at *enqueue*
time, so subscribers and external consumers observe every update even
when intermediate states coalesce away inside a batch.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.actors import Actor, ActorContext
from repro.cluster.sharding import stable_hash
from repro.platform.messages import (
    EventRecord,
    RestoreState,
    VesselStateUpdate,
    WriterFlush,
)

if TYPE_CHECKING:
    from repro.actors import ActorRef
    from repro.platform.pipeline import PlatformWiring

#: Pub/sub channel carrying flushed writer batches to serving replicas
#: (``PlatformConfig.serving_replica_feed``; consumed by
#: :class:`repro.serving.replica.ReadReplica`).
REPL_FLUSH_CHANNEL = "repl:flush"
#: Pub/sub channel carrying periodic traffic-flow raster snapshots
#: (:meth:`Platform.publish_flow_snapshot`).
REPL_FLOW_CHANNEL = "repl:flow"


def event_payload_dict(payload) -> dict:
    """A plain JSON-able dict form of an event payload (replication and
    serving pushes must not carry live dataclass references)."""
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return dataclasses.asdict(payload)
    if isinstance(payload, dict):
        return dict(payload)
    return {"repr": repr(payload)}


class WriterActor(Actor):
    """One shard of the writer pool: batches actor outputs into the KV
    store and notifies subscribers."""

    def __init__(self, wiring: "PlatformWiring", shard: int = 0) -> None:
        self.wiring = wiring
        self.shard = shard
        self.states_written = 0
        self.events_written = 0
        self.flushes = 0
        self.kv_ops_flushed = 0
        self._producer = None
        if wiring.config.output_topics:
            from repro.streams import Producer
            self._producer = Producer(wiring.broker)
        #: (kind, pair, debounce bucket) -> event time, for cross-cell
        #: deduplication (the same encounter can be detected by several
        #: cell actors). Keyed by the *bucket* of the event time rather
        #: than a sliding last-accepted window so the accepted count is a
        #: pure function of the event multiset — several cells race the
        #: same pair's records to this shard, and their arrival order
        #: depends on scheduler interleaving (the batched-vs-unbatched
        #: event-parity gate relies on this being order-insensitive).
        #: Bounded: entries older than the debounce window are pruned
        #: whenever the map exceeds ``event_dedup_max``, then oldest-first
        #: eviction enforces the hard cap (see :meth:`_bound_dedup`).
        self._event_dedup: dict[tuple, float] = {}
        #: mmsi -> newest pending state (coalesced: last write wins).
        self._pending_states: dict[int, VesselStateUpdate] = {}
        #: (record, events:all member id) pairs awaiting flush, in order.
        self._pending_events: list[tuple[EventRecord, str]] = []
        #: Generation counter invalidating stale linger timers: a timer
        #: only flushes if no flush happened since it was armed.
        self._flush_seq = 0
        self._timer_armed = False
        self._tel_instruments: tuple | None = None
        #: Replication sequence: counts only *published* flush batches,
        #: so replicas can detect feed gaps (see SERVING.md).
        self._repl_seq = 0

    # -- receive --------------------------------------------------------------------

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, VesselStateUpdate):
            self._enqueue_state(message, ctx)
        elif isinstance(message, EventRecord):
            self._enqueue_event(message, ctx)
        elif isinstance(message, WriterFlush):
            self._timer_armed = False
            if message.seq is None or message.seq == self._flush_seq:
                self._flush(message.reason)
            elif self.pending_ops:
                # Stale timer (a max_ops flush beat it) with new work
                # already queued behind it: re-arm so the tail still lands.
                self._maybe_flush(ctx)
        elif isinstance(message, RestoreState):
            pass  # writers are rebuilt from KV snapshots, not actor state

    # -- enqueue --------------------------------------------------------------------

    def _enqueue_state(self, update: VesselStateUpdate,
                       ctx: ActorContext) -> None:
        self._pending_states[update.mmsi] = update
        if self._producer is not None:
            # The output stream carries every accepted update — coalescing
            # applies only to the KV store, whose reads want latest-state.
            self._producer.send(self.wiring.config.output_state_topic,
                                update.mmsi, update, update.t)
        self.states_written += 1
        self._maybe_flush(ctx)

    def _enqueue_event(self, record: EventRecord, ctx: ActorContext) -> None:
        payload = record.payload
        pair = getattr(payload, "pair", None)
        debounce = self.wiring.config.event_debounce_s
        if pair is not None and debounce > 0:
            key = (record.kind, pair, int(record.t // debounce))
            if key in self._event_dedup:
                return
            self._event_dedup[key] = record.t
            self._bound_dedup(record.t)

        member = f"{record.kind}:{self.shard}:{self.events_written}"
        self._pending_events.append((record, member))
        self.wiring.pubsub.publish(f"events:{record.kind}", payload)
        if self._producer is not None:
            prefix = self.wiring.config.output_event_topic_prefix
            self._producer.send(f"{prefix}.{record.kind}", record.kind,
                                record, record.t)
        self.events_written += 1
        self._maybe_flush(ctx)

    def _bound_dedup(self, now: float) -> None:
        limit = self.wiring.config.event_dedup_max
        if len(self._event_dedup) <= limit:
            return
        debounce = self.wiring.config.event_debounce_s
        self._event_dedup = {k: t for k, t in self._event_dedup.items()
                             if now - t < debounce}
        if len(self._event_dedup) > limit:
            # Still over the cap inside one debounce window: drop the
            # oldest entries (their pairs may debounce-miss once; bounded
            # memory wins over perfect dedup under adversarial load).
            ordered = sorted(self._event_dedup.items(),
                             key=lambda kv: (kv[1], kv[0]))
            self._event_dedup = dict(ordered[len(ordered) - limit:])

    # -- batching -------------------------------------------------------------------

    @property
    def pending_ops(self) -> int:
        """KV operations the current batch will issue when flushed."""
        return 2 * len(self._pending_states) + 2 * len(self._pending_events)

    def _maybe_flush(self, ctx: ActorContext) -> None:
        config = self.wiring.config
        if self.pending_ops >= config.writer_batch_max_ops:
            self._flush("max_ops")
        elif not self._timer_armed and config.writer_batch_linger_s > 0:
            self._timer_armed = True
            ctx.schedule(config.writer_batch_linger_s, ctx.self_ref,
                         WriterFlush(reason="linger", seq=self._flush_seq))

    def _flush(self, reason: str) -> None:
        self._flush_seq += 1
        ops = self.pending_ops
        if ops == 0:
            return
        kv = self.wiring.kvstore
        replicate = self.wiring.config.serving_replica_feed
        repl_states: list[dict] = []
        repl_events: list[dict] = []
        for update in self._pending_states.values():
            snapshot = {
                "t": update.t, "lat": update.lat, "lon": update.lon,
                "sog": update.sog, "cog": update.cog,
                "event_flags": ",".join(update.event_flags),
            }
            if update.forecast is not None:
                snapshot["forecast"] = [
                    (p.t, p.lat, p.lon) for p in update.forecast.positions]
            kv.hmset(f"vessel:{update.mmsi}", snapshot, now=update.t)
            kv.zadd("vessels:last_seen", update.t, str(update.mmsi),
                    now=update.t)
            if replicate:
                repl_states.append({"mmsi": update.mmsi, **snapshot})
        for record, member in self._pending_events:
            kv.rpush(f"events:{record.kind}", record.payload, now=record.t)
            kv.zadd("events:all", record.t, member, now=record.t)
            if replicate:
                repl_events.append({
                    "kind": record.kind, "t": record.t,
                    "payload": event_payload_dict(record.payload)})
        self._pending_states.clear()
        self._pending_events.clear()
        self.flushes += 1
        self.kv_ops_flushed += ops
        if replicate:
            # Publish after the primary KV write, so a replica is never
            # ahead of the store it mirrors.
            self._repl_seq += 1
            self.wiring.pubsub.publish(REPL_FLUSH_CHANNEL, {
                "shard": self.shard, "seq": self._repl_seq,
                "states": repl_states, "events": repl_events})
        self._record_telemetry(reason, ops)

    def _record_telemetry(self, reason: str, ops: int) -> None:
        telemetry = self.wiring.system.telemetry
        if telemetry is None:
            return
        if self._tel_instruments is None:
            shard = str(self.shard)
            self._tel_instruments = (
                telemetry.registry.histogram("writer_batch_ops",
                                             {"shard": shard}),
                {r: telemetry.registry.counter(
                    "writer_flushes_total", {"reason": r, "shard": shard})
                 for r in ("max_ops", "linger", "explicit")},
            )
        batch_hist, flush_counters = self._tel_instruments
        batch_hist.observe(ops)
        counter = flush_counters.get(reason)
        if counter is None:
            counter = flush_counters[reason] = \
                telemetry.registry.counter(
                    "writer_flushes_total",
                    {"reason": reason, "shard": str(self.shard)})
        counter.inc()


class WriterPool:
    """A consistent-hash pool of node-local writer actors.

    Quacks like an :class:`~repro.actors.ActorRef` for its senders
    (``tell``), routing each message to a fixed shard: vessel states by
    MMSI, events by their ``(kind, pair)`` when a pair exists (keeping the
    cross-cell dedup of one encounter on one shard) and by ``(kind, mmsi)``
    otherwise. Routing uses the cluster's process-independent
    :func:`~repro.cluster.sharding.stable_hash`, so a restart routes every
    key identically.
    """

    def __init__(self, wiring: "PlatformWiring", size: int) -> None:
        if size < 1:
            raise ValueError("writer pool needs at least one shard")
        self.size = size
        self._system = wiring.system
        #: route_key -> shard memo (stable_hash is pure; vessel states
        #: re-route by the same MMSI on every kept fix). Bounded: event
        #: pair keys are unbounded over a long run.
        self._shard_cache: dict = {}
        self.refs: list["ActorRef"] = [
            wiring.system.spawn(
                lambda shard=shard: WriterActor(wiring, shard=shard),
                f"writer-{shard}")
            for shard in range(size)
        ]

    # -- routing --------------------------------------------------------------------

    def route_key(self, message) -> object:
        if isinstance(message, VesselStateUpdate):
            return message.mmsi
        if isinstance(message, EventRecord):
            pair = getattr(message.payload, "pair", None)
            if pair is not None:
                return (message.kind, tuple(pair))
            mmsi = getattr(message.payload, "mmsi", None)
            if mmsi is not None:
                return (message.kind, mmsi)
            return message.kind
        return 0

    def shard_of(self, message) -> int:
        key = self.route_key(message)
        shard = self._shard_cache.get(key)
        if shard is None:
            if len(self._shard_cache) >= (1 << 20):
                self._shard_cache.clear()
            shard = self._shard_cache[key] = \
                stable_hash(key) % self.size
        return shard

    def tell(self, message, sender=None) -> None:
        self.refs[self.shard_of(message)].tell(message, sender=sender)

    # -- control --------------------------------------------------------------------

    def flush(self, reason: str = "explicit") -> None:
        """Ask every shard to flush its pending batch (async: pump the
        dispatcher afterwards)."""
        for ref in self.refs:
            ref.tell(WriterFlush(reason=reason, seq=None))

    def broadcast(self, message) -> None:
        for ref in self.refs:
            ref.tell(message)

    # -- introspection ----------------------------------------------------------------

    def actors(self) -> list[WriterActor]:
        cells = self._system._cells
        return [cells[ref.name].actor for ref in self.refs
                if ref.name in cells]

    def _sum(self, attr: str) -> int:
        return sum(getattr(actor, attr) for actor in self.actors())

    @property
    def states_written(self) -> int:
        return self._sum("states_written")

    @property
    def events_written(self) -> int:
        return self._sum("events_written")

    @property
    def flushes(self) -> int:
        return self._sum("flushes")

    @property
    def pending_ops(self) -> int:
        return self._sum("pending_ops")
