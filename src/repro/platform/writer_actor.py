"""The writer actor.

"The actor states are stored by the writer actor in a Redis database in
order to be visualized by the UI through a dedicated API ... In the context
of this work, a single writer actor has been defined to write all actor
outputs to the Redis database." (Section 3)

Key schema (consumed by :class:`repro.platform.api.MiddlewareAPI`):

* ``vessel:{mmsi}`` — hash with the vessel's latest state snapshot,
* ``vessels:last_seen`` — zset of MMSIs scored by last message time,
* ``events:{kind}`` — list of event payload dicts (most recent last),
* ``events:all`` — zset of event ids scored by time,
* pub/sub channel ``events:{kind}`` for live UI notifications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.actors import Actor, ActorContext
from repro.platform.messages import EventRecord, VesselStateUpdate

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class WriterActor(Actor):
    """Persists actor outputs into the KV store and notifies subscribers."""

    def __init__(self, wiring: "PlatformWiring") -> None:
        self.wiring = wiring
        self.states_written = 0
        self.events_written = 0
        self._producer = None
        if wiring.config.output_topics:
            from repro.streams import Producer
            self._producer = Producer(wiring.broker)
        #: (kind, pair) -> last event time, for cross-cell deduplication
        #: (the same encounter can be detected by several cell actors).
        self._event_dedup: dict[tuple, float] = {}

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, VesselStateUpdate):
            self._write_state(message)
        elif isinstance(message, EventRecord):
            self._write_event(message)

    def _write_state(self, update: VesselStateUpdate) -> None:
        kv = self.wiring.kvstore
        now = update.t
        snapshot = {
            "t": update.t, "lat": update.lat, "lon": update.lon,
            "sog": update.sog, "cog": update.cog,
            "event_flags": ",".join(update.event_flags),
        }
        if update.forecast is not None:
            snapshot["forecast"] = [
                (p.t, p.lat, p.lon) for p in update.forecast.positions]
        kv.hmset(f"vessel:{update.mmsi}", snapshot, now=now)
        kv.zadd("vessels:last_seen", update.t, str(update.mmsi), now=now)
        if self._producer is not None:
            self._producer.send(self.wiring.config.output_state_topic,
                                update.mmsi, update, update.t)
        self.states_written += 1

    def _write_event(self, record: EventRecord) -> None:
        payload = record.payload
        pair = getattr(payload, "pair", None)
        if pair is not None:
            key = (record.kind, pair)
            last = self._event_dedup.get(key)
            if (last is not None
                    and record.t - last < self.wiring.config.event_debounce_s):
                return
            self._event_dedup[key] = record.t

        kv = self.wiring.kvstore
        kv.rpush(f"events:{record.kind}", payload, now=record.t)
        kv.zadd("events:all", record.t,
                f"{record.kind}:{self.events_written}", now=record.t)
        self.wiring.pubsub.publish(f"events:{record.kind}", payload)
        if self._producer is not None:
            prefix = self.wiring.config.output_event_topic_prefix
            self._producer.send(f"{prefix}.{record.kind}", record.kind,
                                record, record.t)
        self.events_written += 1
