"""Actor message vocabulary.

Every payload exchanged between platform actors is one of these immutable
types — the explicit message protocol that makes the actor topology of
Figure 2 (and the collision exchange of Figure 5) legible and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ais.message import AISMessage
from repro.events.collision import CollisionForecast
from repro.events.proximity import ProximityPairEvent
from repro.models.base import RouteForecast


@dataclass(frozen=True)
class PositionIngested:
    """Ingestion -> vessel actor: one parsed AIS position report."""

    message: AISMessage


@dataclass(frozen=True)
class CellObservation:
    """Vessel actor -> cell actor: a position falling in the cell."""

    cell: int
    mmsi: int
    t: float
    lat: float
    lon: float


@dataclass(frozen=True)
class ForecastShared:
    """Vessel actor -> collision actor: a forecast touching the cell."""

    cell: int
    forecast: RouteForecast


@dataclass(frozen=True)
class ForecastSharedBatch:
    """Vessel actor -> remote node: one forecast touching many cells.

    The fan-out of one forecast routinely hits a dozen-plus collision
    cells; cells owned by the same remote node travel in a single wire
    envelope and are expanded back into per-cell :class:`ForecastShared`
    messages by the receiving node's router (re-routing individually if
    the shard table drifted in flight).
    """

    cells: tuple[int, ...]
    forecast: RouteForecast


@dataclass(frozen=True)
class ForecastReady:
    """Forecast service -> vessel actor: the pooled batch containing this
    vessel's request was executed; share and persist the result."""

    forecast: RouteForecast
    #: Virtual time at which the request entered the pending batch
    #: (drives the ``forecast_latency_s`` telemetry histogram).
    t_submitted: float = 0.0


@dataclass(frozen=True)
class ForecastFlush:
    """Linger timer -> forecast flush actor: execute the pending batch.

    Mirrors :class:`WriterFlush`: ``seq`` carries the service's flush
    generation so a timer armed before an earlier flush is stale and
    ignored; ``None`` flushes unconditionally.
    """

    reason: str = "explicit"   #: "linger" | "max_batch" | "explicit"
    seq: int | None = None


@dataclass(frozen=True)
class ProximityAlert:
    """Cell actor -> vessel actors & writer: proximity event detected."""

    event: ProximityPairEvent


@dataclass(frozen=True)
class CollisionAlert:
    """Collision actor -> vessel actors & writer: collision forecast."""

    event: CollisionForecast


@dataclass(frozen=True)
class VesselStateUpdate:
    """Vessel actor -> writer actor: latest per-vessel state snapshot."""

    mmsi: int
    t: float
    lat: float
    lon: float
    sog: float
    cog: float
    forecast: RouteForecast | None
    event_flags: tuple[str, ...] = ()


@dataclass(frozen=True)
class EventRecord:
    """Writer actor input: a loggable platform event."""

    kind: str          #: "proximity" | "collision" | "switchoff"
    t: float
    payload: Any


@dataclass(frozen=True)
class VoyageAssigned:
    """Operator -> vessel actor: sail these waypoints by this deadline.

    Waypoints travel as plain ``(lat, lon)`` tuples so the assignment
    crosses node boundaries without dragging model types over the wire.
    """

    mmsi: int
    waypoints: tuple[tuple[float, float], ...]
    deadline_t: float
    base_speed_kn: float | None = None   #: None: the config default


@dataclass(frozen=True)
class PlanReady:
    """Route optimizer -> vessel actor: the pooled planning batch holding
    this vessel's replan request was executed; adopt the plan and emit
    whatever voyage events it implies."""

    plan: Any                  #: a :class:`repro.models.voyage.VoyagePlan`
    t_submitted: float = 0.0   #: virtual time the request was pooled at


@dataclass(frozen=True)
class PlanFlush:
    """Linger timer -> plan flush actor: execute the pending planning
    batch. Same staleness scheme as :class:`ForecastFlush`."""

    reason: str = "explicit"   #: "linger" | "max_batch" | "explicit"
    seq: int | None = None


@dataclass(frozen=True)
class PruneTick:
    """Scheduler -> stateful actors: periodic memory housekeeping."""

    now: float


@dataclass(frozen=True)
class WriterFlush:
    """Writer actor input: flush the pending micro-batch now.

    ``seq`` carries the shard's flush generation for linger timers — a
    timer armed before an earlier flush is stale and ignored. ``None``
    means unconditional (explicit flush from the platform driver).
    """

    reason: str = "explicit"   #: "linger" | "max_ops" | "explicit"
    seq: int | None = None


@dataclass(frozen=True)
class RestoreState:
    """Recovery -> entity actor: adopt checkpointed state.

    Routed through the normal sharded routers after a node restart, so
    whichever node now owns the entity receives its pre-crash state.
    Actors adopt conservatively (only when the snapshot is newer than what
    they already hold) — replayed stream suffixes may have rebuilt fresher
    state first.
    """

    entity: str                #: "vessel" | "cell" | "collision"
    key: Any                   #: the router key (mmsi or H3 cell)
    state: dict
