"""Actor message vocabulary.

Every payload exchanged between platform actors is one of these immutable
types — the explicit message protocol that makes the actor topology of
Figure 2 (and the collision exchange of Figure 5) legible and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ais.message import AISMessage
from repro.events.collision import CollisionForecast
from repro.events.proximity import ProximityPairEvent
from repro.models.base import RouteForecast


@dataclass(frozen=True)
class PositionIngested:
    """Ingestion -> vessel actor: one parsed AIS position report."""

    message: AISMessage


@dataclass(frozen=True)
class CellObservation:
    """Vessel actor -> cell actor: a position falling in the cell."""

    cell: int
    mmsi: int
    t: float
    lat: float
    lon: float


@dataclass(frozen=True)
class ForecastShared:
    """Vessel actor -> collision actor: a forecast touching the cell."""

    cell: int
    forecast: RouteForecast


@dataclass(frozen=True)
class ProximityAlert:
    """Cell actor -> vessel actors & writer: proximity event detected."""

    event: ProximityPairEvent


@dataclass(frozen=True)
class CollisionAlert:
    """Collision actor -> vessel actors & writer: collision forecast."""

    event: CollisionForecast


@dataclass(frozen=True)
class VesselStateUpdate:
    """Vessel actor -> writer actor: latest per-vessel state snapshot."""

    mmsi: int
    t: float
    lat: float
    lon: float
    sog: float
    cog: float
    forecast: RouteForecast | None
    event_flags: tuple[str, ...] = ()


@dataclass(frozen=True)
class EventRecord:
    """Writer actor input: a loggable platform event."""

    kind: str          #: "proximity" | "collision" | "switchoff"
    t: float
    payload: Any


@dataclass(frozen=True)
class PruneTick:
    """Scheduler -> stateful actors: periodic memory housekeeping."""

    now: float
