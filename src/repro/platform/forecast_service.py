"""Pooled fleet-wide forecast inference.

The paper mounts the S-VRF model "only once in memory" per node — but the
seed reproduction still *executed* it once per vessel per kept fix, a
batch-size-1 forward pass whose BLAS calls dominate the single-node hot
path. :class:`ForecastService` turns those per-vessel calls into fleet-wide
micro-batches, exactly the way the writer pool batches KV operations:

* vessel actors :meth:`submit` their displacement window + anchor instead
  of invoking the model synchronously,
* requests pool per node, every request keeping its own batch row (a
  vessel with two kept fixes in one linger window gets both forecasts, in
  order — the fan-out set stays identical to unbatched inference, which
  the event-parity gate relies on),
* the batch executes after ``forecast_batch_max`` pending vessels or a
  ``forecast_linger_s`` virtual-time linger — **one**
  ``predict_transitions((n, INPUT_STEPS, 3))`` pass over the whole fleet,
* the flush shares each produced forecast with its collision cells / the
  flow actor *in row order* (per-vessel mailboxes could not guarantee the
  cross-vessel ordering collision pairing is sensitive to), then notifies
  each requesting vessel with a
  :class:`~repro.platform.messages.ForecastReady` message, preserving the
  actor model's one-writer-per-state discipline for the twin's own state.

Per-vessel results are bitwise identical to the unbatched path (see
``Model.predict``), which the batched-vs-unbatched parity leg of the bench
gate and the property tests assert.

The service is a plain shared object (like the forecaster itself), not an
actor: submission is a method call from inside the vessel actor's receive,
so pooling adds no extra envelope per request. Only the linger timer runs
through an actor (:class:`ForecastFlushActor`) because timers are actor-
system scheduled messages.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.actors import Actor, ActorContext
from repro.geo.track import Position
from repro.platform.messages import ForecastFlush, ForecastReady

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class ForecastService:
    """Per-node pooling of vessel forecast requests into batched passes."""

    def __init__(self, wiring: "PlatformWiring") -> None:
        self.wiring = wiring
        config = wiring.config
        self.batch_max = config.forecast_batch_max
        self.linger_s = config.forecast_linger_s
        #: Displacement steps per window row (0: anchors-only forecaster).
        self.window_size = getattr(wiring.forecaster, "window_size", 0)
        self._windows = (np.empty((self.batch_max, self.window_size, 3))
                         if self.window_size else None)
        self._mmsis: list[int] = []
        self._anchors: list[Position] = []
        self._submit_ts: list[float] = []
        self._lock = threading.RLock()
        #: Flush generation; linger timers armed before an earlier flush
        #: are stale (same scheme as the writer shards).
        self._seq = 0
        self._timer_armed = False
        #: Spawned by the platform wiring (timers need an actor address).
        self.flush_ref = None
        self.batches_executed = 0
        self.requests_pooled = 0
        self.forecasts_failed = 0
        self._tel_instruments: tuple | None = None

    # -- submission -----------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._mmsis)

    def submit(self, mmsi: int, window: np.ndarray | None,
               anchor: Position, ctx: ActorContext) -> None:
        """Queue one vessel's forecast request.

        Called from inside the vessel actor's receive; the result comes
        back to the vessel as a :class:`ForecastReady` message after the
        pooled batch executes. Per-vessel replies preserve submission
        order (the flush fans out in row order, mailboxes are FIFO).
        """
        with self._lock:
            slot = len(self._mmsis)
            self._mmsis.append(mmsi)
            self._anchors.append(anchor)
            self._submit_ts.append(self.wiring.system.now)
            if self._windows is not None and window is not None:
                self._windows[slot] = window
            self.requests_pooled += 1
            full = len(self._mmsis) >= self.batch_max
            if not full and not self._timer_armed and self.linger_s > 0:
                self._timer_armed = True
                ctx.schedule(self.linger_s, self.flush_ref,
                             ForecastFlush(reason="linger", seq=self._seq))
        if full:
            self.flush("max_batch")

    # -- flushing -------------------------------------------------------------------

    def on_flush_message(self, message: ForecastFlush,
                         ctx: ActorContext) -> None:
        """Linger-timer delivery (via :class:`ForecastFlushActor`)."""
        with self._lock:
            self._timer_armed = False
            stale = message.seq is not None and message.seq != self._seq
            if stale and self._mmsis and self.linger_s > 0:
                # A max-batch flush beat this timer but new requests queued
                # behind it: re-arm so the tail still executes.
                self._timer_armed = True
                ctx.schedule(self.linger_s, self.flush_ref,
                             ForecastFlush(reason="linger", seq=self._seq))
                return
        if not stale:
            self.flush(message.reason)

    def flush(self, reason: str = "explicit") -> int:
        """Execute the pending pooled batch; returns how many forecasts
        were produced (0 for an empty flush)."""
        with self._lock:
            self._seq += 1
            n = len(self._mmsis)
            if n == 0:
                return 0
            mmsis, anchors = self._mmsis, self._anchors
            submit_ts = self._submit_ts
            windows = self._windows[:n] if self._windows is not None else None
            forecasts = self._run_batch(mmsis, windows, anchors)
            self._mmsis, self._anchors, self._submit_ts = [], [], []
            self.batches_executed += 1
            from repro.platform.vessel_actor import share_forecast
            wiring = self.wiring
            router = wiring.vessel_router
            for mmsi, forecast, t0 in zip(mmsis, forecasts, submit_ts):
                if forecast is not None:
                    share_forecast(wiring, forecast)
                router.tell(mmsi, ForecastReady(forecast=forecast,
                                                t_submitted=t0))
            self._record_telemetry(reason, n, submit_ts)
        return n

    def _run_batch(self, mmsis, windows, anchors) -> list:
        forecaster = self.wiring.forecaster
        try:
            return forecaster.forecast_batch(mmsis, windows, anchors)
        except Exception:
            # One bad request must not sink the fleet's batch: retry each
            # row alone; rows that still fail resolve to None (the vessel
            # keeps its previous forecast and unblocks its state update).
            out = []
            for i, (mmsi, anchor) in enumerate(zip(mmsis, anchors)):
                row = windows[i:i + 1] if windows is not None else None
                try:
                    out.append(forecaster.forecast_batch(
                        [mmsi], row, [anchor])[0])
                except Exception:
                    self.forecasts_failed += 1
                    out.append(None)
            return out

    # -- telemetry ------------------------------------------------------------------

    def _record_telemetry(self, reason: str, size: int,
                          submit_ts: list[float]) -> None:
        telemetry = self.wiring.system.telemetry
        if telemetry is None:
            return
        if self._tel_instruments is None:
            self._tel_instruments = (
                telemetry.registry.histogram("forecast_batch_size"),
                telemetry.registry.histogram("forecast_latency_s"),
                {r: telemetry.registry.counter(
                    "forecast_flushes_total", {"reason": r})
                 for r in ("max_batch", "linger", "explicit")},
            )
        batch_hist, latency_hist, flush_counters = self._tel_instruments
        batch_hist.observe(size)
        now = self.wiring.system.now
        if submit_ts:
            # Pooling delay of the batch's oldest request, in virtual time.
            latency_hist.observe(now - min(submit_ts))
        counter = flush_counters.get(reason)
        if counter is None:
            counter = flush_counters[reason] = telemetry.registry.counter(
                "forecast_flushes_total", {"reason": reason})
        counter.inc()


class ForecastFlushActor(Actor):
    """Address for the service's linger timers (scheduled messages need an
    actor mailbox; everything else about the service is a direct call)."""

    def __init__(self, service: ForecastService) -> None:
        self.service = service

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, ForecastFlush):
            self.service.on_flush_message(message, ctx)
