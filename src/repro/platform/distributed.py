"""The multi-node platform: Figure 2's topology sharded across nodes.

:class:`DistributedPlatform` assembles one node's share of the platform on
top of a :class:`~repro.cluster.node.ClusterNode`: the vessel, proximity
cell and collision cell actors become *sharded entities* (consistent-hash
shards spread over the cluster, exactly Akka cluster sharding's role in
the paper), while the writer and flow actors stay node-local — each node
persists the states and events of the actors it hosts, and the forecasting
model is mounted **once per node** and shared by that node's vessel actors
("the model is mounted only once in memory for each computational node",
Section 3).

The seed node additionally runs the broker and the ingestion service; a
vessel's position reports reach its actor wherever the shard table placed
it. After a node loss the seed replays the tail of every AIS partition
from the committed offsets (:meth:`Consumer.seek`) so reassigned vessel
actors rebuild their history windows — the loss window is then only what
the dead node had accepted but not yet processed.

:class:`LoopbackCluster` packs N such platforms over a deterministic
loopback hub in one process — the harness behind the cluster tests and the
distributed Figure 6 measurement. True multi-process TCP runs are driven
by ``examples/run_figure6_cluster.py``.
"""

from __future__ import annotations

import inspect
from typing import Iterable

from repro.ais.fleet import MessageBatch
from repro.ais.message import AISMessage
from repro.cluster import (
    ClusterConfig,
    ClusterNode,
    LoopbackHub,
    VirtualClock,
    run_cluster_until_idle,
)
from repro.kvstore import KeyValueStore, PubSub
from repro.models.base import RouteForecaster
from repro.models.kinematic import LinearKinematicModel
from repro.platform.api import MiddlewareAPI
from repro.platform.checkpoint import (
    ClusterCheckpoint,
    capture_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.platform.cell_actor import (
    CollisionCellActor,
    CollisionCellRouter,
    FlowActor,
    ProximityCellActor,
)
from repro.platform.config import PlatformConfig
from repro.platform.ingestion import IngestionService
from repro.platform.messages import (
    PositionIngested,
    PruneTick,
    RestoreState,
)
from repro.platform.pipeline import (
    PlatformWiring,
    build_forecast_service,
    build_route_optimizer,
)
from repro.platform.vessel_actor import VesselActor
from repro.platform.writer_actor import WriterPool
from repro.streams import (
    Broker,
    ConsumerGroup,
    PositionBlock,
    Producer,
    TopicConfig,
)
from repro.telemetry import Telemetry, complete_traces, merge_traces


class DistributedPlatform:
    """One node's slice of the clustered maritime platform."""

    def __init__(self, node: ClusterNode,
                 forecaster: RouteForecaster | None = None,
                 config: PlatformConfig | None = None,
                 is_seed: bool = False,
                 replay_records_per_partition: int = 500) -> None:
        self.node = node
        self.system = node.system
        self.config = config or PlatformConfig()
        self.is_seed = is_seed
        self.replay_records_per_partition = replay_records_per_partition

        self.broker = Broker()
        self.broker.create_topic(TopicConfig(
            self.config.ais_topic,
            num_partitions=self.config.ais_partitions))
        if self.config.output_topics:
            self.broker.create_topic(TopicConfig(
                self.config.output_state_topic, num_partitions=4))
            for kind in ("proximity", "collision", "switchoff"):
                self.broker.create_topic(TopicConfig(
                    f"{self.config.output_event_topic_prefix}.{kind}",
                    num_partitions=1))
        self.kvstore = KeyValueStore()
        self.pubsub = PubSub()
        self.producer = Producer(self.broker)

        forecaster = forecaster or LinearKinematicModel()
        min_history = getattr(forecaster, "min_history", 1)
        supports_padding = "pad" in inspect.signature(
            forecaster.forecast).parameters
        self.wiring = PlatformWiring(
            config=self.config, system=self.system, broker=self.broker,
            kvstore=self.kvstore, pubsub=self.pubsub, forecaster=forecaster,
            forecaster_min_history=min_history,
            supports_padding=supports_padding)
        # Per-node Figure 6 instrumentation: sample vessel-actor deliveries,
        # with this node's vessel population as the default x value
        # (LoopbackCluster overrides it with the cluster-wide count).
        self.system.population_fn = lambda: len(self.wiring.vessel_router)
        self.system.metrics_filter = lambda name: name.startswith("vessel-")

        wiring = self.wiring
        wiring.vessel_router = node.register_entity(
            "vessel", lambda mmsi: VesselActor(mmsi, wiring))
        wiring.cell_router = node.register_entity(
            "cell", lambda cell: ProximityCellActor(cell, wiring))
        wiring.collision_router = node.register_entity(
            "collision", lambda cell: CollisionCellActor(cell, wiring),
            local_router=CollisionCellRouter(
                node.system, "collision",
                lambda cell: CollisionCellActor(cell, wiring), wiring))
        wiring.writer_ref = WriterPool(wiring, self.config.writer_pool_size)
        wiring.flow_ref = self.system.spawn(
            lambda: FlowActor(wiring), "vtff")
        wiring.forecast_service = build_forecast_service(wiring)
        wiring.route_optimizer = build_route_optimizer(wiring)

        self.ingestion: IngestionService | None = None
        if is_seed:
            self.ingestion = IngestionService(wiring)
            # Feed the broker backlog into this node's LoadReports so the
            # leader's rebalancer sees ingest pressure, not just actor load.
            node.consumer_lag_fn = lambda: self.ingestion.lag
        self.api = MiddlewareAPI(self.kvstore, self.pubsub, self)

        self.telemetry: Telemetry | None = None
        if self.config.record_telemetry:
            self.telemetry = Telemetry(
                node.node_id, clock=node.clock,
                trace_sample_every=self.config.trace_sample_every)
            node.bind_telemetry(self.telemetry)
            if self.ingestion is not None:
                # Consumer lag only exists on the seed (sole ingester).
                self.telemetry.registry.gauge(
                    "broker_consumer_lag", fn=lambda: self.ingestion.lag)

        self._replay_generation = 0
        self._replays_done = 0
        # Committed offsets captured at the first pending *no-loss* table
        # change (rebalance/join/drain). None means any pending replay must
        # use the bounded-depth path (a node died with unprocessed input).
        self._suffix_offsets: dict[int, int] | None = None
        node.on_table_change.append(self._on_table_change)
        node.register_control("platform_stats",
                              lambda params: self.stats())
        node.register_control("metrics_snapshot",
                              lambda params: self.metrics_snapshot())
        node.register_control("telemetry_snapshot",
                              lambda params: self.telemetry_snapshot())
        node.register_control("sync_clock",
                              lambda params: self.sync_clock(params["now"]))
        node.register_control("flush_writers",
                              lambda params: self.flush_writers())
        node.register_control("flush_forecasts",
                              lambda params: self.flush_forecasts())
        node.register_control("flush_plans",
                              lambda params: self.flush_plans())

    # -- publishing (seed only) ------------------------------------------------------

    def _require_seed(self) -> None:
        if not self.is_seed:
            raise RuntimeError("only the seed node ingests the AIS stream")

    def publish_messages(self, messages: Iterable[AISMessage]) -> int:
        self._require_seed()
        count = 0
        for msg in messages:
            self.producer.send(self.config.ais_topic, msg.mmsi, msg, msg.t)
            count += 1
        return count

    def publish_batch(self, batch: MessageBatch) -> int:
        self._require_seed()
        block = PositionBlock(mmsi=batch.mmsi, t=batch.t, lat=batch.lat,
                              lon=batch.lon, sog=batch.sog, cog=batch.cog)
        return self.producer.send_block(self.config.ais_topic, block)

    # -- ingestion & replay ----------------------------------------------------------

    def ingest_available(self, max_rounds: int = 1_000_000) -> int:
        """Drain the AIS topic into the (possibly remote) vessel actors.

        Unlike the single-node :meth:`Platform.process_available`, this does
        *not* run dispatchers — the caller pumps the cluster (loopback) or
        lets worker threads drain mailboxes (TCP/threaded).
        """
        self._require_seed()
        total = 0
        for _ in range(max_rounds):
            dispatched = self.ingestion.poll_once()
            if dispatched == 0 and self.ingestion.lag == 0:
                break
            total += dispatched
        return total

    def _on_table_change(self, old, new) -> None:
        if not self.is_seed or old.assignment == new.assignment:
            return
        removed = set(old.nodes) - set(new.nodes)
        alive = set(self.node.membership.alive_ids())
        if removed and not removed <= alive:
            # A shard owner died: whatever it had accepted but not
            # processed is gone, so only the bounded-depth replay can
            # rebuild reassigned actors. Supersedes any pending suffix.
            self._suffix_offsets = None
        elif not self.replay_pending:
            # No-loss reshuffle (rebalance, join, drain): migrated actors
            # carried their state across, so replaying the suffix past the
            # offsets committed *before* this change covers exactly the
            # records that may have raced the handoff.
            topic = self.config.ais_topic
            self._suffix_offsets = {
                partition: self.broker.committed("platform", topic,
                                                 partition)
                for partition in range(self.config.ais_partitions)}
        self._replay_generation += 1

    @property
    def replay_pending(self) -> bool:
        return self.is_seed and self._replay_generation > self._replays_done

    def replay_if_needed(self) -> int:
        """After a shard reassignment, replay the tail of every AIS
        partition from just before the committed offset.

        Reassigned vessel actors spawn fresh on their new owner and rebuild
        their downsampled history windows from the replayed records; actors
        that never moved drop the duplicates as stale (the vessel actor's
        timestamp monotonicity check). Returns the number of replayed
        records dispatched.

        When every pending change was *no-loss* (live rebalance, join,
        drain — migrated actors carried their state across), only the
        stream suffix past the offsets committed before the first change
        is replayed instead of the fixed per-partition depth.
        """
        if not self.replay_pending:
            return 0
        self._replays_done = self._replay_generation
        offsets, self._suffix_offsets = self._suffix_offsets, None
        if offsets is not None:
            return self._replay(f"replay-suffix-{self._replays_done}",
                                depth=None, offsets=offsets)
        return self._replay(f"replay-{self._replays_done}",
                            depth=self.replay_records_per_partition)

    def replay_from_start(self) -> int:
        """Replay every AIS partition from offset 0 through the normal
        sharded routing path (:meth:`Consumer.seek` to the beginning).

        This is the strongest recovery action the platform offers — and
        the oracle behind the sim harness's no-acknowledged-loss
        invariant: after a full replay, every vessel actor must hold the
        newest acknowledged position regardless of what the network did.
        """
        self._require_seed()
        self._replays_done = self._replay_generation
        self._suffix_offsets = None
        return self._replay("replay-full", depth=None)

    def replay_from_offsets(self, offsets: dict[int, int],
                            group_id: str = "replay-checkpoint") -> int:
        """Replay only the stream **suffix** past checkpointed offsets.

        ``offsets`` maps partition -> first offset to re-dispatch (the
        per-partition committed offsets a checkpoint recorded). This is
        the cheap half of checkpointed recovery: actor state comes from
        snapshots, and only records the checkpoint had not yet covered are
        re-routed — strictly fewer than :meth:`replay_from_start`
        re-dispatches whenever the checkpoint made any progress.
        """
        self._require_seed()
        return self._replay(group_id, depth=None, offsets=offsets)

    def _replay(self, group_id: str, depth: int | None,
                offsets: dict[int, int] | None = None) -> int:
        """Re-dispatch committed records per partition to the vessel
        routers: the last ``depth`` of them, everything when ``depth`` is
        None, or the suffix from explicit per-partition ``offsets``."""
        topic = self.config.ais_topic
        group = ConsumerGroup(self.broker, group_id, topic)
        consumer = group.join()   # sole member: assigned every partition
        for partition in consumer.assignment:
            if offsets is not None:
                consumer.seek(topic, partition, offsets.get(partition, 0))
            elif depth is None:
                consumer.seek(topic, partition, 0)
            else:
                committed = self.broker.committed("platform", topic,
                                                  partition)
                consumer.seek(topic, partition, max(0, committed - depth))
        replayed = 0
        buffer: list = []   # reused across polls (no per-poll allocation)
        while True:
            records = consumer.poll(max_records=2_000, out=buffer)
            if not records:
                break
            for record in records:
                if isinstance(record.value, AISMessage):
                    self.wiring.vessel_router.tell(
                        record.value.mmsi, PositionIngested(record.value))
                    replayed += 1
                elif isinstance(record.value, PositionBlock):
                    block = record.value
                    for i in range(len(block)):
                        msg = AISMessage(
                            mmsi=int(block.mmsi[i]), t=float(block.t[i]),
                            lat=float(block.lat[i]), lon=float(block.lon[i]),
                            sog=float(block.sog[i]), cog=float(block.cog[i]))
                        self.wiring.vessel_router.tell(
                            msg.mmsi, PositionIngested(msg))
                        replayed += 1
        consumer.close()
        return replayed

    # -- housekeeping / clock ---------------------------------------------------------

    def housekeeping(self) -> None:
        """Prune this node's spatial actors (local shards only — every node
        housekeeps its own)."""
        tick = PruneTick(now=self.system.now)
        for cell in self.wiring.cell_router.known_keys():
            self.wiring.cell_router.tell(cell, tick)
        for cell in self.wiring.collision_router.known_keys():
            self.wiring.collision_router.tell(cell, tick)

    def sync_clock(self, now: float) -> dict:
        """Advance this node's virtual clock to stream time ``now`` (the
        seed broadcasts it so scheduled housekeeping fires cluster-wide)."""
        if now > self.system.now:
            self.system.advance_time(now - self.system.now)
        return {"now": self.system.now}

    # -- introspection ----------------------------------------------------------------

    @property
    def vessel_count(self) -> int:
        """Vessel actors hosted on *this* node."""
        return len(self.wiring.vessel_router)

    def event_count(self, kind: str) -> int:
        return self.kvstore.llen(f"events:{kind}", now=self.system.now)

    def flush_writers(self) -> dict:
        """Tell every writer shard to flush its micro-batch (async; pump
        the cluster afterwards). Exposed as the ``flush_writers`` control
        op so the seed can flush remote nodes before reading event
        counts."""
        self.wiring.writer_ref.flush()
        return {"shards": self.wiring.writer_ref.size}

    def flush_forecasts(self) -> dict:
        """Execute this node's pending pooled forecast batch (the
        ``flush_forecasts`` control op). Drivers flush forecasts on every
        node and settle *before* flushing writers, so the deferred state
        updates the ForecastReady fan-out emits still make the same
        writer-flush barrier."""
        service = self.wiring.forecast_service
        return {"flushed": service.flush() if service is not None else 0}

    def flush_plans(self) -> dict:
        """Execute this node's pending pooled planning batch (the
        ``flush_plans`` control op). Flushed and settled *before* the
        writers, like forecasts: PlanReady replies can emit voyage
        events that must make the same writer-flush barrier."""
        service = self.wiring.route_optimizer
        return {"flushed": service.flush() if service is not None else 0}

    def assign_voyage(self, mmsi: int, waypoints, deadline_t: float,
                      base_speed_kn: float | None = None) -> None:
        """Route a voyage assignment to wherever the vessel's twin is
        sharded (async; pump the cluster afterwards)."""
        if not self.config.voyage_optimization:
            raise RuntimeError(
                "voyage_optimization is disabled in this PlatformConfig")
        from repro.platform.messages import VoyageAssigned
        self.wiring.vessel_router.tell(mmsi, VoyageAssigned(
            mmsi=mmsi,
            waypoints=tuple((float(lat), float(lon))
                            for lat, lon in waypoints),
            deadline_t=deadline_t, base_speed_kn=base_speed_kn))

    def export_outputs(self) -> dict:
        """Snapshot this node's durably written KV outputs (event logs,
        vessel state rows) for hand-off during a graceful scale-in. The
        caller flushes writers and settles first so pending micro-batches
        are included."""
        return self.kvstore.snapshot_state()

    def absorb_outputs(self, outputs: dict) -> int:
        """Fold a retiring peer's :meth:`export_outputs` snapshot into
        this node's KV store (lists append, newer local rows win — see
        :meth:`KeyValueStore.merge_state`). Returns the merged key count."""
        return self.kvstore.merge_state(outputs, now=self.system.now)

    def stats(self) -> dict:
        writer_pool = self.wiring.writer_ref
        counters = dict(self.node.stats())
        counters.update({
            "vessels_local": self.vessel_count,
            "cells_local": len(self.wiring.cell_router),
            "collision_cells_local": len(self.wiring.collision_router),
            "states_written": writer_pool.states_written,
            "events_written": writer_pool.events_written,
            "writer_flushes": writer_pool.flushes,
            "events_proximity": self.event_count("proximity"),
            "events_collision": self.event_count("collision"),
        })
        return counters

    def flow_snapshot(self):
        """This node's traffic-flow aggregation state (an ``IndirectVTFF``
        over the forecasts of locally-hosted vessel actors)."""
        return self.system.ask_sync(self.wiring.flow_ref, "snapshot")

    def metrics_snapshot(self) -> dict:
        if self.system.metrics is None:
            return {"samples": 0}
        return self.system.metrics.snapshot()

    def telemetry_snapshot(self) -> dict:
        """This node's metrics + trace hops (``{"enabled": False}`` when
        telemetry recording is off)."""
        if self.telemetry is None:
            return {"enabled": False}
        snap = self.telemetry.snapshot()
        snap["enabled"] = True
        return snap

    def shutdown(self) -> None:
        self.node.shutdown()


class LoopbackCluster:
    """N deterministic :class:`DistributedPlatform` nodes in one process.

    All transports share one :class:`LoopbackHub` and one virtual wall
    clock, so every run — including membership timeouts and shard handoff —
    is exactly reproducible with no threads and no sleeps.
    """

    def __init__(self, num_nodes: int = 2,
                 forecaster_factory=None,
                 config: PlatformConfig | None = None,
                 cluster_config: ClusterConfig | None = None,
                 record_metrics: bool = False,
                 replay_records_per_partition: int = 500,
                 hub: LoopbackHub | None = None,
                 clock: VirtualClock | None = None) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        # Both the hub and the clock are injectable so repro.sim can swap
        # in its fault-injecting SimHub and share the scenario's timeline.
        self.hub = hub if hub is not None else LoopbackHub()
        self.clock = clock if clock is not None else VirtualClock()
        self.cluster_config = cluster_config or ClusterConfig()
        self.nodes: list[ClusterNode] = []
        self.platforms: list[DistributedPlatform] = []
        self._platform_config = config
        self._record_metrics = record_metrics
        self._replay_records_per_partition = replay_records_per_partition
        self._forecaster_factory = forecaster_factory or LinearKinematicModel
        for i in range(num_nodes):
            self._spawn_node(f"node-{i:02d}", is_seed=(i == 0))
        seed = self.nodes[0]
        for node in self.nodes[1:]:
            node.join(seed.node_id, seed.transport.address)
        self.settle()

    @property
    def _wall(self) -> float:
        return self.clock.now

    def _spawn_node(self, node_id: str, is_seed: bool) -> DistributedPlatform:
        node = ClusterNode(node_id, self.hub.transport(node_id),
                           config=self.cluster_config,
                           system_mode="deterministic",
                           record_metrics=self._record_metrics,
                           clock=self.clock)
        node.start()
        platform = DistributedPlatform(
            node, forecaster=self._forecaster_factory(),
            config=self._platform_config, is_seed=is_seed,
            replay_records_per_partition=self._replay_records_per_partition)
        self.nodes.append(node)
        self.platforms.append(platform)
        return platform

    @property
    def seed(self) -> DistributedPlatform:
        return self.platforms[0]

    # -- driving ---------------------------------------------------------------------

    def settle(self, max_rounds: int = 100_000) -> int:
        """Run the whole cluster to quiescence (frames + mailboxes)."""
        return run_cluster_until_idle(self.nodes, self.hub,
                                      max_rounds=max_rounds)

    def process_available(self) -> int:
        """Seed-ingest everything published, pump to idle, sync clocks and
        serve any pending post-handoff replay."""
        total = 0
        while True:
            dispatched = self.seed.ingestion.poll_once()
            total += dispatched
            self.settle()
            if dispatched == 0 and self.seed.ingestion.lag == 0:
                break
        replayed = self.seed.replay_if_needed()
        if replayed:
            self.settle()
        now = self.seed.system.now
        for platform in self.platforms[1:]:
            platform.sync_clock(now)
        self.settle()
        self.flush_writers()
        return total

    def flush_writers(self) -> None:
        """Flush every node's pooled forecast batches, then the writer
        micro-batches, settling between the phases — so KV reads observe
        everything processed so far, including the deferred state updates
        that ride on the forecast replies."""
        for platform in self.platforms:
            platform.flush_forecasts()
        self.settle()
        for platform in self.platforms:
            platform.flush_plans()
        self.settle()
        for platform in self.platforms:
            platform.flush_writers()
        self.settle()

    def assign_voyage(self, mmsi: int, waypoints, deadline_t: float,
                      base_speed_kn: float | None = None) -> None:
        """Assign a voyage through the seed's sharded router and settle,
        so the twin holds the assignment wherever it lives."""
        self.seed.assign_voyage(mmsi, waypoints, deadline_t,
                                base_speed_kn=base_speed_kn)
        self.settle()

    def tick(self, dt_s: float) -> None:
        """Advance the shared wall clock, running every node's heartbeat /
        failure-detection tick along the way.

        The jump is subdivided into heartbeat-interval steps with frame
        delivery between them — one big step would silence *live* nodes
        past the failure thresholds too (their heartbeats only travel when
        the hub is pumped) and falsely down them.
        """
        step = self.cluster_config.heartbeat_interval_s
        remaining = dt_s
        while remaining > 0:
            self.clock.advance(min(step, remaining))
            for node in self.nodes:
                node.tick()
            self.settle()
            remaining -= step

    def kill(self, index: int) -> str:
        """Crash a node abruptly: its frames are dropped and peers find out
        through the failure detector."""
        if index == 0:
            raise ValueError("killing the seed would take the broker with "
                             "it; kill a worker node instead")
        node = self.nodes.pop(index)
        platform = self.platforms.pop(index)
        self.hub.disconnect(node.node_id)
        node._closed = True
        platform_id = node.node_id
        return platform_id

    def restart(self, node_id: str) -> DistributedPlatform:
        """Bring a previously-killed node back under its *original* id.

        The rejoin is a fresh incarnation (empty actor state, new
        membership entry); peers that declared the old incarnation DOWN
        re-admit it and the coordinator reshuffles shards back. Vessel
        history is rebuilt by the seed's post-handoff replay.
        """
        if any(n.node_id == node_id for n in self.nodes):
            raise ValueError(f"{node_id} is already running")
        platform = self._spawn_node(node_id, is_seed=False)
        seed = self.nodes[0]
        platform.node.join(seed.node_id, seed.transport.address)
        self.settle()
        return platform

    # -- elastic scaling ---------------------------------------------------------------

    def add_node(self, node_id: str | None = None) -> DistributedPlatform:
        """Grow the cluster live: spawn a fresh worker and join it.

        The coordinator reshuffles shards onto the newcomer with
        state-preserving handoff; the seed then serves a suffix-only
        replay for records that raced the migration.
        """
        if node_id is None:
            used = {n.node_id for n in self.nodes}
            i = len(self.nodes)
            while f"node-{i:02d}" in used:
                i += 1
            node_id = f"node-{i:02d}"
        return self.restart(node_id)

    def drain(self, node_id: str) -> str:
        """Gracefully retire a worker: announce ``Draining`` so the
        coordinator evacuates its shards (live state transfer), serve the
        suffix replay, then let the empty node leave. Returns the retired
        node id."""
        index = next((i for i, n in enumerate(self.nodes)
                      if n.node_id == node_id), None)
        if index is None:
            raise ValueError(f"unknown node {node_id}")
        if index == 0:
            raise ValueError("the seed node cannot drain (it owns the "
                             "broker and the ingestion service)")
        node = self.nodes[index]
        platform = self.platforms[index]
        node.drain()
        self.settle()
        replayed = self.seed.replay_if_needed()
        if replayed:
            self.settle()
        # A graceful scale-in must not lose what the node durably wrote
        # (its event logs and last state rows live in its own KV): flush
        # its writer pool, then fold the KV contents into the seed. The
        # entity actors migrated out with their dedup state intact, so
        # nothing will ever re-emit these events.
        platform.flush_forecasts()
        self.settle()
        platform.flush_plans()
        self.settle()
        platform.flush_writers()
        self.settle()
        self.seed.absorb_outputs(platform.export_outputs())
        node.leave()
        self.settle()
        self.nodes.pop(index)
        platform = self.platforms.pop(index)
        self.hub.disconnect(node.node_id)
        platform.shutdown()
        return node.node_id

    def autoscale_step(self) -> dict | None:
        """Execute the leader's pending autoscaling recommendation, if
        any: ``add`` spawns a worker, ``drain`` retires the named one.
        Returns the executed decision (with the affected node id) or
        None."""
        for node in self.nodes:
            decision = node.rebalancer.autoscaler.take_decision()
            if decision is None:
                continue
            if decision["action"] == "add":
                decision["node_id"] = self.add_node().node.node_id
            else:
                self.drain(decision["node_id"])
            return decision
        return None

    # -- checkpointed recovery ---------------------------------------------------------

    def checkpoint(self, directory: str | None = None) -> ClusterCheckpoint:
        """Capture a recovery anchor at a quiescent boundary.

        Flushes every writer's micro-batch first so the KV snapshots hold
        everything processed so far, then captures per-node KV + entity
        state together with the seed's committed stream offsets. Pass
        ``directory`` to also persist it (``checkpoint.pkl``).
        """
        self.flush_writers()   # settles the cluster as a side effect
        checkpoint = capture_checkpoint(self.platforms)
        if directory is not None:
            write_checkpoint(checkpoint, directory)
        return checkpoint

    def recover(self, node_id: str,
                checkpoint: ClusterCheckpoint | str
                ) -> tuple[DistributedPlatform, int]:
        """Bring a killed node back from a checkpoint.

        Instead of :meth:`restart`'s rebuild-by-replay, the recovery path
        (1) restarts the node and suppresses the post-handoff bounded
        replay, (2) restores the node's KV store from its snapshot,
        (3) routes every checkpointed entity state through the sharded
        routers as :class:`RestoreState` (actors adopt only what is newer
        than their own state, so entities rebuilt elsewhere keep theirs),
        and (4) replays only the stream **suffix** past the checkpointed
        offsets. Returns ``(platform, replayed_record_count)``.
        """
        if isinstance(checkpoint, str):
            checkpoint = load_checkpoint(checkpoint)
        seed = self.seed
        t0 = self.clock.now
        platform = self.restart(node_id)
        # The checkpoint replaces the generic post-handoff replay.
        seed._replays_done = seed._replay_generation
        seed._suffix_offsets = None

        node_checkpoint = checkpoint.node(node_id)
        if node_checkpoint is not None:
            platform.kvstore.restore_state(node_checkpoint.kv_state)
        routers = {"vessel": seed.wiring.vessel_router,
                   "cell": seed.wiring.cell_router,
                   "collision": seed.wiring.collision_router}
        restored = 0
        # Every checkpointed entity is offered back through normal routing:
        # shards may sit anywhere after the kill/restart reshuffles, and
        # the adopt-if-newer guards make stale offers a no-op.
        for node_ckpt in checkpoint.nodes:
            for entity, key, state in node_ckpt.entities:
                routers[entity].tell(key, RestoreState(
                    entity=entity, key=key, state=state))
                restored += 1
        self.settle()
        replayed = seed.replay_from_offsets(checkpoint.offsets)
        self.settle()
        self.flush_writers()
        if seed.telemetry is not None:
            registry = seed.telemetry.registry
            registry.counter("recoveries_total").inc()
            registry.gauge("recovery_duration_seconds").set(
                self.clock.now - t0)
            registry.gauge("recovery_replayed_records").set(replayed)
            registry.gauge("recovery_entities_restored").set(restored)
        return platform, replayed

    # -- cluster-wide views ------------------------------------------------------------

    def vessel_distribution(self) -> dict[str, int]:
        return {p.node.node_id: p.vessel_count for p in self.platforms}

    @property
    def total_vessels(self) -> int:
        return sum(p.vessel_count for p in self.platforms)

    def event_count(self, kind: str) -> int:
        return sum(p.event_count(kind) for p in self.platforms)

    def stats(self) -> list[dict]:
        return [p.stats() for p in self.platforms]

    def metrics_snapshots(self) -> dict[str, dict]:
        return {p.node.node_id: p.metrics_snapshot()
                for p in self.platforms}

    def telemetry_snapshot(self) -> dict:
        """Cluster-wide telemetry: per-node snapshots plus the cross-node
        trace merge (hops ordered by timestamp/stage) and the subset of
        traces that completed the ingest -> vessel -> cell pipeline across
        at least two nodes."""
        per_node = {p.node.node_id: p.telemetry_snapshot()
                    for p in self.platforms}
        merged = merge_traces(
            {node_id: snap.get("traces", {})
             for node_id, snap in per_node.items() if snap.get("enabled")})
        min_nodes = 2 if len(self.platforms) > 1 else 1
        return {
            "nodes": per_node,
            "traces_merged": merged,
            "traces_complete": complete_traces(merged, min_nodes=min_nodes),
        }

    def use_cluster_population(self) -> None:
        """Make every node's Figure 6 samples use the *cluster-wide* vessel
        count as the x value (only possible in-process)."""
        for platform in self.platforms:
            platform.system.population_fn = lambda: self.total_vessels

    def shutdown(self) -> None:
        for platform in self.platforms:
            platform.shutdown()
