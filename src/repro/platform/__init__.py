"""The integrated maritime digital-twin platform (Section 3, Figure 2).

This package wires the substrates into the paper's architecture:

* an **ingestion service** consumes streaming AIS data from the broker,
* a :class:`~repro.actors.router.KeyRouter` creates one **vessel actor** per
  MMSI; vessel actors hold per-vessel state, apply the 30-second
  downsampling, and run the short-term route forecasting model that is
  *mounted once per node and shared by every vessel actor*,
* positional data fans out to **cell actors** (H3 cells, proximity
  detection) and forecasts to **collision actors** (H3 cells, collision
  forecasting); both communicate detected events back to the affected
  vessel actors,
* vessel forecasts also feed the **traffic-flow aggregation** (VTFF),
* a single **writer actor** persists actor states and events into the KV
  store, from which the **middleware API** serves the UI.

Entry points: :class:`repro.platform.pipeline.Platform` (single node) and
:class:`repro.platform.distributed.DistributedPlatform` (one node of a
sharded cluster; see :mod:`repro.cluster`).
"""

from repro.platform.config import PlatformConfig
from repro.platform.pipeline import Platform
from repro.platform.api import MiddlewareAPI
from repro.platform.distributed import DistributedPlatform, LoopbackCluster

__all__ = [
    "DistributedPlatform",
    "LoopbackCluster",
    "MiddlewareAPI",
    "Platform",
    "PlatformConfig",
]
