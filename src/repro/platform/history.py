"""Preallocated per-vessel history storage.

Each vessel actor keeps its recent downsampled track in a
:class:`HistoryRing` — parallel ``(t, lat, lon, sog, cog)`` float64 arrays
with a sliding start index — instead of a deque of ``Position`` objects.
The forecast hot path then assembles its displacement window from
contiguous array views with no per-call ``list(...)`` / ``np.array``
rebuilds, which is what lets :class:`~repro.platform.forecast_service.
ForecastService` feed the pooled model cheaply.

Missing SOG/COG values are stored as NaN and surfaced back as ``None``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.track import Position


class HistoryRing:
    """A bounded track of the last ``capacity`` fixes, oldest first.

    Backed by a ``2 * capacity``-row buffer compacted on wrap, so appends
    are O(1) amortised and the live window is always one contiguous slice
    (``numpy`` views, never copies).
    """

    __slots__ = ("capacity", "_buf", "_start", "_end")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("history ring needs capacity >= 1")
        self.capacity = capacity
        self._buf = np.empty((2 * capacity, 5))
        self._start = 0
        self._end = 0

    def __len__(self) -> int:
        return self._end - self._start

    def append(self, t: float, lat: float, lon: float,
               sog: float | None, cog: float | None) -> None:
        if self._end == self._buf.shape[0]:
            # Compact the newest `capacity` rows back to the front.
            keep = self.capacity
            self._buf[:keep] = self._buf[self._end - keep:self._end]
            self._start, self._end = 0, keep
        row = self._buf[self._end]
        row[0] = t
        row[1] = lat
        row[2] = lon
        row[3] = math.nan if sog is None else sog
        row[4] = math.nan if cog is None else cog
        self._end += 1
        if self._end - self._start > self.capacity:
            self._start += 1

    @property
    def last_t(self) -> float:
        """Timestamp of the newest fix (``-inf`` when empty)."""
        if self._end == self._start:
            return float("-inf")
        return float(self._buf[self._end - 1, 0])

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Views of the live ``(t, lat, lon)`` columns, oldest first."""
        live = self._buf[self._start:self._end]
        return live[:, 0], live[:, 1], live[:, 2]

    # -- Position interop (checkpoint export/restore, tests) ------------------

    def last_position(self) -> Position:
        if self._end == self._start:
            raise IndexError("history ring is empty")
        t, lat, lon, sog, cog = self._buf[self._end - 1]
        return Position(t=float(t), lat=float(lat), lon=float(lon),
                        sog=None if math.isnan(sog) else float(sog),
                        cog=None if math.isnan(cog) else float(cog))

    def positions(self) -> list[Position]:
        out = []
        for i in range(self._start, self._end):
            t, lat, lon, sog, cog = self._buf[i]
            out.append(Position(t=float(t), lat=float(lat), lon=float(lon),
                                sog=None if math.isnan(sog) else float(sog),
                                cog=None if math.isnan(cog) else float(cog)))
        return out

    @classmethod
    def from_positions(cls, positions, capacity: int) -> "HistoryRing":
        ring = cls(capacity)
        for p in positions:
            ring.append(p.t, p.lat, p.lon, p.sog, p.cog)
        return ring
