"""Pooled per-node voyage replanning.

The rolling-horizon replanner is shaped exactly like the node's
:class:`~repro.platform.forecast_service.ForecastService`: vessel actors
:meth:`submit` a replan request instead of planning inline, requests pool
per node, and the batch executes after ``voyage_batch_max`` vessels or a
``voyage_linger_s`` virtual-time linger — then every requesting vessel
gets its :class:`~repro.platform.messages.PlanReady` reply in row
(submission) order.

Each plan is a pure function of ``(weather seed, route, deadline,
sample_t)`` via :func:`repro.models.voyage.plan_voyage` — pooling changes
*when* plans are computed, never what they contain, which is what lets
the fault-injection campaign compare plan fingerprints across crash
recovery and live shard migration.

The service is a plain shared object under a lock (not an actor); only
the linger timer runs through :class:`PlanFlushActor` because scheduled
messages need an actor address.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.actors import Actor, ActorContext
from repro.models.fuel import FuelModel
from repro.models.voyage import Waypoint, plan_voyage
from repro.platform.messages import PlanFlush, PlanReady
from repro.weather.forecast import ForecastingWeatherField

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class RouteOptimizerService:
    """Per-node pooling of vessel replan requests into planning batches."""

    def __init__(self, wiring: "PlatformWiring") -> None:
        self.wiring = wiring
        config = wiring.config
        self.batch_max = config.voyage_batch_max
        self.linger_s = config.voyage_linger_s
        self.field: ForecastingWeatherField = wiring.weather
        self.fuel_model: FuelModel = wiring.fuel_model
        self._mmsis: list[int] = []
        self._origins: list[Waypoint] = []
        self._routes: list[tuple[Waypoint, ...]] = []
        self._deadlines: list[float] = []
        self._speeds: list[float] = []
        self._sample_ts: list[float] = []
        self._submit_ts: list[float] = []
        self._lock = threading.RLock()
        #: Flush generation (stale linger timers are ignored, same scheme
        #: as the writer shards and the forecast service).
        self._seq = 0
        self._timer_armed = False
        #: Spawned by the platform wiring (timers need an actor address).
        self.flush_ref = None
        self.batches_executed = 0
        self.requests_pooled = 0
        self.plans_failed = 0
        self._tel_instruments: tuple | None = None

    # -- submission -----------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._mmsis)

    def submit(self, mmsi: int, origin: Waypoint,
               waypoints: tuple[Waypoint, ...], deadline_t: float,
               base_speed_kn: float, sample_t: float,
               ctx: ActorContext) -> None:
        """Queue one vessel's replan request; the plan comes back as a
        :class:`PlanReady` message after the pooled batch executes."""
        with self._lock:
            self._mmsis.append(mmsi)
            self._origins.append(origin)
            self._routes.append(waypoints)
            self._deadlines.append(deadline_t)
            self._speeds.append(base_speed_kn)
            self._sample_ts.append(sample_t)
            self._submit_ts.append(self.wiring.system.now)
            self.requests_pooled += 1
            full = len(self._mmsis) >= self.batch_max
            if not full and not self._timer_armed and self.linger_s > 0:
                self._timer_armed = True
                ctx.schedule(self.linger_s, self.flush_ref,
                             PlanFlush(reason="linger", seq=self._seq))
        if full:
            self.flush("max_batch")

    # -- flushing -------------------------------------------------------------------

    def on_flush_message(self, message: PlanFlush,
                         ctx: ActorContext) -> None:
        """Linger-timer delivery (via :class:`PlanFlushActor`)."""
        with self._lock:
            self._timer_armed = False
            stale = message.seq is not None and message.seq != self._seq
            if stale and self._mmsis and self.linger_s > 0:
                # A max-batch flush beat this timer but new requests queued
                # behind it: re-arm so the tail still executes.
                self._timer_armed = True
                ctx.schedule(self.linger_s, self.flush_ref,
                             PlanFlush(reason="linger", seq=self._seq))
                return
        if not stale:
            self.flush(message.reason)

    def flush(self, reason: str = "explicit") -> int:
        """Plan every pending request; returns how many plans were
        produced (0 for an empty flush)."""
        with self._lock:
            self._seq += 1
            n = len(self._mmsis)
            if n == 0:
                return 0
            rows = list(zip(self._mmsis, self._origins, self._routes,
                            self._deadlines, self._speeds, self._sample_ts,
                            self._submit_ts))
            self._mmsis, self._origins, self._routes = [], [], []
            self._deadlines, self._speeds = [], []
            self._sample_ts, self._submit_ts = [], []
            self.batches_executed += 1
            config = self.wiring.config
            router = self.wiring.vessel_router
            for mmsi, origin, route, deadline, speed, sample_t, t0 in rows:
                try:
                    plan = plan_voyage(
                        self.field, self.fuel_model, origin, route,
                        sample_t=sample_t, depart_t=sample_t,
                        deadline_t=deadline, base_speed_kn=speed,
                        speed_candidates=config.voyage_speed_candidates,
                        offset_fraction=config.voyage_offset_fraction,
                        sample_step_s=config.voyage_sample_step_s)
                except Exception:
                    # One degenerate route must not sink the batch: the
                    # vessel keeps its previous plan and unblocks.
                    self.plans_failed += 1
                    plan = None
                router.tell(mmsi, PlanReady(plan=plan, t_submitted=t0))
            self._record_telemetry(reason, n, [r[6] for r in rows])
        return n

    # -- telemetry ------------------------------------------------------------------

    def _record_telemetry(self, reason: str, size: int,
                          submit_ts: list[float]) -> None:
        telemetry = self.wiring.system.telemetry
        if telemetry is None:
            return
        if self._tel_instruments is None:
            self._tel_instruments = (
                telemetry.registry.histogram("voyage_batch_size"),
                telemetry.registry.histogram("voyage_plan_latency_s"),
                {r: telemetry.registry.counter(
                    "voyage_flushes_total", {"reason": r})
                 for r in ("max_batch", "linger", "explicit")},
            )
        batch_hist, latency_hist, flush_counters = self._tel_instruments
        batch_hist.observe(size)
        now = self.wiring.system.now
        if submit_ts:
            latency_hist.observe(now - min(submit_ts))
        counter = flush_counters.get(reason)
        if counter is None:
            counter = flush_counters[reason] = telemetry.registry.counter(
                "voyage_flushes_total", {"reason": reason})
        counter.inc()


class PlanFlushActor(Actor):
    """Address for the service's linger timers (scheduled messages need
    an actor mailbox; everything else is a direct call)."""

    def __init__(self, service: RouteOptimizerService) -> None:
        self.service = service

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, PlanFlush):
            self.service.on_flush_message(message, ctx)
