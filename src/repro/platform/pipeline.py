"""Platform assembly: broker + actors + store + API in one object.

:class:`Platform` builds the full Figure 2 topology. Typical use::

    platform = Platform(forecaster=svrf_model)
    platform.publish_messages(messages)      # or publish_nmea(sentences)
    platform.process_available()             # ingest + run actors to idle
    state = platform.api.vessel_state(mmsi)
    events = platform.api.recent_events("collision")
"""

from __future__ import annotations

import inspect

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.actors import ActorSystem, KeyRouter
from repro.ais.fleet import MessageBatch
from repro.ais.message import AISMessage, encode_nmea
from repro.kvstore import KeyValueStore, PubSub
from repro.models.base import RouteForecaster
from repro.models.kinematic import LinearKinematicModel
from repro.platform.api import MiddlewareAPI
from repro.platform.cell_actor import (
    CollisionCellActor,
    CollisionCellRouter,
    FlowActor,
    ProximityCellActor,
)
from repro.events.voyage import VOYAGE_EVENT_KINDS
from repro.platform.config import PlatformConfig
from repro.platform.ingestion import IngestionService
from repro.platform.messages import PruneTick, VoyageAssigned
from repro.platform.vessel_actor import VesselActor
from repro.platform.writer_actor import WriterPool
from repro.streams import Broker, PositionBlock, Producer, TopicConfig
from repro.telemetry import Telemetry


@dataclass
class PlatformWiring:
    """Shared references handed to every actor factory.

    The forecaster here is the paper's "mounted only once in memory"
    model instance: one object serving every vessel actor.
    """

    config: PlatformConfig
    system: ActorSystem
    broker: Broker
    kvstore: KeyValueStore
    pubsub: PubSub
    forecaster: RouteForecaster
    forecaster_min_history: int
    #: Whether the forecaster accepts ``pad=True`` for short histories.
    supports_padding: bool = False
    vessel_router: KeyRouter | None = field(init=False, default=None)
    cell_router: KeyRouter | None = field(init=False, default=None)
    collision_router: KeyRouter | None = field(init=False, default=None)
    writer_ref: object = field(init=False, default=None)
    flow_ref: object = field(init=False, default=None)
    #: Pooled batched-inference service (None: synchronous per-vessel
    #: forecasts, either by configuration or a batch-less forecaster).
    forecast_service: object = field(init=False, default=None)
    #: Voyage-optimization trio (None unless ``voyage_optimization``):
    #: the node's ForecastingWeatherField, its FuelModel, and the pooled
    #: RouteOptimizerService replanning assigned voyages.
    weather: object = field(init=False, default=None)
    fuel_model: object = field(init=False, default=None)
    route_optimizer: object = field(init=False, default=None)


def build_forecast_service(wiring: PlatformWiring):
    """Wire the pooled inference service when enabled and supported.

    Spawns the linger-timer flush actor alongside; returns the service or
    None (callers fall back to synchronous per-vessel forecasts).
    """
    if not wiring.config.forecast_batching:
        return None
    if not hasattr(wiring.forecaster, "forecast_batch"):
        return None
    from repro.platform.forecast_service import (
        ForecastFlushActor,
        ForecastService,
    )
    service = ForecastService(wiring)
    service.flush_ref = wiring.system.spawn(
        lambda: ForecastFlushActor(service), "forecast-flush")
    return service


def build_route_optimizer(wiring: PlatformWiring):
    """Wire the voyage-optimization subsystem when enabled.

    Builds the node's forecast-issuing weather field and fuel model
    (pure functions of the config, hence identical on every node) and
    the pooled :class:`RouteOptimizerService` with its linger-timer
    flush actor. Returns the service or None when disabled.
    """
    config = wiring.config
    if not config.voyage_optimization:
        return None
    from repro.models.fuel import FuelModel
    from repro.platform.route_optimizer import (
        PlanFlushActor,
        RouteOptimizerService,
    )
    from repro.weather.forecast import ForecastingWeatherField
    wiring.weather = ForecastingWeatherField(
        seed=config.weather_seed,
        update_cycle_s=config.weather_update_cycle_s,
        degradation_tau_s=config.weather_degradation_tau_s,
        max_wind_mps=config.weather_max_wind_mps)
    wiring.fuel_model = FuelModel()
    service = RouteOptimizerService(wiring)
    service.flush_ref = wiring.system.spawn(
        lambda: PlanFlushActor(service), "plan-flush")
    return service


class Platform:
    """The integrated maritime digital-twin platform."""

    def __init__(self, forecaster: RouteForecaster | None = None,
                 config: PlatformConfig | None = None,
                 mode: str = "deterministic") -> None:
        self.config = config or PlatformConfig()
        self.system = ActorSystem(name="maritime", mode=mode,
                                  record_metrics=self.config.record_metrics)
        if self.config.record_telemetry:
            # Same bundle the distributed node binds: counters from the
            # writer pool, forecast service, and warehouse compaction all
            # land in one registry. Virtual time keeps replays identical.
            self.system.telemetry = Telemetry(
                "local", clock=lambda: self.system.now,
                trace_sample_every=self.config.trace_sample_every)
        self.broker = Broker()
        self.broker.create_topic(TopicConfig(
            self.config.ais_topic,
            num_partitions=self.config.ais_partitions))
        if self.config.output_topics:
            self.broker.create_topic(TopicConfig(
                self.config.output_state_topic, num_partitions=4))
            kinds = ("proximity", "collision", "switchoff")
            if self.config.voyage_optimization:
                kinds += VOYAGE_EVENT_KINDS
            for kind in kinds:
                self.broker.create_topic(TopicConfig(
                    f"{self.config.output_event_topic_prefix}.{kind}",
                    num_partitions=1))
        self.kvstore = KeyValueStore()
        self.pubsub = PubSub()
        self.producer = Producer(self.broker)

        forecaster = forecaster or LinearKinematicModel()
        min_history = getattr(forecaster, "min_history", 1)
        supports_padding = "pad" in inspect.signature(
            forecaster.forecast).parameters
        self.wiring = PlatformWiring(
            config=self.config, system=self.system, broker=self.broker,
            kvstore=self.kvstore, pubsub=self.pubsub, forecaster=forecaster,
            forecaster_min_history=min_history,
            supports_padding=supports_padding)
        # Figure 6 plots per-AIS-message processing time against the number
        # of distinct MMSIs: sample only vessel-actor deliveries, with the
        # vessel-actor count as the population figure.
        self.system.population_fn = lambda: len(self.wiring.vessel_router)
        self.system.metrics_filter = lambda name: name.startswith("vessel-")

        wiring = self.wiring
        wiring.vessel_router = KeyRouter(
            self.system, "vessel", lambda mmsi: VesselActor(mmsi, wiring))
        wiring.cell_router = KeyRouter(
            self.system, "cell",
            lambda cell: ProximityCellActor(cell, wiring))
        wiring.collision_router = CollisionCellRouter(
            self.system, "collision",
            lambda cell: CollisionCellActor(cell, wiring), wiring)
        wiring.writer_ref = WriterPool(wiring, self.config.writer_pool_size)
        wiring.flow_ref = self.system.spawn(
            lambda: FlowActor(wiring), "vtff")
        wiring.forecast_service = build_forecast_service(wiring)
        wiring.route_optimizer = build_route_optimizer(wiring)

        self.ingestion = IngestionService(wiring)
        self.api = MiddlewareAPI(self.kvstore, self.pubsub, self)

    # -- publishing -----------------------------------------------------------------

    def publish_messages(self, messages: Iterable[AISMessage]) -> int:
        """Feed position reports into the AIS topic (keyed by MMSI)."""
        count = 0
        for msg in messages:
            self.producer.send(self.config.ais_topic, msg.mmsi, msg, msg.t)
            count += 1
        return count

    def publish_batch(self, batch: MessageBatch) -> int:
        """Feed a struct-of-arrays batch through the columnar fast lane:
        the rows travel the broker as one :class:`PositionBlock` record
        per touched partition (no per-row message objects until the
        ingestion service expands them)."""
        block = PositionBlock(mmsi=batch.mmsi, t=batch.t, lat=batch.lat,
                              lon=batch.lon, sog=batch.sog, cog=batch.cog)
        return self.producer.send_block(self.config.ais_topic, block)

    def publish_nmea(self, sentences: Sequence[tuple[str, float]]) -> int:
        """Feed raw ``(sentence, receiver_time)`` pairs (the realistic
        ingest path — parsing happens in the ingestion service)."""
        for sentence, t in sentences:
            # Raw sentences are keyed by content hash (the MMSI is not
            # known until the ingestion service decodes the payload, as in
            # a real receiver feed). Cross-partition reordering is tolerated
            # downstream: vessel actors drop stale fixes by timestamp.
            self.producer.send(self.config.ais_topic, sentence, sentence, t)
        return len(sentences)

    @staticmethod
    def to_nmea(messages: Iterable[AISMessage]) -> list[tuple[str, float]]:
        """Encode messages as the wire format ``publish_nmea`` accepts."""
        return [(encode_nmea(m), m.t) for m in messages]

    # -- processing ------------------------------------------------------------------

    def process_available(self, max_rounds: int = 1_000_000) -> int:
        """Ingest everything published so far and run actors to idle.

        Returns the number of AIS messages dispatched to vessel actors.
        """
        total = 0
        for _ in range(max_rounds):
            dispatched = self.ingestion.poll_once()
            if dispatched == 0 and self.ingestion.lag == 0:
                break
            if self.system.mode == "deterministic":
                self.system.run_until_idle()
            total += dispatched
        if self.system.mode == "threaded":
            self.system.await_idle()
        # Two-phase barrier so the API sees everything processed so far:
        # first close out the pooled forecast batch (its ForecastReady
        # fan-out emits the deferred state updates), then the writers'
        # micro-batches — in that order, or late updates would sit behind
        # an already-consumed WriterFlush until the next linger fires.
        if self.wiring.forecast_service is not None:
            self.wiring.forecast_service.flush()
            self._settle()
        if self.wiring.route_optimizer is not None:
            # Plan replies can emit voyage events, so they must land
            # before the writer flush for the same reason.
            self.wiring.route_optimizer.flush()
            self._settle()
        self.wiring.writer_ref.flush()
        self._settle()
        return total

    def _settle(self) -> None:
        if self.system.mode == "deterministic":
            self.system.run_until_idle()
        else:
            self.system.await_idle()

    def assign_voyage(self, mmsi: int,
                      waypoints: Sequence[tuple[float, float]],
                      deadline_t: float,
                      base_speed_kn: float | None = None) -> None:
        """Assign a voyage to a vessel's twin: sail ``waypoints`` (as
        ``(lat, lon)`` pairs) by ``deadline_t``. Requires
        ``voyage_optimization=True``; the twin replans on the configured
        cadence from then on and emits voyage events through the writer
        pool."""
        if self.wiring.route_optimizer is None:
            raise RuntimeError(
                "voyage_optimization is disabled in this PlatformConfig")
        self.wiring.vessel_router.tell(mmsi, VoyageAssigned(
            mmsi=mmsi,
            waypoints=tuple((float(lat), float(lon))
                            for lat, lon in waypoints),
            deadline_t=deadline_t, base_speed_kn=base_speed_kn))
        self._settle()

    def housekeeping(self) -> None:
        """Broadcast a prune tick to all spatial actors (memory bound)."""
        now = self.system.now
        tick = PruneTick(now=now)
        for cell in self.wiring.cell_router.known_keys():
            self.wiring.cell_router.tell(cell, tick)
        for cell in self.wiring.collision_router.known_keys():
            self.wiring.collision_router.tell(cell, tick)
        if self.system.mode == "deterministic":
            self.system.run_until_idle()

    # -- introspection ----------------------------------------------------------------

    @property
    def vessel_count(self) -> int:
        return len(self.wiring.vessel_router)

    @property
    def cell_actor_count(self) -> int:
        return len(self.wiring.cell_router)

    @property
    def collision_actor_count(self) -> int:
        return len(self.wiring.collision_router)

    @property
    def actor_count(self) -> int:
        return self.system.active_count

    def flow_snapshot(self):
        """The traffic-flow aggregation state (an ``IndirectVTFF``)."""
        return self.system.ask_sync(self.wiring.flow_ref, "snapshot")

    # -- serving replication ------------------------------------------------------------

    def subscribe_replication(self, maxlen: int | None = None):
        """A bounded pub/sub subscription carrying the writer pool's
        replication feed (``repl:*``) for a serving-tier read replica.
        Requires ``serving_replica_feed=True`` in the config."""
        if not self.config.serving_replica_feed:
            raise RuntimeError(
                "serving_replica_feed is disabled in this PlatformConfig")
        if maxlen is None:
            maxlen = self.config.serving_feed_maxlen
        return self.pubsub.subscribe("repl:*", maxlen=maxlen)

    def publish_flow_snapshot(self, windows: Sequence[int] = (1, 2, 3)
                              ) -> None:
        """Replicate the traffic raster: one pub/sub message carrying the
        predicted per-cell flow and heat class for each window. Driven by
        the platform owner at its own cadence (the serving tier reads the
        replicated raster, never the flow actor)."""
        from repro.platform.writer_actor import REPL_FLOW_CHANNEL
        vtff = self.flow_snapshot()
        flow: dict[int, dict[int, int]] = {}
        heat: dict[int, dict[int, str]] = {}
        for window in windows:
            predicted = vtff.predicted_flow(window)
            flow[window] = predicted
            heat[window] = {cell: vtff.grid.classify(count).value
                            for cell, count in predicted.items()}
        self.pubsub.publish(REPL_FLOW_CHANNEL, {
            "t": self.system.now, "flow": flow, "heat": heat})

    # -- warehouse compaction -----------------------------------------------------------

    def compact_warehouse(self, compactor) -> dict:
        """Fold everything journaled so far into ``compactor``'s warehouse.

        The platform-side compaction hook: flushes the writer pool (so
        every processed fix/event has reached the journal), settles the
        actor system, then tails the store's persistence journal past the
        warehouse cursor. Requires a persistence-bound kvstore. When the
        platform records telemetry and the compactor has no registry yet,
        the platform's registry is attached so warehouse counters land
        beside the writer/forecast metrics.
        """
        persistence = self.kvstore.persistence
        if persistence is None:
            raise RuntimeError(
                "compact_warehouse requires a kvstore with bound "
                "persistence (KeyValueStore(persistence=...))")
        self.wiring.writer_ref.flush()
        self._settle()
        telemetry = self.system.telemetry
        if telemetry is not None and compactor._instruments is None:
            compactor.bind_registry(telemetry.registry)
        return compactor.compact_persistence(persistence)

    def shutdown(self) -> None:
        self.system.shutdown()
