"""Spatial actors: proximity cells, collision cells and the flow actor.

"Two additional actor classes are defined on the spatial level utilizing
the H3 spatial index, a class for proximity event detection ... and a class
for collision forecasting ... These actors consume the combined output of
all vessel actors N and determine the state of their respective event
class. ... Based on the final state status, they communicate their state
back to the respective affected subset of vessel actors." (Section 3)
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.actors import Actor, ActorContext
from repro.actors.router import KeyRouter
from repro.events.collision import trajectories_intersect
from repro.events.proximity import ProximityDetector
from repro.events.vtff import IndirectVTFF
from repro.platform.messages import (
    CellObservation,
    CollisionAlert,
    EventRecord,
    ForecastShared,
    ProximityAlert,
    PruneTick,
    RestoreState,
)

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class ProximityCellActor(Actor):
    """One H3 cell's proximity-detection state."""

    def __init__(self, cell: int, wiring: "PlatformWiring") -> None:
        self.cell = cell
        self.wiring = wiring
        self.detector = ProximityDetector(
            distance_threshold_m=wiring.config.proximity_threshold_m,
            debounce_s=wiring.config.event_debounce_s)

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, CellObservation):
            events = self.detector.observe(message.mmsi, message.t,
                                           message.lat, message.lon)
            for event in events:
                alert = ProximityAlert(event=event)
                # Back to the affected vessel actors...
                for mmsi in event.pair:
                    self.wiring.vessel_router.tell(mmsi, alert,
                                                   sender=ctx.self_ref)
                # ...and into the store for the UI event list.
                self.wiring.writer_ref.tell(
                    EventRecord(kind="proximity", t=event.t, payload=event),
                    sender=ctx.self_ref)
        elif isinstance(message, PruneTick):
            self.detector.prune(message.now)
        elif isinstance(message, RestoreState):
            self.restore_state(message.state)

    def export_state(self) -> dict:
        return {"detector": self.detector.export_state()}

    def restore_state(self, state: dict) -> None:
        """Adopt checkpointed detection state only while still fresh — a
        detector that has already observed positions (rebuilt from the
        replayed suffix) holds newer last-seen entries and keeps them."""
        if self.detector._last_seen:
            return
        self.detector.restore_state(state["detector"])


class CollisionCellRouter(KeyRouter):
    """Collision-cell routing with a single-occupant fast path.

    A fleet workload fans every forecast out to ~50 dilated cells, yet the
    vast majority of those cells only ever hold **one** vessel's forecast —
    no pairing can happen there, and the plain router would still spawn an
    actor per cell and pay a scheduled envelope per delivery. This router
    keeps the sole occupant's latest ``ForecastShared`` in a dict (exactly
    the state the cell actor would hold: ``forecasts`` maps each MMSI to
    its latest forecast, so re-shares overwrite) and only materialises the
    real cell actor — replaying the stashed forecast first, preserving
    arrival order — when a *second* vessel touches the cell. Observable
    behaviour is identical; envelope and spawn counts drop by roughly the
    dilation factor.
    """

    def __init__(self, system, prefix: str, factory,
                 wiring: "PlatformWiring", strategy=None) -> None:
        super().__init__(system, prefix, factory, strategy=strategy)
        self._wiring = wiring
        #: cell -> the sole occupant's latest ForecastShared.
        self._solo: dict[Any, ForecastShared] = {}
        #: Stash mutations may race in threaded systems (vessel actors on
        #: worker threads share concurrently).
        self._solo_lock = threading.Lock()
        self.stashed_tells = 0

    def route(self, key: Any):
        """Materialise the cell actor, replaying any stashed forecast so
        external ref access (handoff, tests, checkpoints) sees it."""
        with self._solo_lock:
            held = self._solo.pop(key, None)
            ref = super().route(key)
            if held is not None:
                ref.tell(held)
        return ref

    def tell(self, key: Any, message: Any, sender=None) -> None:
        if key not in self._refs:
            if type(message) is ForecastShared:
                with self._solo_lock:
                    if key in self._refs:  # raced with a materialise
                        pass
                    else:
                        held = self._solo.get(key)
                        if (held is None or held.forecast.mmsi
                                == message.forecast.mmsi):
                            self._solo[key] = message
                            self.stashed_tells += 1
                            return
                # Second vessel: spawn the real actor; route() replays the
                # stashed forecast first, keeping arrival order.
                self.route(key).tell(message, sender=sender)
                return
            if isinstance(message, PruneTick):
                with self._solo_lock:
                    held = self._solo.get(key)
                    if held is not None:
                        if (message.now - held.forecast.anchor.t
                                > self._wiring.config.event_debounce_s):
                            del self._solo[key]
                        return
            elif isinstance(message, RestoreState):
                with self._solo_lock:
                    if key in self._solo:
                        return  # live (replayed) forecast is newer; keep it
                    state = message.state
                    forecasts = state.get("forecasts", {})
                    if not state.get("last_pair_alert") \
                            and len(forecasts) <= 1:
                        for mmsi, fc in forecasts.items():
                            self._solo[key] = ForecastShared(cell=key,
                                                             forecast=fc)
                        return
                # Multi-occupant checkpoint state: a real actor holds it.
        super().tell(key, message, sender=sender)

    def forget(self, key: Any) -> bool:
        with self._solo_lock:
            stashed = self._solo.pop(key, None) is not None
        return super().forget(key) or stashed

    def stashed_state(self, key: Any) -> dict | None:
        """Checkpoint view of a stashed cell (same shape as
        :meth:`CollisionCellActor.export_state`)."""
        held = self._solo.get(key)
        if held is None:
            return None
        return {"forecasts": {held.forecast.mmsi: held.forecast},
                "last_pair_alert": {}}

    def known_keys(self) -> list[Any]:
        return list(self._refs) + [k for k in self._solo
                                   if k not in self._refs]

    def __len__(self) -> int:
        return len(self.known_keys())

    def __contains__(self, key: Any) -> bool:
        return key in self._refs or key in self._solo


class CollisionCellActor(Actor):
    """One H3 cell's collision-forecasting state.

    Holds the forecast trajectories currently touching the cell and checks
    each newcomer pairwise (temporal intersection first, then spatial), as
    Figure 5 illustrates.
    """

    def __init__(self, cell: int, wiring: "PlatformWiring") -> None:
        self.cell = cell
        self.wiring = wiring
        self.forecasts: dict[int, object] = {}
        self._last_pair_alert: dict[tuple[int, int], float] = {}

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, ForecastShared):
            self._on_forecast(message, ctx)
        elif isinstance(message, PruneTick):
            stale = [m for m, fc in self.forecasts.items()
                     if message.now - fc.anchor.t
                     > self.wiring.config.event_debounce_s]
            for mmsi in stale:
                del self.forecasts[mmsi]
        elif isinstance(message, RestoreState):
            self.restore_state(message.state)

    def export_state(self) -> dict:
        return {"forecasts": dict(self.forecasts),
                "last_pair_alert": dict(self._last_pair_alert)}

    def restore_state(self, state: dict) -> None:
        if self.forecasts or self._last_pair_alert:
            return  # already rebuilt from replayed forecasts; keep it
        self.forecasts = dict(state["forecasts"])
        self._last_pair_alert = dict(state["last_pair_alert"])

    def _on_forecast(self, message: ForecastShared, ctx: ActorContext) -> None:
        config = self.wiring.config
        forecast = message.forecast
        for other_mmsi, other_fc in self.forecasts.items():
            if other_mmsi == forecast.mmsi:
                continue
            hit = trajectories_intersect(
                forecast, other_fc,
                temporal_threshold_s=config.collision_temporal_threshold_s,
                spatial_threshold_m=config.collision_spatial_threshold_m)
            if hit is None:
                continue
            last = self._last_pair_alert.get(hit.pair)
            if (last is not None
                    and forecast.anchor.t - last < config.event_debounce_s):
                continue
            self._last_pair_alert[hit.pair] = forecast.anchor.t
            alert = CollisionAlert(event=hit)
            for mmsi in hit.pair:
                self.wiring.vessel_router.tell(mmsi, alert,
                                               sender=ctx.self_ref)
            self.wiring.writer_ref.tell(
                EventRecord(kind="collision", t=hit.forecast_at, payload=hit),
                sender=ctx.self_ref)
        self.forecasts[forecast.mmsi] = forecast


class FlowActor(Actor):
    """The traffic-flow aggregation actor (indirect VTFF, Section 5.1)."""

    def __init__(self, wiring: "PlatformWiring") -> None:
        self.wiring = wiring
        self.vtff = IndirectVTFF(resolution=wiring.config.flow_resolution,
                                 window_s=wiring.config.flow_window_s)

    def receive(self, message, ctx: ActorContext) -> None:
        # Receives RouteForecast objects directly from vessel actors.
        from repro.models.base import RouteForecast
        if isinstance(message, RouteForecast):
            self.vtff.submit(message)
        elif message == "snapshot":
            ctx.reply(self.vtff)
