"""Spatial actors: proximity cells, collision cells and the flow actor.

"Two additional actor classes are defined on the spatial level utilizing
the H3 spatial index, a class for proximity event detection ... and a class
for collision forecasting ... These actors consume the combined output of
all vessel actors N and determine the state of their respective event
class. ... Based on the final state status, they communicate their state
back to the respective affected subset of vessel actors." (Section 3)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.actors import Actor, ActorContext
from repro.events.collision import trajectories_intersect
from repro.events.proximity import ProximityDetector
from repro.events.vtff import IndirectVTFF
from repro.platform.messages import (
    CellObservation,
    CollisionAlert,
    EventRecord,
    ForecastShared,
    ProximityAlert,
    PruneTick,
    RestoreState,
)

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class ProximityCellActor(Actor):
    """One H3 cell's proximity-detection state."""

    def __init__(self, cell: int, wiring: "PlatformWiring") -> None:
        self.cell = cell
        self.wiring = wiring
        self.detector = ProximityDetector(
            distance_threshold_m=wiring.config.proximity_threshold_m,
            debounce_s=wiring.config.event_debounce_s)

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, CellObservation):
            events = self.detector.observe(message.mmsi, message.t,
                                           message.lat, message.lon)
            for event in events:
                alert = ProximityAlert(event=event)
                # Back to the affected vessel actors...
                for mmsi in event.pair:
                    self.wiring.vessel_router.tell(mmsi, alert,
                                                   sender=ctx.self_ref)
                # ...and into the store for the UI event list.
                self.wiring.writer_ref.tell(
                    EventRecord(kind="proximity", t=event.t, payload=event),
                    sender=ctx.self_ref)
        elif isinstance(message, PruneTick):
            self.detector.prune(message.now)
        elif isinstance(message, RestoreState):
            self.restore_state(message.state)

    def export_state(self) -> dict:
        return {"detector": self.detector.export_state()}

    def restore_state(self, state: dict) -> None:
        """Adopt checkpointed detection state only while still fresh — a
        detector that has already observed positions (rebuilt from the
        replayed suffix) holds newer last-seen entries and keeps them."""
        if self.detector._last_seen:
            return
        self.detector.restore_state(state["detector"])


class CollisionCellActor(Actor):
    """One H3 cell's collision-forecasting state.

    Holds the forecast trajectories currently touching the cell and checks
    each newcomer pairwise (temporal intersection first, then spatial), as
    Figure 5 illustrates.
    """

    def __init__(self, cell: int, wiring: "PlatformWiring") -> None:
        self.cell = cell
        self.wiring = wiring
        self.forecasts: dict[int, object] = {}
        self._last_pair_alert: dict[tuple[int, int], float] = {}

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, ForecastShared):
            self._on_forecast(message, ctx)
        elif isinstance(message, PruneTick):
            stale = [m for m, fc in self.forecasts.items()
                     if message.now - fc.anchor.t
                     > self.wiring.config.event_debounce_s]
            for mmsi in stale:
                del self.forecasts[mmsi]
        elif isinstance(message, RestoreState):
            self.restore_state(message.state)

    def export_state(self) -> dict:
        return {"forecasts": dict(self.forecasts),
                "last_pair_alert": dict(self._last_pair_alert)}

    def restore_state(self, state: dict) -> None:
        if self.forecasts or self._last_pair_alert:
            return  # already rebuilt from replayed forecasts; keep it
        self.forecasts = dict(state["forecasts"])
        self._last_pair_alert = dict(state["last_pair_alert"])

    def _on_forecast(self, message: ForecastShared, ctx: ActorContext) -> None:
        config = self.wiring.config
        forecast = message.forecast
        for other_mmsi, other_fc in self.forecasts.items():
            if other_mmsi == forecast.mmsi:
                continue
            hit = trajectories_intersect(
                forecast, other_fc,
                temporal_threshold_s=config.collision_temporal_threshold_s,
                spatial_threshold_m=config.collision_spatial_threshold_m)
            if hit is None:
                continue
            last = self._last_pair_alert.get(hit.pair)
            if (last is not None
                    and forecast.anchor.t - last < config.event_debounce_s):
                continue
            self._last_pair_alert[hit.pair] = forecast.anchor.t
            alert = CollisionAlert(event=hit)
            for mmsi in hit.pair:
                self.wiring.vessel_router.tell(mmsi, alert,
                                               sender=ctx.self_ref)
            self.wiring.writer_ref.tell(
                EventRecord(kind="collision", t=hit.forecast_at, payload=hit),
                sender=ctx.self_ref)
        self.forecasts[forecast.mmsi] = forecast


class FlowActor(Actor):
    """The traffic-flow aggregation actor (indirect VTFF, Section 5.1)."""

    def __init__(self, wiring: "PlatformWiring") -> None:
        self.wiring = wiring
        self.vtff = IndirectVTFF(resolution=wiring.config.flow_resolution,
                                 window_s=wiring.config.flow_window_s)

    def receive(self, message, ctx: ActorContext) -> None:
        # Receives RouteForecast objects directly from vessel actors.
        from repro.models.base import RouteForecast
        if isinstance(message, RouteForecast):
            self.vtff.submit(message)
        elif message == "snapshot":
            ctx.reply(self.vtff)
