"""The per-vessel actor.

"The core partitioning functionality generates multiple actors N, with each
one corresponding to a specific vessel as it is defined by its unique MMSI"
(Section 3). Each vessel actor:

* keeps the vessel's recent downsampled track (the S-VRF input window),
* runs the *shared* short-term forecasting model on each kept fix —
  the model instance is mounted once and passed to every actor's factory,
* fans its position out to the proximity cell actor of its H3 cell,
* fans its forecast trajectory out to the collision actors of every cell
  the trajectory (dilated by one neighbour ring) touches,
* submits the forecast to the traffic-flow actor,
* pushes its state snapshot to the writer actor,
* records proximity/collision alerts communicated back by the spatial
  actors ("they communicate their state back to the respective affected
  subset of vessel actors").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.actors import Actor, ActorContext
from repro.geo.track import Position
from repro.hexgrid import grid_disk, latlng_to_cell
from repro.platform.messages import (
    CellObservation,
    CollisionAlert,
    ForecastShared,
    PositionIngested,
    ProximityAlert,
    RestoreState,
    VesselStateUpdate,
)

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class VesselActor(Actor):
    """Digital twin of one vessel."""

    def __init__(self, mmsi: int, wiring: "PlatformWiring") -> None:
        self.mmsi = mmsi
        self.wiring = wiring
        self.history: deque[Position] = deque(
            maxlen=wiring.forecaster_min_history)
        self.kept_fixes = 0
        self.last_kept_t = float("-inf")
        self.last_message = None
        self.latest_forecast = None
        self.event_flags: deque[str] = deque(maxlen=8)

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, PositionIngested):
            self._on_position(message, ctx)
        elif isinstance(message, ProximityAlert):
            self.event_flags.append(f"proximity@{message.event.t:.0f}")
        elif isinstance(message, CollisionAlert):
            self.event_flags.append(
                f"collision@{message.event.t_expected:.0f}")
        elif isinstance(message, RestoreState):
            self.restore_state(message.state)
        # Unknown messages are ignored (actors are liberal receivers).

    # -- checkpointing -------------------------------------------------------------

    def export_state(self) -> dict:
        """Everything a freshly spawned twin needs to continue this
        vessel: the history window, downsampling cursor and event flags."""
        return {
            "history": list(self.history),
            "kept_fixes": self.kept_fixes,
            "last_kept_t": self.last_kept_t,
            "last_message": self.last_message,
            "latest_forecast": self.latest_forecast,
            "event_flags": list(self.event_flags),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt checkpointed state iff it is *newer* than what this actor
        holds — a replayed stream suffix may already have rebuilt fresher
        state, which must win."""
        if state["last_kept_t"] <= self.last_kept_t:
            return
        self.history = deque(state["history"],
                             maxlen=self.wiring.forecaster_min_history)
        self.kept_fixes = state["kept_fixes"]
        self.last_kept_t = state["last_kept_t"]
        self.last_message = state["last_message"]
        self.latest_forecast = state["latest_forecast"]
        self.event_flags = deque(state["event_flags"], maxlen=8)

    # -- handlers -----------------------------------------------------------------

    def _on_position(self, msg: PositionIngested, ctx: ActorContext) -> None:
        wiring = self.wiring
        report = msg.message
        if report.t - self.last_kept_t < wiring.config.downsample_s:
            return  # aggregated away by the 30-second downsampling rule
        if self.history and report.t <= self.history[-1].t:
            return  # stale duplicate from overlapping receivers
        self.last_kept_t = report.t
        self.last_message = report
        self.history.append(Position(t=report.t, lat=report.lat,
                                     lon=report.lon, sog=report.sog,
                                     cog=report.cog))
        self.kept_fixes += 1

        # Proximity: this position goes to its cell actor.
        prox_cell = latlng_to_cell(report.lat, report.lon,
                                   wiring.config.proximity_resolution)
        wiring.cell_router.tell(prox_cell, CellObservation(
            cell=prox_cell, mmsi=self.mmsi, t=report.t,
            lat=report.lat, lon=report.lon), sender=ctx.self_ref)

        # Forecasting: run the shared model once enough history exists —
        # the full window normally, or a padded short window when the
        # platform is configured to forecast newly appeared vessels.
        threshold = (max(wiring.config.min_forecast_fixes, 2)
                     if wiring.config.pad_short_histories
                     and wiring.supports_padding
                     else wiring.forecaster_min_history)
        if (len(self.history) >= threshold
                and self.kept_fixes % wiring.config.forecast_every_n == 0):
            self._forecast_and_share(ctx)

        wiring.writer_ref.tell(VesselStateUpdate(
            mmsi=self.mmsi, t=report.t, lat=report.lat, lon=report.lon,
            sog=report.sog, cog=report.cog, forecast=self.latest_forecast,
            event_flags=tuple(self.event_flags)), sender=ctx.self_ref)

    def _forecast_and_share(self, ctx: ActorContext) -> None:
        wiring = self.wiring
        history = list(self.history)
        if (wiring.supports_padding
                and len(history) < wiring.forecaster_min_history):
            forecast = wiring.forecaster.forecast(self.mmsi, history,
                                                  pad=True)
        else:
            forecast = wiring.forecaster.forecast(self.mmsi, history)
        self.latest_forecast = forecast

        cells: set[int] = set()
        for pos in forecast.positions:
            base = latlng_to_cell(pos.lat, pos.lon,
                                  wiring.config.collision_resolution)
            cells.update(grid_disk(base,
                                   wiring.config.collision_neighbor_rings))
        for cell in cells:
            wiring.collision_router.tell(
                cell, ForecastShared(cell=cell, forecast=forecast),
                sender=ctx.self_ref)

        wiring.flow_ref.tell(forecast, sender=ctx.self_ref)
