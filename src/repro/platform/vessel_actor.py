"""The per-vessel actor.

"The core partitioning functionality generates multiple actors N, with each
one corresponding to a specific vessel as it is defined by its unique MMSI"
(Section 3). Each vessel actor:

* keeps the vessel's recent downsampled track (the S-VRF input window) in a
  preallocated :class:`~repro.platform.history.HistoryRing`,
* requests a forecast from the shared model on each kept fix — through the
  node's pooled :class:`~repro.platform.forecast_service.ForecastService`
  when batching is enabled, synchronously otherwise,
* fans its position out to the proximity cell actor of its H3 cell,
* fans its forecast trajectory out to the collision actors of every cell
  the trajectory (dilated by one neighbour ring) touches,
* submits the forecast to the traffic-flow actor,
* pushes its state snapshot to the writer actor,
* records proximity/collision alerts communicated back by the spatial
  actors ("they communicate their state back to the respective affected
  subset of vessel actors").

With pooled inference the state update of a forecast-triggering fix is
deferred until the :class:`~repro.platform.messages.ForecastReady` reply,
so the writer still observes every forecast exactly once; the in-flight
marker travels through ``export_state``/``restore_state`` so a checkpoint
taken mid-linger re-issues the request after recovery instead of dropping
it.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.actors import Actor, ActorContext
from repro.hexgrid import grid_disk, latlng_to_cell
from repro.platform.history import HistoryRing
from repro.platform.messages import (
    CellObservation,
    CollisionAlert,
    EventRecord,
    ForecastReady,
    ForecastShared,
    PlanReady,
    PositionIngested,
    ProximityAlert,
    RestoreState,
    VesselStateUpdate,
    VoyageAssigned,
)

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring

#: (base cell, rings) -> dilated neighbourhood. ``grid_disk`` is a pure
#: function and vessels revisit the same cells constantly; memoising the
#: disk removes it from the forecast fan-out hot path.
_DISK_CACHE: dict[tuple[int, int], tuple[int, ...]] = {}
_DISK_CACHE_MAX = 1 << 20


def _disk(base: int, rings: int) -> tuple[int, ...]:
    key = (base, rings)
    cells = _DISK_CACHE.get(key)
    if cells is None:
        if len(_DISK_CACHE) >= _DISK_CACHE_MAX:
            _DISK_CACHE.clear()
        cells = _DISK_CACHE[key] = tuple(grid_disk(base, rings))
    return cells


def share_forecast(wiring: "PlatformWiring", forecast, sender=None) -> None:
    """Fan one forecast out to the collision cells its trajectory (dilated
    by the neighbour rings) touches, and to the traffic-flow actor.

    Module-level because two callers need it with identical semantics: the
    vessel actor on the synchronous path, and the pooled
    :class:`~repro.platform.forecast_service.ForecastService` at flush time
    — the service shares in row (submission) order so collision cells
    observe forecasts in the same sequence as unbatched inference."""
    resolution = wiring.config.collision_resolution
    rings = wiring.config.collision_neighbor_rings
    cells: set[int] = set()
    for pos in forecast.positions:
        cells.update(_disk(latlng_to_cell(pos.lat, pos.lon, resolution),
                           rings))
    router = wiring.collision_router
    share_batch = getattr(router, "share_forecast", None)
    if share_batch is not None:
        share_batch(cells, forecast, sender=sender)
    else:
        for cell in cells:
            router.tell(cell, ForecastShared(cell=cell, forecast=forecast),
                        sender=sender)
    wiring.flow_ref.tell(forecast, sender=sender)


class VesselActor(Actor):
    """Digital twin of one vessel."""

    def __init__(self, mmsi: int, wiring: "PlatformWiring") -> None:
        self.mmsi = mmsi
        self.wiring = wiring
        self.history = HistoryRing(max(wiring.forecaster_min_history, 1))
        self.kept_fixes = 0
        self.last_kept_t = float("-inf")
        self.last_message = None
        self.latest_forecast = None
        #: A forecast request is pooled in the forecast service and its
        #: state update deferred until the ForecastReady reply.
        self.pending_forecast = False
        self.event_flags: deque[str] = deque(maxlen=8)
        #: Voyage-optimization state (None until a VoyageAssigned lands):
        #: the assignment, the freshest plan, the bucket-quantised replan
        #: cursor, the in-flight-replan marker, and per-kind emission
        #: marks bounding event re-emission after replays.
        self.voyage: dict | None = None
        self.voyage_plan = None
        self.last_replan_t = float("-inf")
        self.pending_plan = False
        self.voyage_event_marks: dict[str, float] = {}

    def receive(self, message, ctx: ActorContext) -> None:
        if isinstance(message, PositionIngested):
            self._on_position(message, ctx)
        elif isinstance(message, ForecastReady):
            self._on_forecast_ready(message, ctx)
        elif isinstance(message, VoyageAssigned):
            self._on_voyage_assigned(message)
        elif isinstance(message, PlanReady):
            self._on_plan_ready(message, ctx)
        elif isinstance(message, ProximityAlert):
            self.event_flags.append(f"proximity@{message.event.t:.0f}")
        elif isinstance(message, CollisionAlert):
            self.event_flags.append(
                f"collision@{message.event.t_expected:.0f}")
        elif isinstance(message, RestoreState):
            self.restore_state(message.state, ctx)
        # Unknown messages are ignored (actors are liberal receivers).

    # -- checkpointing -------------------------------------------------------------

    def export_state(self) -> dict:
        """Everything a freshly spawned twin needs to continue this
        vessel: the history window, downsampling cursor, event flags and
        the in-flight pending-forecast marker (a checkpoint taken
        mid-linger must re-issue the pooled request on recovery)."""
        return {
            "history": self.history.positions(),
            "kept_fixes": self.kept_fixes,
            "last_kept_t": self.last_kept_t,
            "last_message": self.last_message,
            "latest_forecast": self.latest_forecast,
            "pending_forecast": self.pending_forecast,
            "event_flags": list(self.event_flags),
            # Voyage assignment and plan state ride the same snapshot:
            # assignments are not in the AIS stream, so replay alone can
            # never rebuild them — recovery MUST carry them across.
            "voyage": self.voyage,
            "voyage_plan": self.voyage_plan,
            "last_replan_t": self.last_replan_t,
            "pending_plan": self.pending_plan,
            "voyage_event_marks": dict(self.voyage_event_marks),
        }

    def restore_state(self, state: dict,
                      ctx: ActorContext | None = None) -> None:
        """Adopt checkpointed state iff it is *newer* than what this actor
        holds — a replayed stream suffix may already have rebuilt fresher
        state, which must win."""
        if state["last_kept_t"] <= self.last_kept_t:
            return
        self.history = HistoryRing.from_positions(
            state["history"], max(self.wiring.forecaster_min_history, 1))
        self.kept_fixes = state["kept_fixes"]
        self.last_kept_t = state["last_kept_t"]
        self.last_message = state["last_message"]
        self.latest_forecast = state["latest_forecast"]
        self.event_flags = deque(state["event_flags"], maxlen=8)
        self.pending_forecast = False
        self.voyage = state.get("voyage")
        self.voyage_plan = state.get("voyage_plan")
        self.last_replan_t = state.get("last_replan_t", float("-inf"))
        self.voyage_event_marks = dict(state.get("voyage_event_marks", {}))
        self.pending_plan = False
        if state.get("pending_forecast") and ctx is not None:
            # The snapshot caught a request in flight inside the (now gone)
            # node's forecast service: re-pool it from the restored window.
            self._request_forecast(ctx)
        if (state.get("pending_plan") and ctx is not None
                and self.voyage is not None
                and self.last_message is not None):
            # Same for a replan caught inside the dead node's route
            # optimizer: re-pool it from the restored last fix. The replan
            # anchor is the fix's stream time, so the reissued plan is
            # identical to the one the crash swallowed.
            self._request_plan(self.last_message, ctx)

    # -- handlers -----------------------------------------------------------------

    def _on_position(self, msg: PositionIngested, ctx: ActorContext) -> None:
        wiring = self.wiring
        report = msg.message
        if report.t - self.last_kept_t < wiring.config.downsample_s:
            return  # aggregated away by the 30-second downsampling rule
        if len(self.history) and report.t <= self.history.last_t:
            return  # stale duplicate from overlapping receivers
        self.last_kept_t = report.t
        self.last_message = report
        self.history.append(report.t, report.lat, report.lon,
                            report.sog, report.cog)
        self.kept_fixes += 1

        # Proximity: this position goes to its cell actor.
        prox_cell = latlng_to_cell(report.lat, report.lon,
                                   wiring.config.proximity_resolution)
        wiring.cell_router.tell(prox_cell, CellObservation(
            cell=prox_cell, mmsi=self.mmsi, t=report.t,
            lat=report.lat, lon=report.lon), sender=ctx.self_ref)

        # Voyage optimization: divergence watch + rolling-horizon replan.
        if self.voyage is not None:
            self._on_voyage_fix(report, ctx)

        # Forecasting: run the shared model once enough history exists —
        # the full window normally, or a padded short window when the
        # platform is configured to forecast newly appeared vessels.
        threshold = (max(wiring.config.min_forecast_fixes, 2)
                     if wiring.config.pad_short_histories
                     and wiring.supports_padding
                     else wiring.forecaster_min_history)
        if (len(self.history) >= threshold
                and self.kept_fixes % wiring.config.forecast_every_n == 0):
            if wiring.forecast_service is not None:
                self._request_forecast(ctx)
            else:
                self._forecast_and_share(ctx)
        if self.pending_forecast:
            return  # the state update rides on the ForecastReady reply
        self._push_state_update(report.t, ctx)

    def _on_forecast_ready(self, msg: ForecastReady,
                           ctx: ActorContext) -> None:
        # The service already fanned the forecast out to the collision
        # cells (in submission order, which per-vessel mailboxes could not
        # guarantee); here only the twin's own state catches up.
        self.pending_forecast = False
        if msg.forecast is not None:
            self.latest_forecast = msg.forecast
        if self.last_message is not None:
            self._push_state_update(self.last_message.t, ctx)

    def _push_state_update(self, t: float, ctx: ActorContext) -> None:
        report = self.last_message
        self.wiring.writer_ref.tell(VesselStateUpdate(
            mmsi=self.mmsi, t=t, lat=report.lat, lon=report.lon,
            sog=report.sog, cog=report.cog, forecast=self.latest_forecast,
            event_flags=tuple(self.event_flags)), sender=ctx.self_ref)

    # -- voyage optimization --------------------------------------------------------

    def _on_voyage_assigned(self, msg: VoyageAssigned) -> None:
        speed = (msg.base_speed_kn if msg.base_speed_kn is not None
                 else self.wiring.config.voyage_base_speed_kn)
        self.voyage = {
            "waypoints": msg.waypoints,
            "deadline_t": msg.deadline_t,
            "base_speed_kn": speed,
        }
        self.voyage_plan = None
        self.last_replan_t = float("-inf")
        self.pending_plan = False

    def _on_voyage_fix(self, report, ctx: ActorContext) -> None:
        config = self.wiring.config
        plan = self.voyage_plan
        if plan is not None:
            off_track = self._cross_track_m(report.lat, report.lon, plan)
            if off_track > config.voyage_divergence_m:
                from repro.events.voyage import RouteDivergenceEvent
                self._emit_voyage_event(
                    "route_divergence",
                    RouteDivergenceEvent(
                        mmsi=self.mmsi, t=report.t,
                        cross_track_m=off_track,
                        threshold_m=config.voyage_divergence_m),
                    report.t, ctx)
        # Bucket-quantised trigger: replan when stream time crosses a
        # multiple of the cadence — a pure function of the fix stream, so
        # the plan sequence survives crashes and migrations unchanged.
        cadence = config.voyage_replan_cadence_s
        crossed = (self.last_replan_t == float("-inf")
                   or int(report.t // cadence)
                   > int(self.last_replan_t // cadence))
        if crossed and not self.pending_plan:
            self._request_plan(report, ctx)

    def _request_plan(self, report, ctx: ActorContext) -> None:
        from repro.models.voyage import Waypoint
        voyage = self.voyage
        self.pending_plan = True
        self.last_replan_t = report.t
        self.wiring.route_optimizer.submit(
            self.mmsi, Waypoint(report.lat, report.lon),
            tuple(Waypoint(lat, lon) for lat, lon in voyage["waypoints"]),
            voyage["deadline_t"], voyage["base_speed_kn"],
            sample_t=report.t, ctx=ctx)

    def _on_plan_ready(self, msg: PlanReady, ctx: ActorContext) -> None:
        self.pending_plan = False
        plan = msg.plan
        if plan is None:
            return
        self.voyage_plan = plan
        config = self.wiring.config
        if plan.diverted:
            from repro.events.voyage import StormAvoidanceEvent
            self._emit_voyage_event(
                "storm_avoidance",
                StormAvoidanceEvent(
                    mmsi=self.mmsi, t=plan.planned_t,
                    issued_t=plan.issued_t,
                    legs_diverted=sum(
                        1 for leg in plan.legs if leg.diverted),
                    planned_fuel_kg=plan.fuel_kg),
                plan.planned_t, ctx)
        if plan.eta_slack_s < config.voyage_eta_breach_s:
            from repro.events.voyage import EtaBreachEvent
            self._emit_voyage_event(
                "eta_breach",
                EtaBreachEvent(
                    mmsi=self.mmsi, t=plan.planned_t, eta_t=plan.eta_t,
                    deadline_t=plan.deadline_t,
                    slack_s=plan.eta_slack_s),
                plan.planned_t, ctx)

    def _emit_voyage_event(self, kind: str, payload, t: float,
                           ctx: ActorContext) -> None:
        """Route one voyage event to the writer pool, at most once per
        stream instant per kind — the mark rides the checkpoint, so a
        recovered twin only re-emits events the snapshot had not covered
        (the campaign's set-based parity absorbs those replays)."""
        if t <= self.voyage_event_marks.get(kind, float("-inf")):
            return
        self.voyage_event_marks[kind] = t
        self.event_flags.append(f"{kind}@{t:.0f}")
        self.wiring.writer_ref.tell(
            EventRecord(kind=kind, t=t, payload=payload),
            sender=ctx.self_ref)

    @staticmethod
    def _cross_track_m(lat: float, lon: float, plan) -> float:
        """Lower bound on the distance from a fix to the planned track:
        the minimum over segments of min(|cross-track|, distance to
        either endpoint). A lower bound can only *under*-report
        divergence — never a false alarm from the great-circle extension
        of a short segment passing near the fix."""
        from repro.geo.geodesy import cross_track_distance_m, haversine_m
        best = float("inf")
        for leg in plan.legs:
            for a, b in zip(leg.path, leg.path[1:]):
                d = abs(cross_track_distance_m(
                    lat, lon, a.lat, a.lon, b.lat, b.lon))
                d = min(d, haversine_m(lat, lon, a.lat, a.lon),
                        haversine_m(lat, lon, b.lat, b.lon))
                if d < best:
                    best = d
        return best

    # -- forecasting ---------------------------------------------------------------

    def _window_row(self):
        """The forecaster's displacement window from the ring's contiguous
        column views (``None`` for anchors-only forecasters)."""
        wiring = self.wiring
        if getattr(wiring.forecaster, "window_size", 0) == 0:
            return None
        ts, lats, lons = self.history.columns()
        pad = (wiring.supports_padding
               and len(self.history) < wiring.forecaster_min_history)
        return wiring.forecaster.make_window(ts, lats, lons, pad=pad)

    def _request_forecast(self, ctx: ActorContext) -> None:
        self.pending_forecast = True
        self.wiring.forecast_service.submit(
            self.mmsi, self._window_row(), self.history.last_position(), ctx)

    def _forecast_and_share(self, ctx: ActorContext) -> None:
        wiring = self.wiring
        history = self.history.positions()
        if (wiring.supports_padding
                and len(history) < wiring.forecaster_min_history):
            forecast = wiring.forecaster.forecast(self.mmsi, history,
                                                  pad=True)
        else:
            forecast = wiring.forecaster.forecast(self.mmsi, history)
        self.latest_forecast = forecast
        share_forecast(wiring, forecast, sender=ctx.self_ref)
