"""Stream ingestion: broker -> vessel actors.

"The data ingestion services of the processing engine consume streaming
real-time positional AIS data" (Section 3) from the stream broker. The
service parses NMEA sentences when the topic carries raw sentences, routes
every report to its vessel actor through the MMSI-keyed router, feeds the
switch-off watchdog, and drives the platform's virtual clock from stream
time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ais.message import AISMessage, StaticReport, decode_nmea
from repro.events.switchoff import SwitchOffDetector
from repro.platform.messages import EventRecord, PositionIngested
from repro.streams.columnar import PositionBlock
from repro.telemetry.trace import (
    STAGE_INGEST,
    clear_current_trace,
    set_current_trace,
)

if TYPE_CHECKING:
    from repro.platform.pipeline import PlatformWiring


class IngestionService:
    """Consumes the AIS topic and dispatches to vessel actors."""

    def __init__(self, wiring: "PlatformWiring", group_id: str = "platform"
                 ) -> None:
        from repro.streams import ConsumerGroup
        self.wiring = wiring
        self._group = ConsumerGroup(wiring.broker, group_id,
                                    wiring.config.ais_topic)
        self._consumer = self._group.join()
        self.switchoff = SwitchOffDetector(
            gap_factor=wiring.config.switchoff_gap_factor,
            min_gap_s=wiring.config.switchoff_min_gap_s)
        self.messages_ingested = 0
        self.parse_errors = 0
        self._last_switchoff_check = 0.0
        #: Reused across polls — poll_once runs per stream tick, and a
        #: fresh 2_000-slot list per call showed up in profiles.
        self._poll_buffer: list = []

    def _to_message(self, value, timestamp: float) -> AISMessage | None:
        """Parse a record value into a position report (or drop it)."""
        if isinstance(value, AISMessage):
            return value
        if isinstance(value, str):
            try:
                decoded = decode_nmea(value, t=timestamp)
            except ValueError:
                self.parse_errors += 1
                return None
            if isinstance(decoded, StaticReport):
                return None  # statics are cached elsewhere; not positional
            return decoded
        self.parse_errors += 1
        return None

    def poll_once(self, max_records: int = 2_000) -> int:
        """Consume up to ``max_records``; returns how many were dispatched.

        The platform's virtual clock advances to the newest stream
        timestamp seen, releasing any scheduled housekeeping messages.
        """
        records = self._consumer.poll(max_records=max_records,
                                      out=self._poll_buffer)
        telemetry = self.wiring.system.telemetry
        sample_every = self.wiring.config.trace_sample_every
        dispatched = 0
        newest_t = None
        for record in records:
            if isinstance(record.value, PositionBlock):
                # Columnar fast lane: one record carries a whole batch of
                # position rows as contiguous arrays.
                dispatched += self._dispatch_block(record, telemetry,
                                                   sample_every)
                block_t = record.value.max_t
                if newest_t is None or block_t > newest_t:
                    newest_t = block_t
                continue
            msg = self._to_message(record.value, record.timestamp)
            if msg is None:
                continue
            if telemetry is not None and record.offset % sample_every == 0:
                # Trace ids derive from the record's broker identity, so a
                # replayed run samples the identical set of positions. The
                # +1 keeps partition-0/offset-0 from producing tid 0.
                tid = ((record.partition + 1) << 48) | record.offset
                telemetry.traces.record(tid, STAGE_INGEST)
                set_current_trace(tid)
                try:
                    self.wiring.vessel_router.tell(msg.mmsi,
                                                   PositionIngested(msg))
                finally:
                    clear_current_trace()
            else:
                self.wiring.vessel_router.tell(msg.mmsi,
                                               PositionIngested(msg))
            self.switchoff.observe(msg.mmsi, msg.t, msg.lat, msg.lon, msg.sog)
            dispatched += 1
            if newest_t is None or msg.t > newest_t:
                newest_t = msg.t
        self._consumer.commit()

        if newest_t is not None:
            system = self.wiring.system
            if newest_t > system.now:
                system.advance_time(newest_t - system.now)
            self._check_switchoffs(newest_t)
        self.messages_ingested += dispatched
        return dispatched

    def _dispatch_block(self, record, telemetry, sample_every: int) -> int:
        """Expand one columnar block into per-vessel dispatches.

        Offsets are per *block* on the columnar lane, so trace sampling
        keys off the block's broker identity and tags its first row — the
        traced set stays deterministic across replays.
        """
        block: PositionBlock = record.value
        mmsis, ts = block.mmsi, block.t
        lats, lons = block.lat, block.lon
        sogs, cogs = block.sog, block.cog
        tell = self.wiring.vessel_router.tell
        observe = self.switchoff.observe
        if telemetry is not None and record.offset % sample_every == 0 \
                and len(block):
            tid = ((record.partition + 1) << 48) | record.offset
            telemetry.traces.record(tid, STAGE_INGEST)
            msg = AISMessage(mmsi=int(mmsis[0]), t=float(ts[0]),
                             lat=float(lats[0]), lon=float(lons[0]),
                             sog=float(sogs[0]), cog=float(cogs[0]))
            set_current_trace(tid)
            try:
                tell(msg.mmsi, PositionIngested(msg))
            finally:
                clear_current_trace()
            observe(msg.mmsi, msg.t, msg.lat, msg.lon, msg.sog)
            start = 1
        else:
            start = 0
        for i in range(start, len(block)):
            msg = AISMessage(mmsi=int(mmsis[i]), t=float(ts[i]),
                             lat=float(lats[i]), lon=float(lons[i]),
                             sog=float(sogs[i]), cog=float(cogs[i]))
            tell(msg.mmsi, PositionIngested(msg))
            observe(msg.mmsi, msg.t, msg.lat, msg.lon, msg.sog)
        return len(block)

    def _check_switchoffs(self, now: float, every_s: float = 120.0) -> None:
        if now - self._last_switchoff_check < every_s:
            return
        self._last_switchoff_check = now
        for event in self.switchoff.check(now):
            self.wiring.writer_ref.tell(EventRecord(
                kind="switchoff", t=event.t_detected, payload=event))

    @property
    def lag(self) -> int:
        return self._group.lag()
