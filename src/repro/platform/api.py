"""The middleware API.

"The Redis and the API belong to the Middleware component. The end user is
able to interact with the system by exploring the visualized route and
event states through the UI." (Section 3)

:class:`MiddlewareAPI` is the query surface that UI would call: vessel
state snapshots, recent event lists (the Figure 4f event list), live event
subscriptions, and the traffic-flow raster behind the Figure 4d heat map.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.events.vtff import TrafficLevel
from repro.kvstore import KeyValueStore, PubSub, Subscription

if TYPE_CHECKING:
    from repro.platform.pipeline import Platform


class MiddlewareAPI:
    """Read-side API over the writer actor's KV schema."""

    def __init__(self, kvstore: KeyValueStore, pubsub: PubSub,
                 platform: "Platform") -> None:
        self._kv = kvstore
        self._pubsub = pubsub
        self._platform = platform

    # -- vessels ---------------------------------------------------------------

    def vessel_state(self, mmsi: int) -> dict[str, Any] | None:
        """Latest state snapshot of one vessel, or ``None`` if unseen."""
        state = self._kv.hgetall(f"vessel:{mmsi}")
        return state or None

    def vessel_forecast(self, mmsi: int) -> list[tuple[float, float, float]] | None:
        """The vessel's latest forecast track as ``(t, lat, lon)`` tuples."""
        state = self.vessel_state(mmsi)
        if state is None:
            return None
        return state.get("forecast")

    def active_vessels(self, since_t: float = 0.0) -> list[int]:
        """MMSIs that reported at or after ``since_t``."""
        hits = self._kv.zrangebyscore("vessels:last_seen", since_t,
                                      float("inf"))
        return sorted(int(m) for m, _ in hits)

    def vessel_count(self) -> int:
        return self._kv.zcard("vessels:last_seen")

    # -- events -----------------------------------------------------------------

    def recent_events(self, kind: str, limit: int = 50) -> list[Any]:
        """The newest ``limit`` events of a kind ("proximity", "collision",
        "switchoff") — the UI's event list, most recent last."""
        return self._kv.lrange(f"events:{kind}", -limit, -1)

    def event_count(self, kind: str) -> int:
        return self._kv.llen(f"events:{kind}")

    def subscribe_events(self, kind: str = "*") -> Subscription:
        """Live event push — the notification feed of Section 5.2."""
        return self._pubsub.subscribe(f"events:{kind}")

    # -- traffic flow --------------------------------------------------------------

    def traffic_flow(self, window: int) -> dict[int, int]:
        """Forecast vessel count per active flow cell for a time window."""
        return self._platform.flow_snapshot().predicted_flow(window)

    def traffic_heat(self, window: int) -> dict[int, TrafficLevel]:
        """The Figure 4d heat classification per active cell."""
        vtff = self._platform.flow_snapshot()
        return {cell: vtff.grid.classify(count)
                for cell, count in vtff.predicted_flow(window).items()}
