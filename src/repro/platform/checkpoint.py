"""Cluster-wide checkpointing for crash recovery.

A checkpoint is three things captured together at a quiescent moment:

* **consumer offsets** — the seed's committed offset per AIS partition, so
  recovery knows exactly which stream suffix is *not* covered by the
  checkpoint and must be replayed (:meth:`Consumer.seek`);
* **per-node KV snapshots** — each node's writer-actor output store,
  captured via :meth:`KeyValueStore.snapshot_state`;
* **per-entity actor state** — every vessel/cell/collision actor's
  :meth:`export_state`, keyed by ``(entity, router key)`` so recovery can
  route it through the normal sharded routers to whichever node owns the
  key after the restart (:class:`~repro.platform.messages.RestoreState`).

Recovery = restore KV + route actor state + replay only the suffix past
the checkpointed offsets — strictly less work than ``replay_from_start``
whenever the checkpoint had made any progress. Capture at a *quiescent*
boundary (mailboxes drained, writers flushed): in-flight messages are not
part of a checkpoint, the stream suffix re-creates them.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.kvstore.persistence import FORMAT_VERSION, _atomic_write

if TYPE_CHECKING:
    from repro.platform.distributed import DistributedPlatform

CHECKPOINT_FILE = "checkpoint.pkl"

#: The sharded entity types whose actors carry recoverable state.
CHECKPOINTED_ENTITIES = ("vessel", "cell", "collision")


@dataclass
class NodeCheckpoint:
    """One node's share of a cluster checkpoint."""

    node_id: str
    kv_state: dict
    #: ``(entity, key, exported state)`` for every local entity actor.
    entities: list[tuple[str, Any, dict]] = field(default_factory=list)


@dataclass
class ClusterCheckpoint:
    """A point-in-time recovery anchor for the whole cluster."""

    version: int
    #: Stream (virtual) time the checkpoint was taken at.
    stream_time: float
    #: AIS partition -> committed offset at capture time.
    offsets: dict[int, int]
    nodes: list[NodeCheckpoint] = field(default_factory=list)

    @property
    def total_entities(self) -> int:
        return sum(len(n.entities) for n in self.nodes)

    def node(self, node_id: str) -> NodeCheckpoint | None:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        return None


def capture_node(platform: "DistributedPlatform") -> NodeCheckpoint:
    """Snapshot one node: KV store plus every local entity actor."""
    wiring = platform.wiring
    checkpoint = NodeCheckpoint(node_id=platform.node.node_id,
                                kv_state=platform.kvstore.snapshot_state())
    routers = {"vessel": wiring.vessel_router, "cell": wiring.cell_router,
               "collision": wiring.collision_router}
    for entity in CHECKPOINTED_ENTITIES:
        router = routers[entity]
        for key in router.known_keys():
            # ShardRouter.export_state covers both spawned actors and
            # single-occupant stashed collision cells — the same exporter
            # the live-migration state transfer uses during handoff.
            state = router.export_state(key)
            if state is not None:
                checkpoint.entities.append((entity, key, state))
    return checkpoint


def capture_checkpoint(platforms: list["DistributedPlatform"]
                       ) -> ClusterCheckpoint:
    """Capture every node plus the seed's committed stream offsets.

    ``platforms[0]`` must be the seed (it owns the broker and the
    platform consumer group's offsets).
    """
    seed = platforms[0]
    if not seed.is_seed:
        raise ValueError("platforms[0] must be the seed node")
    topic = seed.config.ais_topic
    offsets = {
        partition: seed.broker.committed("platform", topic, partition)
        for partition in range(seed.config.ais_partitions)
    }
    return ClusterCheckpoint(
        version=FORMAT_VERSION,
        stream_time=seed.system.now,
        offsets=offsets,
        nodes=[capture_node(p) for p in platforms])


def write_checkpoint(checkpoint: ClusterCheckpoint, directory: str) -> str:
    """Persist a checkpoint atomically; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, CHECKPOINT_FILE)
    _atomic_write(path, pickle.dumps(checkpoint,
                                     protocol=pickle.HIGHEST_PROTOCOL),
                  fsync=False)
    return path


def load_checkpoint(directory: str) -> ClusterCheckpoint:
    path = os.path.join(directory, CHECKPOINT_FILE)
    with open(path, "rb") as fh:
        checkpoint = pickle.load(fh)
    if checkpoint.version != FORMAT_VERSION:
        raise ValueError(f"checkpoint format {checkpoint.version!r} != "
                         f"{FORMAT_VERSION}")
    return checkpoint
