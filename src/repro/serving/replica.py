"""Read replicas of the writer pool's KV schema.

The serving tier never reads the primary :class:`KeyValueStore` the writer
pool mutates — that store's lock sits on the actor hot path. Instead each
writer shard publishes its flushed micro-batch on the pub/sub channel
``repl:flush`` (see ``writer_actor.py``), and a :class:`ReadReplica`
applies those batches to its **own** store under the same key schema, so
every point query the middleware supports works verbatim against the
replica.

Consistency model (documented in SERVING.md): the replica is eventually
consistent with bounded staleness of one writer micro-batch per shard
(``writer_batch_max_ops`` / ``writer_batch_linger_s``). Batches carry a
per-shard sequence number; a gap (only possible if the bounded feed
subscription overflowed) increments :attr:`gaps` — the serving load gate
requires zero gaps, i.e. full event-push parity with the pub/sub feed.
"""

from __future__ import annotations

from typing import Any

from repro.events.vtff import TrafficLevel
from repro.kvstore import KeyValueStore
from repro.platform.writer_actor import (
    REPL_FLOW_CHANNEL,
    REPL_FLUSH_CHANNEL,
)

#: Pattern a replica feed subscription should use (both channels).
REPL_PATTERN = "repl:*"


class ReadReplica:
    """A serving-side KV store fed by writer flush batches."""

    def __init__(self, events_max: int = 1000) -> None:
        if events_max < 1:
            raise ValueError("events_max must be >= 1")
        self.store = KeyValueStore()
        self.events_max = events_max
        #: shard -> last applied flush sequence number.
        self.last_seq: dict[int, int] = {}
        self.batches_applied = 0
        self.states_applied = 0
        self.events_applied = 0
        #: Sequence gaps observed (feed overflow lost a batch).
        self.gaps = 0
        #: Events trimmed off the per-kind retention window.
        self.events_trimmed = 0

    # -- feed -----------------------------------------------------------------------

    def apply(self, channel: str, payload: dict[str, Any]) -> None:
        """Apply one replication message (either channel)."""
        if channel == REPL_FLUSH_CHANNEL:
            self.apply_flush(payload)
        elif channel == REPL_FLOW_CHANNEL:
            self.apply_flow(payload)

    def apply_flush(self, batch: dict[str, Any]) -> None:
        """Apply one writer shard's flushed micro-batch."""
        shard = batch["shard"]
        seq = batch["seq"]
        # Writers number published batches from 1, so a missing prefix
        # (feed overflow before the first application) is a gap too.
        expected = self.last_seq.get(shard, 0) + 1
        if seq != expected:
            self.gaps += 1
        self.last_seq[shard] = seq
        kv = self.store
        for state in batch["states"]:
            mmsi = state["mmsi"]
            t = state["t"]
            kv.hmset(f"vessel:{mmsi}",
                     {k: v for k, v in state.items() if k != "mmsi"},
                     now=t)
            kv.zadd("vessels:last_seen", t, str(mmsi), now=t)
            self.states_applied += 1
        for event in batch["events"]:
            kind = event["kind"]
            t = event["t"]
            key = f"events:{kind}"
            n = kv.rpush(key, event["payload"], now=t)
            if n > self.events_max:
                kv.ltrim(key, n - self.events_max, -1, now=t)
                self.events_trimmed += n - self.events_max
            self.events_applied += 1
        self.batches_applied += 1

    def apply_flow(self, snapshot: dict[str, Any]) -> None:
        """Store one traffic-flow raster snapshot (per window)."""
        t = snapshot.get("t", 0.0)
        for window, cells in snapshot["flow"].items():
            self.store.hmset(f"traffic:flow:{window}",
                             {"t": t, "cells": dict(cells)}, now=t)
        for window, cells in snapshot.get("heat", {}).items():
            self.store.hmset(f"traffic:heat:{window}",
                             {"t": t, "cells": dict(cells)}, now=t)

    # -- stats ----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "batches_applied": self.batches_applied,
            "states_applied": self.states_applied,
            "events_applied": self.events_applied,
            "gaps": self.gaps,
            "events_trimmed": self.events_trimmed,
            "last_seq": dict(self.last_seq),
        }


class ReplicaQueryAPI:
    """The MiddlewareAPI query surface, served from a replica.

    Mirrors :class:`repro.platform.api.MiddlewareAPI` method-for-method so
    UI code can point at either; traffic rasters come from the replicated
    flow snapshots instead of an actor ask (serving load never touches the
    actor hot path).
    """

    def __init__(self, replica: ReadReplica) -> None:
        self._replica = replica
        self._kv = replica.store

    # -- vessels ---------------------------------------------------------------

    def vessel_state(self, mmsi: int) -> dict[str, Any] | None:
        state = self._kv.hgetall(f"vessel:{mmsi}")
        return state or None

    def vessel_forecast(self, mmsi: int) -> list | None:
        state = self.vessel_state(mmsi)
        if state is None:
            return None
        return state.get("forecast")

    def active_vessels(self, since_t: float = 0.0) -> list[int]:
        hits = self._kv.zrangebyscore("vessels:last_seen", since_t,
                                      float("inf"))
        return sorted(int(m) for m, _ in hits)

    def vessel_count(self) -> int:
        return self._kv.zcard("vessels:last_seen")

    # -- events -----------------------------------------------------------------

    def recent_events(self, kind: str, limit: int = 50) -> list[Any]:
        return self._kv.lrange(f"events:{kind}", -limit, -1)

    def event_count(self, kind: str) -> int:
        return self._kv.llen(f"events:{kind}")

    # -- traffic flow ------------------------------------------------------------

    def traffic_flow(self, window: int) -> dict[int, int]:
        snap = self._kv.hgetall(f"traffic:flow:{window}")
        return dict(snap.get("cells", {})) if snap else {}

    def traffic_heat(self, window: int) -> dict[int, TrafficLevel]:
        snap = self._kv.hgetall(f"traffic:heat:{window}")
        if not snap:
            return {}
        return {cell: TrafficLevel(level)
                for cell, level in snap.get("cells", {}).items()}
