"""The asyncio query/subscription server.

One event loop serves every client over plain asyncio streams:

* **Point queries** (HTTP GET, keep-alive): vessel snapshots, recent
  events, the traffic raster, health/stats/metrics — all answered from
  the :class:`~repro.serving.replica.ReadReplica`, never from the
  writer's primary store.
* **Continuous subscriptions** (WebSocket ``/ws``): bbox and k-ring
  spatial watches, per-vessel live tracks, and event-kind alert pushes.
  A state update wakes only the clients whose region matches, via the
  :class:`~repro.serving.fanout.SpatialFanoutIndex`.

Every client owns a **bounded send queue** drained by its own writer
task. When a slow client's queue overflows, the oldest pending push is
dropped and counted; the client is told how much it lost through an
``{"op": "overflow", "dropped": N}`` control message the next time its
queue drains (drop-oldest + counter — publishers never block, the
freshest state always gets through).

Wall time is only read through the injectable ``clock`` default (the
AST audit in ``tests/cluster/test_virtual_clock.py`` covers this
module); push latency histograms measure clock() at dispatch entry to
clock() at frame write.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable

import asyncio

from repro.geo.bbox import BoundingBox
from repro.hexgrid import latlng_to_cell
from repro.serving.config import ServingConfig
from repro.serving.fanout import BBoxRegion, KRingRegion, SpatialFanoutIndex
from repro.serving.protocol import (
    HttpRequest,
    ProtocolError,
    WebSocket,
    json_response,
    http_response,
    read_http_request,
    websocket_handshake_response,
)
from repro.serving.replica import ReadReplica, ReplicaQueryAPI
from repro.telemetry import MetricsRegistry


class ClientSession:
    """One connected WebSocket subscriber."""

    __slots__ = ("client_id", "ws", "queue", "maxlen", "dropped",
                 "reported_dropped", "wakeup", "sids", "closed", "task")

    def __init__(self, client_id: int, ws: WebSocket, maxlen: int) -> None:
        self.client_id = client_id
        self.ws = ws
        #: Pending ``(frame_text, dispatch_ts | None)`` pairs.
        self.queue: deque[tuple[str, float | None]] = deque()
        self.maxlen = maxlen
        self.dropped = 0
        self.reported_dropped = 0
        self.wakeup = asyncio.Event()
        self.sids: set[int] = set()
        self.closed = False
        self.task: asyncio.Task | None = None

    def push(self, text: str, ts: float | None) -> bool:
        """Enqueue one outbound frame; returns False if one was dropped
        to make room (drop-oldest overflow policy)."""
        overflowed = len(self.queue) >= self.maxlen
        if overflowed:
            self.queue.popleft()
            self.dropped += 1
        self.queue.append((text, ts))
        self.wakeup.set()
        return not overflowed


class ServingServer:
    """HTTP/WebSocket serving tier over a read replica."""

    def __init__(self, replica: ReadReplica,
                 config: ServingConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 warehouse=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.replica = replica
        self.api = ReplicaQueryAPI(replica)
        self.config = config or ServingConfig()
        self.registry = registry or MetricsRegistry()
        #: Optional :class:`~repro.warehouse.query.WarehouseQueries` for
        #: the ``/warehouse/*`` historical-analytics routes (503 without).
        self.warehouse = warehouse
        self._clock = clock
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None

        self._sessions: dict[int, ClientSession] = {}
        self._next_client_id = 0
        self._next_sid = 0
        self._fanout = SpatialFanoutIndex()
        #: sid -> (session, kind, detail) for unsubscribe/cleanup.
        self._subs: dict[int, tuple[ClientSession, str, Any]] = {}
        self._vessel_subs: dict[int, set[int]] = {}
        self._event_subs: dict[str, set[int]] = {}

        reg = self.registry
        self._g_clients = reg.gauge("serving_connected_clients")
        self._g_subscriptions = reg.gauge("serving_active_subscriptions")
        self._h_push_latency = reg.histogram("serving_push_latency_seconds")
        self._c_pushes = reg.counter("serving_pushes_total")
        self._c_matches = reg.counter("serving_fanout_matches_total")
        self._c_candidates = reg.counter("serving_fanout_candidates_total")
        self._c_dropped = reg.counter("serving_client_dropped_total")
        self._c_feed_batches = reg.counter("serving_feed_batches_total")
        self._query_counters: dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            backlog=self.config.backlog)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions.values()):
            await self._close_session(session)

    # -- replication dispatch ----------------------------------------------------------

    def dispatch_threadsafe(self, channel: str, payload: dict) -> None:
        """Entry point for the feed pump thread: replays the message into
        the serving loop, stamping the dispatch time for push latency."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(
            self.dispatch, channel, payload, self._clock())

    def dispatch(self, channel: str, payload: dict,
                 ts: float | None = None) -> None:
        """Fan a replication message out to matching subscribers. The
        replica itself is updated by the feed pump before this runs."""
        if ts is None:
            ts = self._clock()
        if channel.endswith(":flush"):
            self._c_feed_batches.inc()
            for state in payload["states"]:
                self._dispatch_state(state, ts)
            for event in payload["events"]:
                self._dispatch_event(event, ts)

    def _dispatch_state(self, state: dict, ts: float) -> None:
        matched, candidates = self._fanout.match(state["lat"], state["lon"])
        track_sids = self._vessel_subs.get(state["mmsi"])
        if candidates:
            self._c_candidates.inc(candidates)
        if not matched and not track_sids:
            return
        self._c_matches.inc(len(matched) + len(track_sids or ()))
        # Serialize the body once; per-subscriber frames differ only in sid.
        body = json.dumps({"type": "state", "state": state, "ts": ts},
                          separators=(",", ":"))[1:]
        for sid in matched:
            self._push_to(self._subs[sid][0], sid, body, ts)
        for sid in track_sids or ():
            self._push_to(self._subs[sid][0], sid, body, ts)

    def _dispatch_event(self, event: dict, ts: float) -> None:
        kind = event["kind"]
        sids = self._event_subs.get(kind, set()) \
            | self._event_subs.get("*", set())
        if not sids:
            return
        self._c_matches.inc(len(sids))
        body = json.dumps({"type": "event", "kind": kind,
                           "event": event["payload"], "t": event["t"],
                           "ts": ts}, separators=(",", ":"))[1:]
        for sid in sids:
            self._push_to(self._subs[sid][0], sid, body, ts)

    def _push_to(self, session: ClientSession, sid: int, body: str,
                 ts: float) -> None:
        if session.closed:
            return
        if not session.push(f'{{"op":"push","sid":{sid},{body}', ts):
            self._c_dropped.inc()

    def broadcast(self, payload: dict) -> int:
        """Control push to every connected client (load-harness end
        signal, shutdown notices). Returns the number of receivers."""
        text = json.dumps(payload, separators=(",", ":"))
        count = 0
        for session in self._sessions.values():
            if not session.closed:
                session.push(text, None)
                count += 1
        return count

    # -- connection handling -----------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except ProtocolError:
                    writer.write(json_response(400, {"error": "bad request"}))
                    break
                if request is None:
                    break
                if request.wants_websocket():
                    if request.path != "/ws":
                        writer.write(json_response(404, {"error": "no such "
                                                         "websocket path"}))
                        break
                    writer.write(websocket_handshake_response(request))
                    await writer.drain()
                    await self._run_websocket(reader, writer)
                    return
                if request.method != "GET":
                    writer.write(json_response(
                        405, {"error": "method not allowed"}))
                    await writer.drain()
                    continue
                writer.write(self._route(request))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- HTTP queries ------------------------------------------------------------------

    def _count_query(self, route: str) -> None:
        counter = self._query_counters.get(route)
        if counter is None:
            counter = self._query_counters[route] = self.registry.counter(
                "serving_queries_total", {"route": route})
        counter.inc()

    def _route(self, request: HttpRequest) -> bytes:
        path = request.path
        query = request.query
        api = self.api
        try:
            if path == "/healthz":
                self._count_query("healthz")
                return json_response(200, {"ok": True})
            if path == "/stats":
                self._count_query("stats")
                return json_response(200, self.stats())
            if path == "/metrics":
                self._count_query("metrics")
                return http_response(
                    200, self.registry.render_prometheus().encode(),
                    "text/plain; version=0.0.4")
            if path.startswith("/vessel/"):
                parts = path.split("/")
                mmsi = int(parts[2])
                if len(parts) == 3:
                    self._count_query("vessel")
                    state = api.vessel_state(mmsi)
                    if state is None:
                        return json_response(
                            404, {"error": f"vessel {mmsi} unseen"})
                    return json_response(200, {"mmsi": mmsi, "state": state})
                if len(parts) == 4 and parts[3] == "forecast":
                    self._count_query("forecast")
                    forecast = api.vessel_forecast(mmsi)
                    return json_response(200, {"mmsi": mmsi,
                                               "forecast": forecast})
            if path == "/vessels":
                self._count_query("vessels")
                since = float(query.get("since", "0"))
                return json_response(200, {
                    "count": api.vessel_count(),
                    "mmsis": api.active_vessels(since_t=since)})
            if path.startswith("/events/"):
                self._count_query("events")
                kind = path.split("/")[2]
                limit = int(query.get("limit", "50"))
                return json_response(200, {
                    "kind": kind,
                    "count": api.event_count(kind),
                    "events": api.recent_events(kind, limit=limit)})
            if path == "/traffic":
                self._count_query("traffic")
                window = int(query.get("window", "1"))
                heat = {str(cell): level.value for cell, level
                        in api.traffic_heat(window).items()}
                flow = {str(cell): count for cell, count
                        in api.traffic_flow(window).items()}
                return json_response(200, {"window": window, "flow": flow,
                                           "heat": heat})
            if path.startswith("/warehouse/"):
                return self._route_warehouse(path, query)
            return json_response(404, {"error": f"no route for {path}"})
        except (ValueError, KeyError, IndexError) as exc:
            return json_response(400, {"error": str(exc)})

    def _route_warehouse(self, path: str, query: dict) -> bytes:
        """Historical-analytics routes over the attached warehouse."""
        wq = self.warehouse
        if wq is None:
            return json_response(
                503, {"error": "no warehouse attached to this server"})
        t0 = float(query["t0"]) if "t0" in query else float("-inf")
        t1 = float(query["t1"]) if "t1" in query else float("inf")
        if path == "/warehouse/stats":
            self._count_query("warehouse_stats")
            return json_response(200, wq.warehouse.stats())
        if path == "/warehouse/heatmap":
            self._count_query("warehouse_heatmap")
            by = query.get("by", "rows")
            if "k" in query:
                cells = wq.kring_heatmap(
                    float(query["lat"]), float(query["lon"]),
                    int(query["k"]), t0=t0, t1=t1, by=by)
            else:
                bbox = BoundingBox(
                    lat_min=float(query["lat_min"]),
                    lat_max=float(query["lat_max"]),
                    lon_min=float(query["lon_min"]),
                    lon_max=float(query["lon_max"]))
                cells = wq.heatmap(bbox=bbox, t0=t0, t1=t1, by=by)
            return json_response(200, {
                "by": by,
                "cells": {f"{cell:016x}": count
                          for cell, count in cells.items()}})
        if path == "/warehouse/timeseries":
            self._count_query("warehouse_timeseries")
            cells = [int(c, 16) for c in query["cells"].split(",") if c]
            kinds = query["kinds"].split(",") if "kinds" in query else None
            series = wq.cell_event_rate(
                cells, t0, t1, float(query.get("bucket_s", "3600")),
                kinds=kinds)
            series["cells"] = {f"{cell:016x}": counts
                               for cell, counts in series["cells"].items()}
            return json_response(200, series)
        if path == "/warehouse/congestion":
            self._count_query("warehouse_congestion")
            bbox = BoundingBox(
                lat_min=float(query["lat_min"]),
                lat_max=float(query["lat_max"]),
                lon_min=float(query["lon_min"]),
                lon_max=float(query["lon_max"]))
            return json_response(200, wq.congestion_trend(
                t0, t1, float(query.get("bucket_s", "3600")), bbox=bbox))
        if path.startswith("/warehouse/vessel/"):
            self._count_query("warehouse_vessel")
            mmsi = int(path.split("/")[3])
            history = wq.vessel_history(mmsi, t0=t0, t1=t1)
            return json_response(200, {"mmsi": mmsi,
                                       "fixes": len(history["t"]),
                                       "history": history})
        return json_response(404, {"error": f"no route for {path}"})

    def stats(self) -> dict:
        return {
            "connected_clients": len(self._sessions),
            "active_subscriptions": len(self._subs),
            "spatial_subscriptions": len(self._fanout),
            "client_dropped": self._c_dropped.value,
            "pushes_total": self._c_pushes.value,
            "replica": self.replica.stats(),
        }

    # -- WebSocket sessions ------------------------------------------------------------

    async def _run_websocket(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        ws = WebSocket(reader, writer,
                       max_payload=self.config.max_frame_bytes)
        self._next_client_id += 1
        session = ClientSession(self._next_client_id, ws,
                                self.config.client_queue_maxlen)
        self._sessions[session.client_id] = session
        self._g_clients.set(len(self._sessions))
        session.task = asyncio.ensure_future(self._send_loop(session))
        try:
            while True:
                try:
                    command = await ws.recv_json()
                except (ProtocolError, json.JSONDecodeError):
                    session.push(json.dumps(
                        {"op": "error", "error": "malformed frame"}), None)
                    continue
                if command is None:
                    break
                self._handle_command(session, command)
        finally:
            await self._close_session(session)

    def _handle_command(self, session: ClientSession, command: Any) -> None:
        if not isinstance(command, dict):
            reply: dict[str, Any] = {"op": "error",
                                     "error": "command must be an object"}
        else:
            op = command.get("op")
            if op == "subscribe":
                reply = self._subscribe(session, command)
            elif op == "unsubscribe":
                reply = self._unsubscribe(session, command)
            elif op == "ping":
                reply = {"op": "pong", "t": command.get("t")}
            else:
                reply = {"op": "error", "error": f"unknown op {op!r}"}
        session.push(json.dumps(reply, separators=(",", ":")), None)

    def _subscribe(self, session: ClientSession, command: dict) -> dict:
        if len(session.sids) >= self.config.max_subscriptions_per_client:
            return {"op": "error", "error": "subscription limit reached"}
        sub_type = command.get("type")
        try:
            if sub_type == "bbox":
                bbox = BoundingBox(
                    lat_min=float(command["lat_min"]),
                    lat_max=float(command["lat_max"]),
                    lon_min=float(command["lon_min"]),
                    lon_max=float(command["lon_max"]))
                res = int(command.get(
                    "res", self.config.default_bbox_resolution))
                if not 0 <= res <= 15:
                    raise ValueError(f"res {res} out of range")
                region = BBoxRegion.fitted(bbox, res,
                                           self.config.max_region_cells)
                sid = self._register(session, "bbox", region)
                return {"op": "subscribed", "sid": sid, "type": "bbox",
                        "res": region.resolution}
            if sub_type == "kring":
                k = int(command.get("k", 1))
                if not 0 <= k <= self.config.max_kring_k:
                    raise ValueError(
                        f"k must be in [0, {self.config.max_kring_k}]")
                if "cell" in command:
                    center = int(command["cell"])
                else:
                    res = int(command.get(
                        "res", self.config.default_bbox_resolution))
                    center = latlng_to_cell(float(command["lat"]),
                                            float(command["lon"]), res)
                region = KRingRegion(center=center, k=k)
                sid = self._register(session, "kring", region)
                return {"op": "subscribed", "sid": sid, "type": "kring",
                        "cell": center}
            if sub_type == "vessel":
                mmsi = int(command["mmsi"])
                sid = self._register(session, "vessel", mmsi)
                return {"op": "subscribed", "sid": sid, "type": "vessel",
                        "mmsi": mmsi}
            if sub_type == "events":
                kind = str(command.get("kind", "*"))
                sid = self._register(session, "events", kind)
                return {"op": "subscribed", "sid": sid, "type": "events",
                        "kind": kind}
            return {"op": "error",
                    "error": f"unknown subscription type {sub_type!r}"}
        except (KeyError, ValueError, TypeError) as exc:
            return {"op": "error", "error": str(exc)}

    def _register(self, session: ClientSession, kind: str,
                  detail: Any) -> int:
        self._next_sid += 1
        sid = self._next_sid
        if kind in ("bbox", "kring"):
            self._fanout.add(sid, detail)
        elif kind == "vessel":
            self._vessel_subs.setdefault(detail, set()).add(sid)
        elif kind == "events":
            self._event_subs.setdefault(detail, set()).add(sid)
        self._subs[sid] = (session, kind, detail)
        session.sids.add(sid)
        self._g_subscriptions.set(len(self._subs))
        return sid

    def _unsubscribe(self, session: ClientSession, command: dict) -> dict:
        try:
            sid = int(command["sid"])
        except (KeyError, ValueError, TypeError):
            return {"op": "error", "error": "unsubscribe needs a sid"}
        entry = self._subs.get(sid)
        if entry is None or entry[0] is not session:
            return {"op": "error", "error": f"unknown sid {sid}"}
        self._drop_subscription(sid)
        return {"op": "unsubscribed", "sid": sid}

    def _drop_subscription(self, sid: int) -> None:
        session, kind, detail = self._subs.pop(sid)
        session.sids.discard(sid)
        if kind in ("bbox", "kring"):
            self._fanout.remove(sid)
        elif kind == "vessel":
            bucket = self._vessel_subs.get(detail)
            if bucket is not None:
                bucket.discard(sid)
                if not bucket:
                    del self._vessel_subs[detail]
        elif kind == "events":
            bucket = self._event_subs.get(detail)
            if bucket is not None:
                bucket.discard(sid)
                if not bucket:
                    del self._event_subs[detail]
        self._g_subscriptions.set(len(self._subs))

    async def _close_session(self, session: ClientSession) -> None:
        if session.client_id not in self._sessions:
            return
        session.closed = True
        del self._sessions[session.client_id]
        for sid in list(session.sids):
            self._drop_subscription(sid)
        self._g_clients.set(len(self._sessions))
        session.wakeup.set()  # unblock the send loop so it can exit
        if session.task is not None:
            try:
                await session.task
            except (ConnectionError, asyncio.CancelledError):
                pass
        await session.ws.close()

    async def _send_loop(self, session: ClientSession) -> None:
        """Drain the session's bounded queue onto the socket."""
        queue = session.queue
        ws = session.ws
        try:
            while True:
                await session.wakeup.wait()
                session.wakeup.clear()
                if session.closed:
                    return
                sent = 0
                while queue:
                    if session.dropped > session.reported_dropped:
                        # Surface the overflow counter before newer data.
                        session.reported_dropped = session.dropped
                        ws.send_text(json.dumps(
                            {"op": "overflow",
                             "dropped": session.dropped},
                            separators=(",", ":")))
                    text, ts = queue.popleft()
                    ws.send_text(text)
                    sent += 1
                    if ts is not None:
                        self._h_push_latency.observe(self._clock() - ts)
                if sent:
                    self._c_pushes.inc(sent)
                await ws.drain()
        except (ConnectionError, asyncio.CancelledError):
            session.closed = True
