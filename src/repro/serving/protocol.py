"""Minimal HTTP/1.1 + WebSocket (RFC 6455) over asyncio streams.

The serving tier deliberately speaks raw stdlib ``asyncio`` streams — no
third-party web framework — so the whole wire path is auditable and the
load harness can open tens of thousands of sockets without per-connection
framework overhead. Only the subset the tier needs is implemented:

* HTTP: request-line + header parsing for ``GET`` requests, JSON
  responses, and the ``Upgrade: websocket`` handshake.
* WebSocket: text/binary/ping/pong/close frames, client masking,
  16/64-bit extended lengths. No fragmentation (messages the tier sends
  and accepts fit in one frame) and no extensions.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Any

import asyncio

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

# Opcodes (RFC 6455 §5.2).
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class ProtocolError(Exception):
    """Malformed HTTP request or WebSocket frame."""


@dataclass
class HttpRequest:
    """One parsed HTTP request head."""

    method: str
    target: str
    headers: dict[str, str]

    @property
    def path(self) -> str:
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> dict[str, str]:
        if "?" not in self.target:
            return {}
        out: dict[str, str] = {}
        for pair in self.target.split("?", 1)[1].split("&"):
            if pair:
                key, _, value = pair.partition("=")
                out[key] = value
        return out

    def wants_websocket(self) -> bool:
        return (self.headers.get("upgrade", "").lower() == "websocket"
                and "sec-websocket-key" in self.headers)


async def read_http_request(reader: asyncio.StreamReader,
                            max_bytes: int = 16384) -> HttpRequest | None:
    """Parse one request head; ``None`` on clean EOF before any byte."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated HTTP request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("HTTP request head too large") from exc
    if len(head) > max_bytes:
        raise ProtocolError("HTTP request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"bad request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method, target=target, headers=headers)


def http_response(status: int, body: bytes, content_type: str,
                  extra_headers: dict[str, str] | None = None,
                  keep_alive: bool = True) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 426: "Upgrade Required",
              500: "Internal Server Error"}.get(status, "OK")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: " + ("keep-alive" if keep_alive else "close")]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    return http_response(status, body, "application/json")


# -- WebSocket handshake ------------------------------------------------------------


def websocket_accept_key(client_key: str) -> str:
    digest = hashlib.sha1((client_key + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


def websocket_handshake_response(request: HttpRequest) -> bytes:
    key = request.headers.get("sec-websocket-key", "")
    if not key:
        raise ProtocolError("missing Sec-WebSocket-Key")
    return ("HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {websocket_accept_key(key)}\r\n"
            "\r\n").encode("latin-1")


def websocket_client_handshake(host: str, path: str) -> tuple[bytes, str]:
    """The client's upgrade request plus the key it must verify."""
    key = base64.b64encode(os.urandom(16)).decode()
    request = (f"GET {path} HTTP/1.1\r\n"
               f"Host: {host}\r\n"
               "Upgrade: websocket\r\n"
               "Connection: Upgrade\r\n"
               f"Sec-WebSocket-Key: {key}\r\n"
               "Sec-WebSocket-Version: 13\r\n"
               "\r\n").encode("latin-1")
    return request, key


# -- WebSocket frames ---------------------------------------------------------------


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One complete (FIN) frame. Clients must set ``mask`` (RFC 6455 §5.3);
    servers must not."""
    head = bytearray([0x80 | opcode])
    n = len(payload)
    mask_bit = 0x80 if mask else 0
    if n < 126:
        head.append(mask_bit | n)
    elif n < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack(">H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", n)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    head += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + masked


def encode_text(message: str, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, message.encode(), mask=mask)


async def read_frame(reader: asyncio.StreamReader,
                     max_payload: int = 1 << 20) -> tuple[int, bytes]:
    """Read one complete frame; returns ``(opcode, payload)``. Raises
    ``IncompleteReadError`` on EOF mid-frame, ``ProtocolError`` on
    malformed input."""
    head = await reader.readexactly(2)
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin:
        raise ProtocolError("fragmented frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > max_payload:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


@dataclass
class WebSocket:
    """A handshaken WebSocket over an asyncio stream pair.

    ``recv_json`` transparently answers pings and returns ``None`` on a
    close frame or EOF; data frames must carry JSON text.
    """

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    is_client: bool = False
    max_payload: int = 1 << 20
    closed: bool = field(default=False, init=False)

    def send_text(self, message: str) -> None:
        """Queue one text frame (call ``drain`` for backpressure)."""
        self.writer.write(encode_text(message, mask=self.is_client))

    def send_json(self, payload: Any) -> None:
        self.send_text(json.dumps(payload, separators=(",", ":")))

    async def drain(self) -> None:
        await self.writer.drain()

    async def recv(self) -> tuple[int, bytes] | None:
        """Next data frame as ``(opcode, payload)``; ``None`` once closed.
        Control frames are handled inline (ping -> pong, close -> reply)."""
        while True:
            try:
                opcode, payload = await read_frame(
                    self.reader, max_payload=self.max_payload)
            except (asyncio.IncompleteReadError, ConnectionError):
                self.closed = True
                return None
            if opcode == OP_PING:
                self.writer.write(encode_frame(OP_PONG, payload,
                                               mask=self.is_client))
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                if not self.closed:
                    self.closed = True
                    try:
                        self.writer.write(encode_frame(
                            OP_CLOSE, payload, mask=self.is_client))
                        await self.writer.drain()
                    except ConnectionError:
                        pass
                return None
            return opcode, payload

    async def recv_json(self) -> Any | None:
        frame = await self.recv()
        if frame is None:
            return None
        opcode, payload = frame
        if opcode != OP_TEXT:
            raise ProtocolError(f"expected text frame, got opcode {opcode}")
        return json.loads(payload.decode())

    async def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.writer.write(encode_frame(OP_CLOSE, b"",
                                               mask=self.is_client))
                await self.writer.drain()
            except ConnectionError:
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except ConnectionError:
            pass


async def connect_websocket(host: str, port: int, path: str = "/ws",
                            max_payload: int = 1 << 20) -> WebSocket:
    """Open and handshake a client WebSocket connection."""
    reader, writer = await asyncio.open_connection(host, port)
    request, key = websocket_client_handshake(f"{host}:{port}", path)
    writer.write(request)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    if " 101 " not in status_line + " ":
        writer.close()
        raise ProtocolError(f"handshake rejected: {status_line}")
    expected = websocket_accept_key(key)
    accept = ""
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accept = value.strip()
    if accept != expected:
        writer.close()
        raise ProtocolError("bad Sec-WebSocket-Accept")
    return WebSocket(reader, writer, is_client=True, max_payload=max_payload)
