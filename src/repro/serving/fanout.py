"""Per-cell fanout index for continuous spatial subscriptions.

Dolphin-style reactive moving-object subscriptions: a position update must
wake only the subscribers whose watch region contains it, never the whole
subscriber population. Regions register into the hex cells they cover (at
their own resolution); an update is then matched by bucketing its position
into one cell per *active* resolution and exact-checking only the
subscriptions registered there — O(active resolutions + candidates), not
O(subscriptions).

Two region shapes exist:

* :class:`BBoxRegion` — a lat/lon box, registered into every cell whose
  centre falls inside the box expanded by one cell circumradius. The
  expansion makes the cell cover a strict superset of the box (any point
  of the box is within one circumradius of its cell's centre in the
  projected plane), so the exact ``contains`` check never misses.
* :class:`KRingRegion` — an H3-style k-ring: the filled ``grid_disk`` of
  cells within ``k`` steps of a centre cell. Registration *is* the exact
  predicate here (cell membership == grid distance <= k).

The Hypothesis property suite in ``tests/serving`` pins both against a
brute-force geometry oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geo.bbox import BoundingBox
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.hexgrid import grid_disk, grid_distance, latlng_to_cell
from repro.hexgrid.cell import pack_cell, unpack_cell
from repro.hexgrid.index import EDGE_LENGTHS_M, _SQRT3, cell_area_m2


def _lon_intervals(lon_min: float, lon_max: float,
                   margin_deg: float) -> list[tuple[float, float]]:
    """The longitude interval(s) of a (possibly antimeridian-crossing) box
    expanded by ``margin_deg``, split into in-range [-180, 180] pieces so
    wrap-around cells register under their normalized coordinates."""
    if lon_min > lon_max:  # crosses the antimeridian: two raw intervals
        raw = [(lon_min - margin_deg, 180.0 + margin_deg),
               (-180.0 - margin_deg, lon_max + margin_deg)]
    else:
        raw = [(lon_min - margin_deg, lon_max + margin_deg)]
    out: list[tuple[float, float]] = []
    for lo, hi in raw:
        if lo < -180.0:  # spill past the west edge wraps to the east
            out.append((lo + 360.0, 180.0))
            lo = -180.0
        if hi > 180.0:   # spill past the east edge wraps to the west
            out.append((-180.0, hi - 360.0))
            hi = 180.0
        out.append((lo, hi))
    return out


def estimate_bbox_cells(bbox: BoundingBox, res: int) -> float:
    """Upper-ish estimate of how many cells :func:`cells_covering_bbox`
    would return — cheap enough to pick a resolution before committing."""
    s = EDGE_LENGTHS_M[res]
    margin = s / METERS_PER_DEG_LAT
    dlat = (bbox.lat_max - bbox.lat_min) + 2.0 * margin
    dlon = (bbox.lon_max - bbox.lon_min) if bbox.lon_max >= bbox.lon_min \
        else (360.0 - bbox.lon_min + bbox.lon_max)
    dlon += 2.0 * margin
    area = (dlat * METERS_PER_DEG_LAT) * (dlon * METERS_PER_DEG_LAT)
    return area / cell_area_m2(res) + 4.0 * (dlat + dlon) \
        * METERS_PER_DEG_LAT / s + 8.0


def cells_covering_bbox(bbox: BoundingBox, res: int) -> list[int]:
    """Every cell at ``res`` whose centre lies within ``bbox`` expanded by
    one cell circumradius — a strict superset of the cells any point of
    the box can fall into."""
    s = EDGE_LENGTHS_M[res]
    margin_m = s * 1.000001
    margin_deg = margin_m / METERS_PER_DEG_LAT
    y_lo = max(-90.0, bbox.lat_min - margin_deg) * METERS_PER_DEG_LAT
    y_hi = min(90.0, bbox.lat_max + margin_deg) * METERS_PER_DEG_LAT
    # Cell centres sit at y = 1.5*s*r and x = sqrt(3)*s*(q + r/2).
    r_lo = math.ceil(y_lo / (1.5 * s))
    r_hi = math.floor(y_hi / (1.5 * s))
    cells: list[int] = []
    for x_lo_deg, x_hi_deg in _lon_intervals(bbox.lon_min, bbox.lon_max,
                                             margin_deg):
        x_lo = x_lo_deg * METERS_PER_DEG_LAT
        x_hi = x_hi_deg * METERS_PER_DEG_LAT
        for r in range(r_lo, r_hi + 1):
            q_lo = math.ceil(x_lo / (_SQRT3 * s) - r / 2.0)
            q_hi = math.floor(x_hi / (_SQRT3 * s) - r / 2.0)
            for q in range(q_lo, q_hi + 1):
                cells.append(pack_cell(res, q, r))
    return cells


@dataclass(frozen=True)
class BBoxRegion:
    """A bounding-box watch region at a given index resolution."""

    bbox: BoundingBox
    resolution: int

    def matches(self, lat: float, lon: float) -> bool:
        return self.bbox.contains(lat, lon)

    def cells(self) -> tuple[int, list[int]]:
        return self.resolution, cells_covering_bbox(self.bbox,
                                                    self.resolution)

    @classmethod
    def fitted(cls, bbox: BoundingBox, resolution: int,
               max_cells: int) -> "BBoxRegion":
        """Build a region, coarsening the resolution until its cell cover
        fits under ``max_cells`` (large boxes never blow up the index)."""
        res = resolution
        while res > 0 and estimate_bbox_cells(bbox, res) > max_cells:
            res -= 1
        return cls(bbox=bbox, resolution=res)


@dataclass(frozen=True)
class KRingRegion:
    """A k-ring watch region: all cells within ``k`` steps of ``center``."""

    center: int
    k: int

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError("k must be non-negative")
        unpack_cell(self.center)  # validate

    @property
    def resolution(self) -> int:
        return unpack_cell(self.center)[0]

    def matches(self, lat: float, lon: float) -> bool:
        cell = latlng_to_cell(lat, lon, self.resolution)
        return grid_distance(cell, self.center) <= self.k

    def cells(self) -> tuple[int, list[int]]:
        return self.resolution, grid_disk(self.center, self.k)


@dataclass
class SpatialFanoutIndex:
    """sid -> region registry with per-cell buckets, one layer per active
    resolution. Not thread-safe: owned by the serving event loop."""

    #: res -> cell -> set of subscription ids registered there.
    _buckets: dict[int, dict[int, set[int]]] = field(default_factory=dict)
    #: sid -> (region, res, registered cells) for removal.
    _regions: dict[int, tuple[object, int, list[int]]] = \
        field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._regions)

    def add(self, sid: int, region: BBoxRegion | KRingRegion) -> int:
        """Register a region; returns how many cells it occupies."""
        if sid in self._regions:
            raise ValueError(f"subscription {sid} already registered")
        res, cells = region.cells()
        layer = self._buckets.setdefault(res, {})
        for cell in cells:
            layer.setdefault(cell, set()).add(sid)
        self._regions[sid] = (region, res, cells)
        return len(cells)

    def remove(self, sid: int) -> bool:
        entry = self._regions.pop(sid, None)
        if entry is None:
            return False
        _, res, cells = entry
        layer = self._buckets.get(res, {})
        for cell in cells:
            bucket = layer.get(cell)
            if bucket is not None:
                bucket.discard(sid)
                if not bucket:
                    del layer[cell]
        if not layer:
            self._buckets.pop(res, None)
        return True

    def match(self, lat: float, lon: float) -> tuple[list[int], int]:
        """Subscription ids whose region contains ``(lat, lon)`` plus the
        candidate count examined (for fanout telemetry)."""
        matched: list[int] = []
        candidates = 0
        for res, layer in self._buckets.items():
            bucket = layer.get(latlng_to_cell(lat, lon, res))
            if not bucket:
                continue
            candidates += len(bucket)
            for sid in bucket:
                region = self._regions[sid][0]
                if region.matches(lat, lon):
                    matched.append(sid)
        return matched, candidates
