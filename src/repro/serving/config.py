"""Serving-tier configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the asyncio query/subscription tier (see SERVING.md)."""

    #: Bind address of the HTTP/WebSocket listener.
    host: str = "127.0.0.1"
    #: Listen port; 0 lets the OS pick (read ``ServingServer.port`` after
    #: ``start()``).
    port: int = 0
    #: Listen backlog — subscriber load tests open thousands of
    #: connections in a burst.
    backlog: int = 4096
    #: Default hex resolution for bbox subscriptions when the client does
    #: not pick one (res 6 ≈ 24 km edges — regional watch areas).
    default_bbox_resolution: int = 6
    #: Hard cap on the fanout-index cells one subscription may register.
    #: A bbox needing more cells at its resolution is automatically
    #: coarsened until it fits (never rejected).
    max_region_cells: int = 4096
    #: Largest accepted k for k-ring subscriptions.
    max_kring_k: int = 8
    #: Per-client send queue bound; overflow drops the oldest pending
    #: push and surfaces the count to the client (``dropped`` field).
    client_queue_maxlen: int = 256
    #: Replica retains at most this many recent events per kind.
    replica_events_max: int = 1000
    #: Max WebSocket frame payload accepted from a client.
    max_frame_bytes: int = 1 << 20
    #: Max subscriptions a single client may hold.
    max_subscriptions_per_client: int = 64

    def __post_init__(self) -> None:
        if not 0 <= self.default_bbox_resolution <= 15:
            raise ValueError("default_bbox_resolution must be in [0, 15]")
        if self.max_region_cells < 1:
            raise ValueError("max_region_cells must be >= 1")
        if self.max_kring_k < 0:
            raise ValueError("max_kring_k must be non-negative")
        if self.client_queue_maxlen < 1:
            raise ValueError("client_queue_maxlen must be >= 1")
        if self.replica_events_max < 1:
            raise ValueError("replica_events_max must be >= 1")
        if self.max_subscriptions_per_client < 1:
            raise ValueError("max_subscriptions_per_client must be >= 1")
