"""The replica feed pump: primary pub/sub -> replica -> serving loop.

The platform (writer pool) lives in its own threads; the serving tier
lives in an asyncio loop. :class:`ReplicaFeedPump` is the one-way bridge:
a daemon thread blocks on the bounded ``repl:*`` subscription
(:meth:`Subscription.get` with a timeout — no polling loop), applies each
replication message to the :class:`ReadReplica` (whose store is
thread-safe), then hands the message to the serving loop with
``call_soon_threadsafe`` for subscription fanout. Applying to the replica
*before* the loop dispatch means an HTTP query racing a push can only be
ahead of, never behind, what subscribers see.

The pump owns no sockets and touches no actor state: if the serving loop
stalls, the bounded subscription drops oldest batches (counted, surfaced
as feed drops and replica sequence gaps) and the actor hot path never
blocks.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.kvstore import Subscription
from repro.serving.replica import ReadReplica
from repro.serving.server import ServingServer


class ReplicaFeedPump:
    """Daemon thread draining a replication subscription."""

    def __init__(self, subscription: Subscription, replica: ReadReplica,
                 server: ServingServer | None = None,
                 poll_timeout_s: float = 0.2,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.subscription = subscription
        self.replica = replica
        self.server = server
        self.poll_timeout_s = poll_timeout_s
        self._clock = clock
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="serving-feed-pump",
                                        daemon=True)
        self.messages_pumped = 0

    def start(self) -> "ReplicaFeedPump":
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the pump; with ``drain`` it first applies everything
        already pending on the subscription."""
        self._stop.set()
        self._thread.join(timeout=10.0)
        if drain:
            self.drain_pending()

    def drain_pending(self) -> int:
        """Apply every currently pending message synchronously (used by
        tests and the load harness's end-of-run barrier)."""
        drained = 0
        for channel, payload in self.subscription.get_all():
            self._apply(channel, payload)
            drained += 1
        return drained

    @property
    def feed_drops(self) -> int:
        """Batches the bounded subscription discarded before the pump
        could apply them (each shows up as a replica sequence gap)."""
        return self.subscription.drop_count()

    def _apply(self, channel: str, payload: dict) -> None:
        self.replica.apply(channel, payload)
        self.messages_pumped += 1
        if self.server is not None:
            self.server.dispatch_threadsafe(channel, payload)

    def _run(self) -> None:
        while not self._stop.is_set():
            item = self.subscription.get(timeout=self.poll_timeout_s)
            if item is None:
                if self.subscription.closed:
                    return
                continue
            self._apply(*item)
