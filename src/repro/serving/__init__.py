"""``repro.serving`` — the async query/subscription tier.

The paper's middleware exists so a UI/API can read the writer's Redis
state (Section 3); this package is that surface grown to interactive
scale: an asyncio HTTP/WebSocket server answering point queries and
continuous spatial subscriptions from **read replicas** fed by the writer
pool's pub/sub, so serving load never touches the actor hot path.
Semantics follow Dolphin's reactive moving-object subscriptions and
CheetahGIS's continuous streaming spatial queries (PAPERS.md); the full
protocol, overflow policy and consistency model are in SERVING.md.

Layers (each its own module):

* :mod:`~repro.serving.replica` — ``ReadReplica`` + ``ReplicaQueryAPI``,
  the middleware query surface over replicated state,
* :mod:`~repro.serving.fanout` — the per-cell spatial fanout index for
  bbox / k-ring subscription matching,
* :mod:`~repro.serving.protocol` — stdlib HTTP + RFC 6455 WebSocket
  framing over asyncio streams,
* :mod:`~repro.serving.server` — ``ServingServer``: routes, sessions,
  bounded per-client send queues, telemetry,
* :mod:`~repro.serving.bridge` — ``ReplicaFeedPump``, the thread that
  moves writer flush batches into the replica and the serving loop.
"""

from repro.serving.bridge import ReplicaFeedPump
from repro.serving.config import ServingConfig
from repro.serving.fanout import (
    BBoxRegion,
    KRingRegion,
    SpatialFanoutIndex,
    cells_covering_bbox,
)
from repro.serving.protocol import WebSocket, connect_websocket
from repro.serving.replica import (
    REPL_FLOW_CHANNEL,
    REPL_FLUSH_CHANNEL,
    REPL_PATTERN,
    ReadReplica,
    ReplicaQueryAPI,
)
from repro.serving.server import ServingServer

__all__ = [
    "BBoxRegion",
    "KRingRegion",
    "ReadReplica",
    "ReplicaFeedPump",
    "ReplicaQueryAPI",
    "REPL_FLOW_CHANNEL",
    "REPL_FLUSH_CHANNEL",
    "REPL_PATTERN",
    "ServingConfig",
    "ServingServer",
    "SpatialFanoutIndex",
    "WebSocket",
    "cells_covering_bbox",
    "connect_websocket",
]
